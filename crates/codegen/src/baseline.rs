//! The **monolithic baseline generator**: the MDA status quo the paper
//! argues against. It consumes the most-specialized PSM (a model whose
//! elements carry the concern marks written by the concrete model
//! transformations) and generates a single program in which the concern
//! behaviour is *inlined* — tangled — into every affected class.
//!
//! Experiment E5 compares this generator against the paper's proposal
//! (functional generator + woven aspects) on tangling/scattering metrics
//! and incremental-regeneration cost. Behaviour is intended to be
//! observably equivalent; only the code structure differs.
//!
//! Wrapping layers that must run code *after* the original body completes
//! (transactions, logging) hoist the current body into a private helper
//! method (`name__tx`, `name__log`) so that early `return`s inside the
//! functional body cannot skip the commit — the same reification the
//! weaver performs for `proceed`, here entangled inside every class.

use crate::generate::{BodyProvider, FunctionalGenerator};
use crate::ir::*;
use crate::marks::{self, intrinsics};
use comet_model::{Model, TagValue};

/// Monolithic generator: functional skeleton + inlined concern code.
#[derive(Debug, Clone, Default)]
pub struct MonolithicGenerator {
    inner: FunctionalGenerator,
}

impl MonolithicGenerator {
    /// Creates a baseline generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates the tangled program from the fully-specialized PSM.
    pub fn generate(&self, model: &Model, bodies: &BodyProvider) -> Program {
        let mut program = self.inner.generate(model, bodies);
        for class_id in model.classes() {
            let class_el = match model.element(class_id) {
                Ok(e) => e,
                Err(_) => continue,
            };
            let class_name = class_el.name().to_owned();
            let class_remote = class_el.core().has_stereotype(marks::STEREO_REMOTE);
            let node = tag_str(model, class_id, marks::TAG_DIST_NODE);
            let registry = tag_str(model, class_id, marks::TAG_DIST_REGISTRY)
                .unwrap_or_else(|| class_name.clone());
            for op_id in model.operations_of(class_id) {
                let op_el = match model.element(op_id) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                let method_name = op_el.name().to_owned();
                let Some(class_decl) = program.find_class_mut(&class_name) else { continue };
                if class_decl.find_method(&method_name).is_none() {
                    continue;
                }

                // The registration operation of a remote class gets the
                // naming-service binding inlined (what the distribution
                // aspect does with around advice).
                if class_remote && method_name == marks::DIST_REGISTER_OP {
                    if let Some(node) = &node {
                        let m = class_decl.find_method_mut(&method_name).expect("checked above");
                        m.body = Block::of(vec![
                            Stmt::Expr(Expr::intrinsic(
                                intrinsics::NET_REGISTER,
                                vec![Expr::str(node), Expr::str(&registry)],
                            )),
                            Stmt::Return(None),
                        ]);
                    }
                    continue;
                }

                // Inline layers innermost-to-outermost: transactions,
                // then distribution, then security, then logging — the
                // fixed, hard-coded order of a monolithic generator.
                if op_el.core().has_stereotype(marks::STEREO_TRANSACTIONAL) {
                    let isolation = tag_str(model, op_id, marks::TAG_TX_ISOLATION)
                        .unwrap_or_else(|| "read-committed".into());
                    wrap_transactional(class_decl, &method_name, &isolation);
                }
                if class_remote {
                    if let Some(node) = &node {
                        wrap_remote(class_decl, &method_name, node, &registry);
                    }
                }
                if op_el.core().has_stereotype(marks::STEREO_SECURED) {
                    let role = tag_str(model, op_id, marks::TAG_SEC_ROLE)
                        .unwrap_or_else(|| "admin".into());
                    let resource = format!("{class_name}.{method_name}");
                    wrap_secured(class_decl, &method_name, &role, &resource);
                }
                if op_el.core().has_stereotype(marks::STEREO_LOGGED) {
                    let level = tag_str(model, op_id, marks::TAG_LOG_LEVEL)
                        .unwrap_or_else(|| "info".into());
                    let message = format!("{class_name}.{method_name}");
                    wrap_logged(class_decl, &method_name, &level, &message);
                }
                if op_el.core().has_stereotype(marks::STEREO_PERSISTENT) {
                    let key_attr = tag_str(model, op_id, marks::TAG_PERSIST_KEY)
                        .unwrap_or_else(|| "id".into());
                    let collection = tag_str(model, op_id, marks::TAG_PERSIST_STORE)
                        .unwrap_or_else(|| class_name.clone());
                    wrap_persistent(class_decl, &method_name, &collection, &key_attr);
                }
                if class_el.core().has_stereotype(marks::STEREO_PERSISTENT)
                    && method_name == marks::PERSIST_RELOAD_OP
                {
                    let key_attr = tag_str(model, class_id, marks::TAG_PERSIST_KEY)
                        .unwrap_or_else(|| "id".into());
                    let collection = tag_str(model, class_id, marks::TAG_PERSIST_STORE)
                        .unwrap_or_else(|| class_name.clone());
                    let m = class_decl.find_method_mut(&method_name).expect("checked above");
                    m.body = Block::of(vec![
                        Stmt::Expr(Expr::intrinsic(
                            intrinsics::STORE_LOAD,
                            vec![persist_key_expr(&collection, &key_attr)],
                        )),
                        Stmt::Return(None),
                    ]);
                }
            }
        }
        program
    }
}

fn tag_str(model: &Model, id: comet_model::ElementId, key: &str) -> Option<String> {
    model.element(id).ok()?.core().tag(key).and_then(TagValue::as_str).map(str::to_owned)
}

/// Moves the current body of `method_name` into a helper
/// `method_name__layer`, leaving the original empty, and returns the call
/// expression that invokes the helper plus the return type.
fn extract_body(class: &mut ClassDecl, method_name: &str, layer: &str) -> (Expr, IrType) {
    let method = class.find_method(method_name).expect("caller checked the method exists").clone();
    let helper_name = format!("{method_name}__{layer}");
    let mut helper = method.clone();
    helper.name = helper_name.clone();
    helper.annotations.clear();
    let args = method.params.iter().map(|p| Expr::var(&p.name)).collect();
    let call = Expr::call_this(helper_name, args);
    let ret = method.ret.clone();
    class.methods.push(helper);
    let m = class.find_method_mut(method_name).expect("checked above");
    m.body = Block::default();
    (call, ret)
}

/// Builds `(maybe-capture, call, maybe-return)` statements around a call.
fn run_and_return(call: Expr, ret: &IrType, result_var: &str) -> (Vec<Stmt>, Vec<Stmt>) {
    if *ret == IrType::Void {
        (vec![Stmt::Expr(call)], vec![Stmt::Return(None)])
    } else {
        (vec![Stmt::local(result_var, ret.clone(), call)], vec![Stmt::ret(Expr::var(result_var))])
    }
}

/// begin / try { core; commit } catch { rollback; rethrow }.
fn wrap_transactional(class: &mut ClassDecl, method_name: &str, isolation: &str) {
    let (call, ret) = extract_body(class, method_name, "tx");
    let (run, ret_stmts) = run_and_return(call, &ret, "__tx_result");
    let mut protected = run;
    protected.push(Stmt::Expr(Expr::intrinsic(intrinsics::TX_COMMIT, vec![])));
    protected.extend(ret_stmts);
    let body = Block::of(vec![
        Stmt::Expr(Expr::intrinsic(intrinsics::TX_BEGIN, vec![Expr::str(isolation)])),
        Stmt::TryCatch {
            body: Block::of(protected),
            var: "__tx_e".into(),
            handler: Block::of(vec![
                Stmt::Expr(Expr::intrinsic(intrinsics::TX_ROLLBACK, vec![])),
                Stmt::Throw(Expr::var("__tx_e")),
            ]),
            finally: None,
        },
    ]);
    class.find_method_mut(method_name).expect("exists").body = body;
}

/// Prepends `if (!net.is_local(node)) return net.call(...)`.
fn wrap_remote(class: &mut ClassDecl, method_name: &str, node: &str, registry: &str) {
    let method = class.find_method_mut(method_name).expect("caller checked");
    let mut rpc_args = vec![Expr::str(node), Expr::str(registry), Expr::str(method_name)];
    rpc_args.extend(method.params.iter().map(|p| Expr::var(&p.name)));
    let forward = if method.ret == IrType::Void {
        vec![Stmt::Expr(Expr::intrinsic(intrinsics::NET_CALL, rpc_args)), Stmt::Return(None)]
    } else {
        vec![Stmt::ret(Expr::intrinsic(intrinsics::NET_CALL, rpc_args))]
    };
    let guard = Stmt::If {
        cond: Expr::Unary {
            op: IrUnOp::Not,
            operand: Box::new(Expr::intrinsic(intrinsics::NET_IS_LOCAL, vec![Expr::str(node)])),
        },
        then_block: Block::of(forward),
        else_block: None,
    };
    method.body.stmts.insert(0, guard);
}

/// Prepends an access check (throws on denial).
fn wrap_secured(class: &mut ClassDecl, method_name: &str, role: &str, resource: &str) {
    let method = class.find_method_mut(method_name).expect("caller checked");
    method.body.stmts.insert(
        0,
        Stmt::Expr(Expr::intrinsic(
            intrinsics::SEC_CHECK,
            vec![Expr::str(role), Expr::str(resource)],
        )),
    );
}

fn persist_key_expr(collection: &str, key_attr: &str) -> Expr {
    Expr::binary(IrBinOp::Add, Expr::str(format!("{collection}/")), Expr::this_field(key_attr))
}

/// core / store-save / return, with the body hoisted so the save runs
/// after the mutation completed without an exception.
fn wrap_persistent(class: &mut ClassDecl, method_name: &str, collection: &str, key_attr: &str) {
    let (call, ret) = extract_body(class, method_name, "persist");
    let (run, ret_stmts) = run_and_return(call, &ret, "__persist_result");
    let mut stmts = run;
    stmts.push(Stmt::Expr(Expr::intrinsic(
        intrinsics::STORE_SAVE,
        vec![persist_key_expr(collection, key_attr)],
    )));
    stmts.extend(ret_stmts);
    class.find_method_mut(method_name).expect("exists").body = Block::of(stmts);
}

/// enter-log / core / exit-log, with the body hoisted so the exit log runs
/// before the value is returned.
fn wrap_logged(class: &mut ClassDecl, method_name: &str, level: &str, message: &str) {
    let (call, ret) = extract_body(class, method_name, "log");
    let (run, ret_stmts) = run_and_return(call, &ret, "__log_result");
    let mut stmts = vec![Stmt::Expr(Expr::intrinsic(
        intrinsics::LOG_EMIT,
        vec![Expr::str(level), Expr::str(format!("enter {message}"))],
    ))];
    stmts.extend(run);
    stmts.push(Stmt::Expr(Expr::intrinsic(
        intrinsics::LOG_EMIT,
        vec![Expr::str(level), Expr::str(format!("exit {message}"))],
    )));
    stmts.extend(ret_stmts);
    class.find_method_mut(method_name).expect("exists").body = Block::of(stmts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    fn marked_pim() -> Model {
        let mut m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        m.apply_stereotype(transfer, marks::STEREO_TRANSACTIONAL).unwrap();
        m.set_tag(transfer, marks::TAG_TX_ISOLATION, "serializable").unwrap();
        m.apply_stereotype(transfer, marks::STEREO_SECURED).unwrap();
        m.set_tag(transfer, marks::TAG_SEC_ROLE, "teller").unwrap();
        m.apply_stereotype(bank, marks::STEREO_REMOTE).unwrap();
        m.set_tag(bank, marks::TAG_DIST_NODE, "server").unwrap();
        m
    }

    #[test]
    fn transactional_wrap_inserts_begin_commit_rollback() {
        let m = marked_pim();
        let p = MonolithicGenerator::new().generate(&m, &BodyProvider::default());
        let printed = crate::printer::pretty_print(&p);
        assert!(printed.contains("tx.begin"));
        assert!(printed.contains("tx.commit"));
        assert!(printed.contains("tx.rollback"));
        assert!(printed.contains("sec.check"));
        assert!(printed.contains("net.call"));
        // Security check precedes the distribution guard (outer layers
        // are prepended later).
        let transfer = p.find_method("Bank", "transfer").unwrap();
        match &transfer.body.stmts[0] {
            Stmt::Expr(Expr::Intrinsic { name, .. }) => assert_eq!(name, intrinsics::SEC_CHECK),
            other => panic!("expected sec.check first, got {other:?}"),
        }
        // The functional body was hoisted into a `__tx` helper.
        assert!(p.find_method("Bank", "transfer__tx").is_some());
    }

    #[test]
    fn unmarked_model_generates_no_concern_code() {
        let m = banking_pim();
        let mono = MonolithicGenerator::new().generate(&m, &BodyProvider::default());
        let func = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert_eq!(mono, func, "without marks the baseline equals the functional program");
    }

    #[test]
    fn tangling_grows_statement_count() {
        let m = marked_pim();
        let mono = MonolithicGenerator::new().generate(&m, &BodyProvider::default());
        let func = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert!(
            mono.statement_count() > func.statement_count(),
            "inlined concern code must add statements"
        );
    }

    #[test]
    fn logged_wrap_brackets_the_body_and_hoists_it() {
        let mut m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let audit = m.find_operation(bank, "audit").unwrap();
        m.apply_stereotype(audit, marks::STEREO_LOGGED).unwrap();
        let p = MonolithicGenerator::new().generate(&m, &BodyProvider::default());
        let audit_m = p.find_method("Bank", "audit").unwrap();
        assert!(matches!(
            &audit_m.body.stmts[0],
            Stmt::Expr(Expr::Intrinsic { name, .. }) if name == intrinsics::LOG_EMIT
        ));
        // Exit log executes before the captured result is returned.
        let names: Vec<&str> = audit_m
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Expr(Expr::Intrinsic { name, .. }) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec![intrinsics::LOG_EMIT, intrinsics::LOG_EMIT]);
        assert!(matches!(audit_m.body.stmts.last().unwrap(), Stmt::Return(Some(_))));
        assert!(p.find_method("Bank", "audit__log").is_some());
    }

    #[test]
    fn void_transactional_method_commits_then_returns() {
        let mut m = banking_pim();
        let account = m.find_class("Account").unwrap();
        let deposit = m.find_operation(account, "deposit").unwrap();
        m.apply_stereotype(deposit, marks::STEREO_TRANSACTIONAL).unwrap();
        let p = MonolithicGenerator::new().generate(&m, &BodyProvider::default());
        let dep = p.find_method("Account", "deposit").unwrap();
        match &dep.body.stmts[1] {
            Stmt::TryCatch { body, .. } => {
                assert!(matches!(
                    &body.stmts[1],
                    Stmt::Expr(Expr::Intrinsic { name, .. }) if name == intrinsics::TX_COMMIT
                ));
                assert!(matches!(body.stmts.last().unwrap(), Stmt::Return(None)));
            }
            other => panic!("expected try/catch, got {other:?}"),
        }
    }
}
