//! The Java-like code IR. These are passive, compound data structures in
//! the C spirit; fields are public by design so that generators, weavers
//! and the interpreter can pattern-match freely.

use std::collections::BTreeMap;
use std::fmt;

/// A complete generated program: a set of classes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program (artifact) name.
    pub name: String,
    /// Top-level classes.
    pub classes: Vec<ClassDecl>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), classes: Vec::new() }
    }

    /// Finds a class by name.
    pub fn find_class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Finds a class by name, mutably.
    pub fn find_class_mut(&mut self, name: &str) -> Option<&mut ClassDecl> {
        self.classes.iter_mut().find(|c| c.name == name)
    }

    /// Finds a method `class::method`.
    pub fn find_method(&self, class: &str, method: &str) -> Option<&MethodDecl> {
        self.find_class(class)?.methods.iter().find(|m| m.name == method)
    }

    /// Total number of statements across all method bodies (a size metric
    /// used by the E5 generator-ablation experiment).
    pub fn statement_count(&self) -> usize {
        self.classes.iter().flat_map(|c| &c.methods).map(|m| m.body.statement_count()).sum()
    }
}

/// An annotation attached to a class or method; generated from model
/// stereotypes, matched by pointcuts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Annotation {
    /// Annotation name, e.g. `Transactional`.
    pub name: String,
    /// Named parameters.
    pub params: BTreeMap<String, String>,
}

impl Annotation {
    /// Creates a parameterless annotation.
    pub fn new(name: impl Into<String>) -> Self {
        Annotation { name: name.into(), params: BTreeMap::new() }
    }

    /// Adds a parameter, builder style.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }
}

/// Types of the code IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// No value (method return only).
    Void,
    /// Reference to a class by name.
    Object(String),
    /// Homogeneous list.
    List(Box<IrType>),
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrType::Int => write!(f, "long"),
            IrType::Real => write!(f, "double"),
            IrType::Bool => write!(f, "boolean"),
            IrType::Str => write!(f, "String"),
            IrType::Void => write!(f, "void"),
            IrType::Object(n) => write!(f, "{n}"),
            IrType::List(t) => write!(f, "List<{t}>"),
        }
    }
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Annotations (from stereotypes and concern marks).
    pub annotations: Vec<Annotation>,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
    /// Documentation comment.
    pub doc: String,
}

impl ClassDecl {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDecl { name: name.into(), ..ClassDecl::default() }
    }

    /// Returns true when the class carries the named annotation.
    pub fn has_annotation(&self, name: &str) -> bool {
        self.annotations.iter().any(|a| a.name == name)
    }

    /// Returns the named annotation, if present.
    pub fn annotation(&self, name: &str) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.name == name)
    }

    /// Finds a method by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodDecl> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Finds a method by name, mutably.
    pub fn find_method_mut(&mut self, name: &str) -> Option<&mut MethodDecl> {
        self.methods.iter_mut().find(|m| m.name == name)
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: IrType,
    /// Optional initializer.
    pub init: Option<Expr>,
}

impl FieldDecl {
    /// Creates a field without initializer.
    pub fn new(name: impl Into<String>, ty: IrType) -> Self {
        FieldDecl { name: name.into(), ty, init: None }
    }
}

/// A method parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: IrType,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, ty: IrType) -> Self {
        Param { name: name.into(), ty }
    }
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: IrType,
    /// Body.
    pub body: Block,
    /// Annotations (from stereotypes and concern marks).
    pub annotations: Vec<Annotation>,
    /// Static (class-level) method.
    pub is_static: bool,
}

impl MethodDecl {
    /// Creates a `void` method with an empty body.
    pub fn new(name: impl Into<String>) -> Self {
        MethodDecl {
            name: name.into(),
            params: Vec::new(),
            ret: IrType::Void,
            body: Block::default(),
            annotations: Vec::new(),
            is_static: false,
        }
    }

    /// Returns true when the method carries the named annotation.
    pub fn has_annotation(&self, name: &str) -> bool {
        self.annotations.iter().any(|a| a.name == name)
    }

    /// Returns the named annotation, if present.
    pub fn annotation(&self, name: &str) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.name == name)
    }
}

/// A statement block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn of(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// Counts statements recursively (blocks, branches, handlers).
    pub fn statement_count(&self) -> usize {
        self.stmts.iter().map(Stmt::statement_count).sum()
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Self {
        Block { stmts: iter.into_iter().collect() }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or parameter.
    Var(String),
    /// A field of an object.
    Field {
        /// Receiver expression.
        recv: Expr,
        /// Field name.
        name: String,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration.
    Local {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: IrType,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment.
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// Expression statement (usually a call).
    Expr(Expr),
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// Loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// Return, optionally with a value.
    Return(Option<Expr>),
    /// Throw an exception value.
    Throw(Expr),
    /// Try/catch(/finally).
    TryCatch {
        /// Protected body.
        body: Block,
        /// Exception variable bound in the handler.
        var: String,
        /// Handler block.
        handler: Block,
        /// Optional finally block.
        finally: Option<Block>,
    },
    /// Nested block (scoping).
    Block(Block),
}

impl Stmt {
    /// Counts this statement plus statements nested inside it.
    pub fn statement_count(&self) -> usize {
        match self {
            Stmt::If { then_block, else_block, .. } => {
                1 + then_block.statement_count()
                    + else_block.as_ref().map_or(0, Block::statement_count)
            }
            Stmt::While { body, .. } => 1 + body.statement_count(),
            Stmt::TryCatch { body, handler, finally, .. } => {
                1 + body.statement_count()
                    + handler.statement_count()
                    + finally.as_ref().map_or(0, Block::statement_count)
            }
            Stmt::Block(b) => 1 + b.statement_count(),
            _ => 1,
        }
    }

    /// Shorthand for `Stmt::Return(Some(e))`.
    pub fn ret(e: Expr) -> Stmt {
        Stmt::Return(Some(e))
    }

    /// Shorthand for a local with initializer.
    pub fn local(name: impl Into<String>, ty: IrType, init: Expr) -> Stmt {
        Stmt::Local { name: name.into(), ty, init: Some(init) }
    }

    /// Shorthand for assigning to a field of `this`.
    pub fn set_this_field(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Assign { target: LValue::Field { recv: Expr::This, name: name.into() }, value }
    }

    /// Shorthand for assigning to a variable.
    pub fn set_var(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Assign { target: LValue::Var(name.into()), value }
    }
}

/// Literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Null reference.
    Null,
}

/// Binary operators of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrBinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

impl IrBinOp {
    /// Java surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            IrBinOp::Add => "+",
            IrBinOp::Sub => "-",
            IrBinOp::Mul => "*",
            IrBinOp::Div => "/",
            IrBinOp::Rem => "%",
            IrBinOp::Eq => "==",
            IrBinOp::Ne => "!=",
            IrBinOp::Lt => "<",
            IrBinOp::Le => "<=",
            IrBinOp::Gt => ">",
            IrBinOp::Ge => ">=",
            IrBinOp::And => "&&",
            IrBinOp::Or => "||",
        }
    }
}

/// Unary operators of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrUnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Literal),
    /// Local variable or parameter reference.
    Var(String),
    /// The receiver object.
    This,
    /// Field read.
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// Method call. `recv = None` calls a method on `this`.
    Call {
        /// Receiver, or `None` for `this`.
        recv: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Object construction.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments (assigned to fields positionally by the
        /// interpreter when no constructor method exists).
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: IrBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: IrUnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Call into the runtime/middleware, e.g. `tx.begin`. The set of
    /// intrinsic names is defined by `comet-interp`.
    Intrinsic {
        /// Intrinsic name, e.g. `"tx.begin"`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Placeholder for the original join point inside *around* advice;
    /// replaced by the weaver, never executed directly.
    Proceed(Vec<Expr>),
    /// List literal.
    ListLit(Vec<Expr>),
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Literal::Int(i))
    }

    /// String literal shorthand.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Lit(Literal::Str(s.into()))
    }

    /// Boolean literal shorthand.
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Literal::Bool(b))
    }

    /// Null literal shorthand.
    pub fn null() -> Expr {
        Expr::Lit(Literal::Null)
    }

    /// Variable reference shorthand.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Field-of-`this` shorthand.
    pub fn this_field(name: impl Into<String>) -> Expr {
        Expr::Field { recv: Box::new(Expr::This), name: name.into() }
    }

    /// Call-on-`this` shorthand.
    pub fn call_this(method: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { recv: None, method: method.into(), args }
    }

    /// Call-on-receiver shorthand.
    pub fn call(recv: Expr, method: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { recv: Some(Box::new(recv)), method: method.into(), args }
    }

    /// Intrinsic call shorthand.
    pub fn intrinsic(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Intrinsic { name: name.into(), args }
    }

    /// Binary operation shorthand.
    pub fn binary(op: IrBinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Returns true when a [`Expr::Proceed`] occurs anywhere inside.
    pub fn contains_proceed(&self) -> bool {
        match self {
            Expr::Proceed(_) => true,
            Expr::Field { recv, .. } => recv.contains_proceed(),
            Expr::Call { recv, args, .. } => {
                recv.as_ref().is_some_and(|r| r.contains_proceed())
                    || args.iter().any(Expr::contains_proceed)
            }
            Expr::New { args, .. } | Expr::Intrinsic { args, .. } | Expr::ListLit(args) => {
                args.iter().any(Expr::contains_proceed)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_proceed() || rhs.contains_proceed(),
            Expr::Unary { operand, .. } => operand.contains_proceed(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup() {
        let mut p = Program::new("app");
        let mut c = ClassDecl::new("A");
        c.methods.push(MethodDecl::new("f"));
        p.classes.push(c);
        assert!(p.find_class("A").is_some());
        assert!(p.find_method("A", "f").is_some());
        assert!(p.find_method("A", "g").is_none());
        assert!(p.find_class("B").is_none());
    }

    #[test]
    fn statement_count_recurses() {
        let b = Block::of(vec![
            Stmt::Expr(Expr::int(1)),
            Stmt::If {
                cond: Expr::bool(true),
                then_block: Block::of(vec![Stmt::Return(None)]),
                else_block: Some(Block::of(vec![Stmt::Expr(Expr::int(2)), Stmt::Return(None)])),
            },
            Stmt::TryCatch {
                body: Block::of(vec![Stmt::Expr(Expr::int(3))]),
                var: "e".into(),
                handler: Block::of(vec![Stmt::Throw(Expr::var("e"))]),
                finally: None,
            },
        ]);
        assert_eq!(b.statement_count(), 1 + (1 + 1 + 2) + (1 + 1 + 1));
    }

    #[test]
    fn contains_proceed_deep() {
        let e = Expr::binary(
            IrBinOp::Add,
            Expr::int(1),
            Expr::call(Expr::This, "f", vec![Expr::Proceed(vec![])]),
        );
        assert!(e.contains_proceed());
        assert!(!Expr::int(1).contains_proceed());
    }

    #[test]
    fn annotations() {
        let mut c = ClassDecl::new("A");
        c.annotations.push(Annotation::new("Remote").with_param("node", "n1"));
        assert!(c.has_annotation("Remote"));
        assert_eq!(c.annotation("Remote").unwrap().params["node"], "n1");
        assert!(!c.has_annotation("Secured"));
    }

    #[test]
    fn type_display() {
        assert_eq!(IrType::Int.to_string(), "long");
        assert_eq!(IrType::Object("A".into()).to_string(), "A");
        assert_eq!(IrType::List(Box::new(IrType::Str)).to_string(), "List<String>");
    }
}
