//! # comet-codegen — code IR and code generators
//!
//! The paper proposes that, instead of one monolithic code generator
//! consuming the most-specialized PSM, the tool chain should have **a code
//! generator for the pure "functional" model** plus *aspect generators*
//! for the cross-cutting concerns. This crate provides:
//!
//! * a Java-like **code IR** ([`Program`], [`ClassDecl`], [`MethodDecl`],
//!   [`Stmt`], [`Expr`]) rich enough to express method bodies, exception
//!   handling and calls into the simulated middleware (via
//!   [`Expr::Intrinsic`]);
//! * the **functional code generator** ([`FunctionalGenerator`]) mapping a
//!   `comet-model` model to a skeleton program, with a [`BodyProvider`]
//!   for supplying the hand-written functional bodies (the "protected
//!   regions" of classic MDA tools);
//! * the **monolithic baseline generator** ([`MonolithicGenerator`]) that
//!   consumes a fully-specialized PSM and *inlines* concern code into
//!   method bodies — the tangled baseline that experiment E5 compares
//!   against;
//! * a **pretty printer** rendering the IR as Java-flavoured source text.
//!
//! ## Example
//!
//! ```
//! use comet_codegen::{FunctionalGenerator, BodyProvider};
//! use comet_model::sample::banking_pim;
//!
//! let model = banking_pim();
//! let program = FunctionalGenerator::new().generate(&model, &BodyProvider::default());
//! assert!(program.find_class("Account").is_some());
//! let source = comet_codegen::pretty_print(&program);
//! assert!(source.contains("class Account"));
//! ```

mod baseline;
mod generate;
mod ir;
pub mod marks;
mod printer;
mod validate;

pub use baseline::MonolithicGenerator;
pub use generate::{BodyProvider, FunctionalGenerator};
pub use ir::{
    Annotation, Block, ClassDecl, Expr, FieldDecl, IrBinOp, IrType, IrUnOp, LValue, Literal,
    MethodDecl, Param, Program, Stmt,
};
pub use printer::pretty_print;
pub use validate::{check_program, IrIssue};
