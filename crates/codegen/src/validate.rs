//! Sanity checks over generated programs: duplicate declarations,
//! stray `proceed` expressions outside advice templates, and references
//! to undeclared classes in `new` expressions.

use crate::ir::*;
use std::collections::BTreeSet;
use std::fmt;

/// An issue found by [`check_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrIssue {
    /// Two classes share a name.
    DuplicateClass(String),
    /// Two methods in one class share a name.
    DuplicateMethod {
        /// The class.
        class: String,
        /// The duplicated method name.
        method: String,
    },
    /// Two fields in one class share a name.
    DuplicateField {
        /// The class.
        class: String,
        /// The duplicated field name.
        field: String,
    },
    /// A `proceed(...)` survived outside an advice template. Woven
    /// programs must not contain any.
    StrayProceed {
        /// The class.
        class: String,
        /// The method.
        method: String,
    },
    /// `new X(...)` references a class that is not declared.
    UnknownClass {
        /// The undeclared class name.
        class: String,
        /// Where it is referenced.
        referenced_in: String,
    },
}

impl fmt::Display for IrIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrIssue::DuplicateClass(c) => write!(f, "duplicate class `{c}`"),
            IrIssue::DuplicateMethod { class, method } => {
                write!(f, "duplicate method `{method}` in class `{class}`")
            }
            IrIssue::DuplicateField { class, field } => {
                write!(f, "duplicate field `{field}` in class `{class}`")
            }
            IrIssue::StrayProceed { class, method } => {
                write!(f, "stray `proceed` in `{class}.{method}`")
            }
            IrIssue::UnknownClass { class, referenced_in } => {
                write!(f, "`new {class}` in {referenced_in} references an undeclared class")
            }
        }
    }
}

/// Checks a program; returns all issues found (empty = clean).
pub fn check_program(program: &Program) -> Vec<IrIssue> {
    let mut issues = Vec::new();
    let mut class_names = BTreeSet::new();
    let declared: BTreeSet<&str> = program.classes.iter().map(|c| c.name.as_str()).collect();
    for class in &program.classes {
        if !class_names.insert(class.name.clone()) {
            issues.push(IrIssue::DuplicateClass(class.name.clone()));
        }
        let mut method_names = BTreeSet::new();
        for m in &class.methods {
            if !method_names.insert(m.name.clone()) {
                issues.push(IrIssue::DuplicateMethod {
                    class: class.name.clone(),
                    method: m.name.clone(),
                });
            }
            let mut found_proceed = false;
            let mut new_classes = Vec::new();
            walk_block(&m.body, &mut found_proceed, &mut new_classes);
            if found_proceed {
                issues.push(IrIssue::StrayProceed {
                    class: class.name.clone(),
                    method: m.name.clone(),
                });
            }
            for n in new_classes {
                if !declared.contains(n.as_str()) {
                    issues.push(IrIssue::UnknownClass {
                        class: n,
                        referenced_in: format!("{}.{}", class.name, m.name),
                    });
                }
            }
        }
        let mut field_names = BTreeSet::new();
        for fld in &class.fields {
            if !field_names.insert(fld.name.clone()) {
                issues.push(IrIssue::DuplicateField {
                    class: class.name.clone(),
                    field: fld.name.clone(),
                });
            }
        }
    }
    issues
}

fn walk_block(block: &Block, proceed: &mut bool, news: &mut Vec<String>) {
    for s in &block.stmts {
        walk_stmt(s, proceed, news);
    }
}

fn walk_stmt(s: &Stmt, proceed: &mut bool, news: &mut Vec<String>) {
    match s {
        Stmt::Local { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, proceed, news);
            }
        }
        Stmt::Assign { target, value } => {
            if let LValue::Field { recv, .. } = target {
                walk_expr(recv, proceed, news);
            }
            walk_expr(value, proceed, news);
        }
        Stmt::Expr(e) | Stmt::Throw(e) => walk_expr(e, proceed, news),
        Stmt::If { cond, then_block, else_block } => {
            walk_expr(cond, proceed, news);
            walk_block(then_block, proceed, news);
            if let Some(eb) = else_block {
                walk_block(eb, proceed, news);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, proceed, news);
            walk_block(body, proceed, news);
        }
        Stmt::Return(v) => {
            if let Some(e) = v {
                walk_expr(e, proceed, news);
            }
        }
        Stmt::TryCatch { body, handler, finally, .. } => {
            walk_block(body, proceed, news);
            walk_block(handler, proceed, news);
            if let Some(fin) = finally {
                walk_block(fin, proceed, news);
            }
        }
        Stmt::Block(b) => walk_block(b, proceed, news),
    }
}

fn walk_expr(e: &Expr, proceed: &mut bool, news: &mut Vec<String>) {
    match e {
        Expr::Proceed(args) => {
            *proceed = true;
            for a in args {
                walk_expr(a, proceed, news);
            }
        }
        Expr::New { class, args } => {
            news.push(class.clone());
            for a in args {
                walk_expr(a, proceed, news);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, proceed, news),
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                walk_expr(r, proceed, news);
            }
            for a in args {
                walk_expr(a, proceed, news);
            }
        }
        Expr::Intrinsic { args, .. } | Expr::ListLit(args) => {
            for a in args {
                walk_expr(a, proceed, news);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, proceed, news);
            walk_expr(rhs, proceed, news);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, proceed, news),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_has_no_issues() {
        let mut p = Program::new("x");
        let mut c = ClassDecl::new("A");
        c.fields.push(FieldDecl::new("f", IrType::Int));
        c.methods.push(MethodDecl::new("m"));
        p.classes.push(c);
        assert!(check_program(&p).is_empty());
    }

    #[test]
    fn detects_duplicates() {
        let mut p = Program::new("x");
        p.classes.push(ClassDecl::new("A"));
        p.classes.push(ClassDecl::new("A"));
        let mut b = ClassDecl::new("B");
        b.methods.push(MethodDecl::new("m"));
        b.methods.push(MethodDecl::new("m"));
        b.fields.push(FieldDecl::new("f", IrType::Int));
        b.fields.push(FieldDecl::new("f", IrType::Str));
        p.classes.push(b);
        let issues = check_program(&p);
        assert!(issues.contains(&IrIssue::DuplicateClass("A".into())));
        assert!(issues
            .iter()
            .any(|i| matches!(i, IrIssue::DuplicateMethod { method, .. } if method == "m")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, IrIssue::DuplicateField { field, .. } if field == "f")));
    }

    #[test]
    fn detects_stray_proceed_and_unknown_new() {
        let mut p = Program::new("x");
        let mut c = ClassDecl::new("A");
        let mut m = MethodDecl::new("m");
        m.body = Block::of(vec![
            Stmt::Expr(Expr::Proceed(vec![])),
            Stmt::Expr(Expr::New { class: "Ghost".into(), args: vec![] }),
        ]);
        c.methods.push(m);
        p.classes.push(c);
        let issues = check_program(&p);
        assert!(issues.iter().any(|i| matches!(i, IrIssue::StrayProceed { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, IrIssue::UnknownClass { class, .. } if class == "Ghost")));
        assert!(issues[0].to_string().contains("A.m"));
    }

    #[test]
    fn proceed_nested_in_try_detected() {
        let mut p = Program::new("x");
        let mut c = ClassDecl::new("A");
        let mut m = MethodDecl::new("m");
        m.body = Block::of(vec![Stmt::TryCatch {
            body: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
            var: "e".into(),
            handler: Block::default(),
            finally: None,
        }]);
        c.methods.push(m);
        p.classes.push(c);
        assert!(check_program(&p).iter().any(|i| matches!(i, IrIssue::StrayProceed { .. })));
    }
}
