//! The functional code generator: model → skeleton program, with
//! hand-written "functional" bodies supplied through a [`BodyProvider`]
//! (the protected regions of classic MDA code generators).

use crate::ir::*;
use comet_model::{Model, Multiplicity, Primitive, TypeRef};
use std::collections::BTreeMap;

/// Supplies method bodies for generated operations, keyed by
/// `Class::method`. Operations without a provided body get a default
/// body returning the default value of their return type.
#[derive(Debug, Clone, Default)]
pub struct BodyProvider {
    bodies: BTreeMap<String, Block>,
}

impl BodyProvider {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a body for `Class::method`, builder style.
    pub fn provide(mut self, qualified: &str, body: Block) -> Self {
        self.bodies.insert(qualified.to_owned(), body);
        self
    }

    /// Looks up the body for `class::method`.
    pub fn get(&self, class: &str, method: &str) -> Option<&Block> {
        self.bodies.get(&format!("{class}::{method}"))
    }

    /// The provided `(qualified name, body)` pairs, in name order —
    /// deterministic, so cache layers can fingerprint a provider.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Block)> {
        self.bodies.iter().map(|(name, body)| (name.as_str(), body))
    }

    /// Number of provided bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// True when no bodies are registered.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// Maps a model [`TypeRef`] to an IR type.
pub(crate) fn ir_type(model: &Model, ty: TypeRef) -> IrType {
    match ty {
        TypeRef::Primitive(Primitive::Int) => IrType::Int,
        TypeRef::Primitive(Primitive::Real) => IrType::Real,
        TypeRef::Primitive(Primitive::Bool) => IrType::Bool,
        TypeRef::Primitive(Primitive::Str) => IrType::Str,
        TypeRef::Primitive(Primitive::Void) => IrType::Void,
        TypeRef::Element(id) => IrType::Object(
            model.element(id).map(|e| e.name().to_owned()).unwrap_or_else(|_| "Object".into()),
        ),
    }
}

/// Default value expression for an IR type.
pub(crate) fn default_value(ty: &IrType) -> Expr {
    match ty {
        IrType::Int => Expr::int(0),
        IrType::Real => Expr::Lit(Literal::Real(0.0)),
        IrType::Bool => Expr::bool(false),
        IrType::Str => Expr::str(""),
        IrType::Void => Expr::null(),
        IrType::Object(_) | IrType::List(_) => Expr::null(),
    }
}

fn default_body(ret: &IrType) -> Block {
    match ret {
        IrType::Void => Block::default(),
        other => Block::of(vec![Stmt::ret(default_value(other))]),
    }
}

/// The functional code generator of the paper's proposal: it projects the
/// *functional* view out of the (possibly marked) model — concern
/// stereotypes and `comet.*` tags are stripped unless
/// [`FunctionalGenerator::with_marks`] opts in — and emits one IR class
/// per model class.
#[derive(Debug, Clone, Default)]
pub struct FunctionalGenerator {
    accessors: bool,
    keep_marks: bool,
}

impl FunctionalGenerator {
    /// Creates a generator with default options (no accessors; concern
    /// marks stripped).
    pub fn new() -> Self {
        Self::default()
    }

    /// Also generates `getX`/`setX` accessors for every attribute, unless
    /// an operation with the same name already exists in the model.
    pub fn with_accessors(mut self) -> Self {
        self.accessors = true;
        self
    }

    /// Carries concern stereotypes and `comet.*` tags into IR annotations
    /// instead of stripping them (for annotation-based pointcuts). The
    /// default strips them, keeping the functional artifact independent
    /// of concern parameters.
    pub fn with_marks(mut self) -> Self {
        self.keep_marks = true;
        self
    }

    fn keep_stereotype(&self, name: &str) -> bool {
        self.keep_marks || !crate::marks::CONCERN_STEREOTYPES.contains(&name)
    }

    fn keep_tag(&self, key: &str) -> bool {
        self.keep_marks || !crate::marks::is_concern_tag(key)
    }

    /// Generates the program for `model`, pulling functional bodies from
    /// `bodies`.
    pub fn generate(&self, model: &Model, bodies: &BodyProvider) -> Program {
        let mut program = Program::new(model.name());
        for class_id in model.classes() {
            let class_el = match model.element(class_id) {
                Ok(e) => e,
                Err(_) => continue,
            };
            let mut class = ClassDecl::new(class_el.name());
            class.doc = class_el.core().doc.clone();
            for s in &class_el.core().stereotypes {
                if !self.keep_stereotype(s) {
                    continue;
                }
                let mut ann = Annotation::new(s.clone());
                for (k, v) in &class_el.core().tags {
                    if self.keep_tag(k) {
                        ann.params.insert(k.clone(), v.to_string());
                    }
                }
                class.annotations.push(ann);
            }
            // Fields from attributes (and association ends pointing away
            // from this class are left to the body author: the IR has no
            // relational storage).
            for attr_id in model.attributes_of(class_id) {
                let attr = match model.element(attr_id) {
                    Ok(a) => a,
                    Err(_) => continue,
                };
                let data = attr.as_attribute().expect("attributes_of returns attributes");
                let mut ty = ir_type(model, data.ty);
                if data.multiplicity != Multiplicity::one()
                    && data.multiplicity != Multiplicity::optional()
                {
                    ty = IrType::List(Box::new(ty));
                }
                let mut field = FieldDecl::new(attr.name(), ty);
                field.init = None;
                class.fields.push(field);
            }
            // Methods from operations.
            for op_id in model.operations_of(class_id) {
                let op_el = match model.element(op_id) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                let data = op_el.as_operation().expect("operations_of returns operations");
                let mut method = MethodDecl::new(op_el.name());
                method.ret = ir_type(model, data.return_type);
                method.is_static = data.is_static;
                for s in &op_el.core().stereotypes {
                    if !self.keep_stereotype(s) {
                        continue;
                    }
                    let mut ann = Annotation::new(s.clone());
                    for (k, v) in &op_el.core().tags {
                        if self.keep_tag(k) {
                            ann.params.insert(k.clone(), v.to_string());
                        }
                    }
                    method.annotations.push(ann);
                }
                for p_id in model.parameters_of(op_id) {
                    let p = match model.element(p_id) {
                        Ok(p) => p,
                        Err(_) => continue,
                    };
                    let pd = p.as_parameter().expect("parameters_of returns parameters");
                    method.params.push(Param::new(p.name(), ir_type(model, pd.ty)));
                }
                method.body = bodies
                    .get(class_el.name(), op_el.name())
                    .cloned()
                    .unwrap_or_else(|| default_body(&method.ret));
                class.methods.push(method);
            }
            if self.accessors {
                self.add_accessors(model, class_id, &mut class);
            }
            program.classes.push(class);
        }
        program
    }

    fn add_accessors(
        &self,
        model: &Model,
        class_id: comet_model::ElementId,
        class: &mut ClassDecl,
    ) {
        let fields: Vec<(String, IrType)> =
            class.fields.iter().map(|f| (f.name.clone(), f.ty.clone())).collect();
        for (name, ty) in fields {
            let cap = capitalize(&name);
            let getter = format!("get{cap}");
            let setter = format!("set{cap}");
            if model.find_operation(class_id, &getter).is_none()
                && class.find_method(&getter).is_none()
            {
                let mut g = MethodDecl::new(&getter);
                g.ret = ty.clone();
                g.body = Block::of(vec![Stmt::ret(Expr::this_field(&name))]);
                class.methods.push(g);
            }
            if model.find_operation(class_id, &setter).is_none()
                && class.find_method(&setter).is_none()
            {
                let mut s = MethodDecl::new(&setter);
                s.params.push(Param::new("value", ty));
                s.body = Block::of(vec![Stmt::set_this_field(&name, Expr::var("value"))]);
                class.methods.push(s);
            }
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    #[test]
    fn generates_classes_fields_methods() {
        let m = banking_pim();
        let p = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert_eq!(p.classes.len(), 3);
        let account = p.find_class("Account").unwrap();
        assert_eq!(account.fields.len(), 2);
        assert_eq!(account.fields[0].name, "number");
        assert_eq!(account.fields[1].ty, IrType::Int);
        let deposit = account.find_method("deposit").unwrap();
        assert_eq!(deposit.params.len(), 1);
        assert_eq!(deposit.ret, IrType::Void);
        let withdraw = account.find_method("withdraw").unwrap();
        assert_eq!(withdraw.ret, IrType::Bool);
        // Default body returns the default of the return type.
        assert_eq!(withdraw.body.stmts, vec![Stmt::ret(Expr::bool(false))]);
        assert!(account.find_method("deposit").unwrap().body.stmts.is_empty());
    }

    #[test]
    fn provided_bodies_override_defaults() {
        let m = banking_pim();
        let body = Block::of(vec![Stmt::set_this_field(
            "balance",
            Expr::binary(IrBinOp::Add, Expr::this_field("balance"), Expr::var("amount")),
        )]);
        let bodies = BodyProvider::new().provide("Account::deposit", body.clone());
        assert_eq!(bodies.len(), 1);
        assert!(!bodies.is_empty());
        let p = FunctionalGenerator::new().generate(&m, &bodies);
        assert_eq!(p.find_method("Account", "deposit").unwrap().body, body);
    }

    #[test]
    fn stereotypes_become_annotations_with_tag_params_when_kept() {
        let mut m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        m.apply_stereotype(transfer, "Transactional").unwrap();
        m.set_tag(transfer, "comet.tx.isolation", "serializable").unwrap();
        // Default: concern marks stripped from the functional artifact.
        let stripped = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert!(!stripped.find_method("Bank", "transfer").unwrap().has_annotation("Transactional"));
        // Opt-in: marks carried for annotation-based pointcuts.
        let p = FunctionalGenerator::new().with_marks().generate(&m, &BodyProvider::default());
        let method = p.find_method("Bank", "transfer").unwrap();
        assert!(method.has_annotation("Transactional"));
        assert_eq!(
            method.annotation("Transactional").unwrap().params["comet.tx.isolation"],
            "serializable"
        );
        // Non-concern stereotypes survive stripping.
        m.apply_stereotype(transfer, "Entity").unwrap();
        let stripped2 = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert!(stripped2.find_method("Bank", "transfer").unwrap().has_annotation("Entity"));
    }

    #[test]
    fn accessors_generated_without_clobbering_model_operations() {
        let m = banking_pim();
        let p = FunctionalGenerator::new().with_accessors().generate(&m, &BodyProvider::default());
        let account = p.find_class("Account").unwrap();
        // `getBalance` exists as a *model* operation; the accessor pass
        // must not duplicate it.
        let count = account.methods.iter().filter(|mm| mm.name == "getBalance").count();
        assert_eq!(count, 1);
        assert!(account.find_method("setBalance").is_some());
        assert!(account.find_method("getNumber").is_some());
    }

    #[test]
    fn element_typed_attributes_map_to_object_types() {
        let mut m = comet_model::Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.add_attribute(b, "a", comet_model::TypeRef::Element(a)).unwrap();
        let p = FunctionalGenerator::new().generate(&m, &BodyProvider::default());
        assert_eq!(p.find_class("B").unwrap().fields[0].ty, IrType::Object("A".into()));
    }
}
