//! Extension concern: **concurrency** — synchronization of critical
//! operations via named middleware locks (the paper lists concurrency
//! among the middleware services, and cites Kienzle & Guerraoui's study
//! of exactly this concern).
//!
//! * `Si` slots: `methods` (`Class.method` entries to serialize) and
//!   `lock` (the named lock guarding them; one lock serializes all).
//! * CMT_sync: marks each listed operation «Synchronized» with the lock
//!   tagged value.
//! * CA_sync: per method, `around` advice: acquire, `proceed`, release —
//!   releasing on the exception path too.

use crate::util::{
    method_exists_ocl, method_stereotyped_ocl, pc_err, resolve_method, split_method,
};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{intrinsics, STEREO_SYNCHRONIZED, TAG_SYNC_LOCK};
use comet_codegen::{Block, Expr, IrType, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "concurrency";

fn schema() -> ParamSchema {
    ParamSchema::new().str_list("methods", true).string("lock", false, Some("global"))
}

/// Builds the concurrency [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("concurrency", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_exists_ocl(c, m))
                        .collect()
                })
                .unwrap_or_default()
        })
        .postconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_stereotyped_ocl(c, m, STEREO_SYNCHRONIZED))
                        .collect()
                })
                .unwrap_or_default()
        })
        .body(|model, params| {
            let lock = params.str("lock")?.to_owned();
            for entry in params.str_list("methods")? {
                let (_, op) = resolve_method(model, entry)?;
                model.apply_stereotype(op, STEREO_SYNCHRONIZED)?;
                model.set_tag(op, TAG_SYNC_LOCK, lock.as_str())?;
            }
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("concurrency-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let lock = params.str("lock")?.to_owned();
            let mut advices = Vec::new();
            for entry in params.str_list("methods")? {
                let (class, method) = split_method(entry).map_err(AspectGenError::Custom)?;
                let pc = parse_pointcut(&format!("execution({class}.{method})")).map_err(pc_err)?;
                advices.push(Advice::new(AdviceKind::Around, pc, guarded_body(&lock)));
            }
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

/// Around template: acquire / proceed / release, exception-safe.
fn guarded_body(lock: &str) -> Block {
    Block::of(vec![
        Stmt::Expr(Expr::intrinsic(intrinsics::LOCK_ACQUIRE, vec![Expr::str(lock)])),
        Stmt::Local { name: "__r".into(), ty: IrType::Str, init: None },
        Stmt::TryCatch {
            body: Block::of(vec![Stmt::set_var("__r", Expr::Proceed(vec![]))]),
            var: "__e".into(),
            handler: Block::of(vec![
                Stmt::Expr(Expr::intrinsic(intrinsics::LOCK_RELEASE, vec![Expr::str(lock)])),
                Stmt::Throw(Expr::var("__e")),
            ]),
            finally: None,
        },
        Stmt::Expr(Expr::intrinsic(intrinsics::LOCK_RELEASE, vec![Expr::str(lock)])),
        Stmt::ret(Expr::var("__r")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    #[test]
    fn cmt_marks_with_lock_tag() {
        let si = ParamSet::new()
            .with("methods", ParamValue::from(vec!["Account.withdraw".to_owned()]))
            .with("lock", ParamValue::from("account-lock"));
        let (cmt, ca) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let account = m.find_class("Account").unwrap();
        let withdraw = m.find_operation(account, "withdraw").unwrap();
        assert!(m.has_stereotype(withdraw, STEREO_SYNCHRONIZED).unwrap());
        assert_eq!(
            m.element(withdraw).unwrap().core().tag(TAG_SYNC_LOCK).unwrap().as_str(),
            Some("account-lock")
        );
        assert_eq!(ca.advices.len(), 1);
    }

    #[test]
    fn lock_defaults_to_global() {
        let si =
            ParamSet::new().with("methods", ParamValue::from(vec!["Account.withdraw".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let account = m.find_class("Account").unwrap();
        let withdraw = m.find_operation(account, "withdraw").unwrap();
        assert_eq!(
            m.element(withdraw).unwrap().core().tag(TAG_SYNC_LOCK).unwrap().as_str(),
            Some("global")
        );
    }

    #[test]
    fn guarded_body_releases_on_both_paths() {
        let b = guarded_body("L");
        // acquire, declare, try, release, return
        assert_eq!(b.stmts.len(), 5);
        assert!(matches!(&b.stmts[2], Stmt::TryCatch { handler, .. }
            if handler.stmts.len() == 2));
    }
}
