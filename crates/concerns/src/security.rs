//! Concern **C3: security** (paper, Fig. 2).
//!
//! * `Si` slots: `protected` (entries `Class.method:role` — which
//!   operations are guarded and which role each requires) and `policy`.
//! * CMT_sec: marks each listed operation «Secured» and records the
//!   required role and the policy as tagged values.
//! * CA_sec: one `before` advice per listed operation calling
//!   `sec.check(role, "Class.method")`, which throws (and audits) on
//!   denial; with the `audit` policy the denial is logged but the call
//!   proceeds.

use crate::util::{
    method_exists_ocl, method_stereotyped_ocl, pc_err, resolve_method, split_method,
};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{intrinsics, STEREO_SECURED, TAG_SEC_POLICY, TAG_SEC_ROLE};
use comet_codegen::{Block, Expr, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "security";

fn schema() -> ParamSchema {
    ParamSchema::new().str_list("protected", true).choice("policy", &["deny", "audit"], "deny")
}

/// Splits a `Class.method:role` entry.
fn split_protected(entry: &str) -> Result<(&str, &str, &str), String> {
    let (method_part, role) = entry
        .rsplit_once(':')
        .filter(|(_, r)| !r.is_empty())
        .ok_or_else(|| format!("expected `Class.method:role`, got `{entry}`"))?;
    let (class, method) = split_method(method_part)?;
    Ok((class, method, role))
}

/// Builds the security [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("security", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            params
                .str_list("protected")
                .map(|entries| {
                    entries
                        .iter()
                        .filter_map(|e| split_protected(e).ok())
                        .map(|(c, m, _)| method_exists_ocl(c, m))
                        .collect()
                })
                .unwrap_or_default()
        })
        .postconditions_fn(|params: &ParamSet| {
            params
                .str_list("protected")
                .map(|entries| {
                    entries
                        .iter()
                        .filter_map(|e| split_protected(e).ok())
                        .map(|(c, m, _)| method_stereotyped_ocl(c, m, STEREO_SECURED))
                        .collect()
                })
                .unwrap_or_default()
        })
        .body(|model, params| {
            let policy = params.str("policy")?.to_owned();
            for entry in params.str_list("protected")? {
                let (class, method, role) =
                    split_protected(entry).map_err(comet_transform::TransformError::Custom)?;
                let (_, op) = resolve_method(model, &format!("{class}.{method}"))?;
                model.apply_stereotype(op, STEREO_SECURED)?;
                model.set_tag(op, TAG_SEC_ROLE, role)?;
                model.set_tag(op, TAG_SEC_POLICY, policy.as_str())?;
            }
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("security-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let policy = params.str("policy")?.to_owned();
            let mut advices = Vec::new();
            for entry in params.str_list("protected")? {
                let (class, method, role) =
                    split_protected(entry).map_err(AspectGenError::Custom)?;
                let pc = parse_pointcut(&format!("execution({class}.{method})")).map_err(pc_err)?;
                advices.push(Advice::new(
                    AdviceKind::Before,
                    pc,
                    check_body(role, &format!("{class}.{method}"), &policy),
                ));
            }
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

/// The before-advice template: enforce or audit.
fn check_body(role: &str, resource: &str, policy: &str) -> Block {
    let check = Stmt::Expr(Expr::intrinsic(
        intrinsics::SEC_CHECK,
        vec![Expr::str(role), Expr::str(resource)],
    ));
    if policy == "audit" {
        // Audit-only: record the decision but swallow the denial.
        Block::of(vec![Stmt::TryCatch {
            body: Block::of(vec![check]),
            var: "__denied".into(),
            handler: Block::of(vec![Stmt::Expr(Expr::intrinsic(
                intrinsics::LOG_EMIT,
                vec![
                    Expr::str("warn"),
                    Expr::binary(
                        comet_codegen::IrBinOp::Add,
                        Expr::str(format!("audit-only denial at {resource}: ")),
                        Expr::var("__denied"),
                    ),
                ],
            ))]),
            finally: None,
        }])
    } else {
        Block::of(vec![check])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    #[test]
    fn split_protected_parses() {
        assert_eq!(
            split_protected("Bank.transfer:teller").unwrap(),
            ("Bank", "transfer", "teller")
        );
        assert!(split_protected("Bank.transfer").is_err());
        assert!(split_protected("Banktransfer:role").is_err());
        assert!(split_protected("Bank.transfer:").is_err());
    }

    #[test]
    fn cmt_marks_and_records_role() {
        let si = ParamSet::new()
            .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]));
        let (cmt, ca) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        assert!(m.has_stereotype(transfer, STEREO_SECURED).unwrap());
        assert_eq!(
            m.element(transfer).unwrap().core().tag(TAG_SEC_ROLE).unwrap().as_str(),
            Some("teller")
        );
        assert_eq!(ca.advices.len(), 1);
        assert_eq!(ca.advices[0].kind, AdviceKind::Before);
    }

    #[test]
    fn audit_policy_wraps_check_in_try() {
        let deny = check_body("r", "C.m", "deny");
        assert!(matches!(deny.stmts[0], Stmt::Expr(_)));
        let audit = check_body("r", "C.m", "audit");
        assert!(matches!(audit.stmts[0], Stmt::TryCatch { .. }));
    }

    #[test]
    fn bad_entry_rejected_at_specialization_apply() {
        let si = ParamSet::new().with("protected", ParamValue::from(vec!["garbage".to_owned()]));
        // The aspect side fails fast.
        assert!(pair().specialize(si).is_err());
    }
}
