//! Shared helpers for the concern modules.

use comet_aspectgen::AspectGenError;
use comet_model::{ElementId, Model};
use comet_transform::TransformError;

/// Splits a `Class.method` entry.
pub(crate) fn split_method(entry: &str) -> Result<(&str, &str), String> {
    entry
        .split_once('.')
        .filter(|(c, m)| !c.is_empty() && !m.is_empty())
        .ok_or_else(|| format!("expected `Class.method`, got `{entry}`"))
}

/// Resolves a `Class.method` entry against the model.
pub(crate) fn resolve_method(
    model: &Model,
    entry: &str,
) -> Result<(ElementId, ElementId), TransformError> {
    let (class_name, method_name) = split_method(entry).map_err(TransformError::Custom)?;
    let class = model
        .find_class(class_name)
        .ok_or_else(|| TransformError::Custom(format!("no class `{class_name}` in the model")))?;
    let op = model.find_operation(class, method_name).ok_or_else(|| {
        TransformError::Custom(format!("no operation `{method_name}` on class `{class_name}`"))
    })?;
    Ok((class, op))
}

/// OCL: "`Class` exists and has operation `method`".
pub(crate) fn method_exists_ocl(class: &str, method: &str) -> String {
    format!(
        "Class.allInstances()->exists(c | c.name = '{class}' and \
         c.operations->exists(o | o.name = '{method}'))"
    )
}

/// OCL: "operation `method` of `Class` carries `stereotype`".
pub(crate) fn method_stereotyped_ocl(class: &str, method: &str, stereotype: &str) -> String {
    format!(
        "Class.allInstances()->exists(c | c.name = '{class}' and \
         c.operations->exists(o | o.name = '{method}' and o.hasStereotype('{stereotype}')))"
    )
}

/// Maps a pointcut parse failure into an aspect-generation error.
pub(crate) fn pc_err(e: impl std::fmt::Display) -> AspectGenError {
    AspectGenError::Pointcut(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    #[test]
    fn split_method_validates() {
        assert_eq!(split_method("Bank.transfer").unwrap(), ("Bank", "transfer"));
        assert!(split_method("nodot").is_err());
        assert!(split_method(".x").is_err());
        assert!(split_method("x.").is_err());
    }

    #[test]
    fn resolve_method_against_model() {
        let m = banking_pim();
        assert!(resolve_method(&m, "Bank.transfer").is_ok());
        assert!(resolve_method(&m, "Bank.launder").is_err());
        assert!(resolve_method(&m, "Casino.bet").is_err());
    }

    #[test]
    fn ocl_snippets_evaluate() {
        let m = banking_pim();
        let ctx = comet_ocl::Context::for_model(&m);
        assert!(comet_ocl::evaluate_bool(&method_exists_ocl("Bank", "transfer"), &ctx).unwrap());
        assert!(!comet_ocl::evaluate_bool(&method_exists_ocl("Bank", "nope"), &ctx).unwrap());
        assert!(!comet_ocl::evaluate_bool(&method_stereotyped_ocl("Bank", "transfer", "X"), &ctx)
            .unwrap());
    }
}
