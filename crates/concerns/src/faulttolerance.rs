//! Concern **C7: fault tolerance** — the canonical "missing member" of
//! the paper's middleware-service family (§1 lists communication,
//! distribution, concurrency, security, transactions; Kienzle &
//! Guerraoui's semantic-coupling argument says fault handling cannot be
//! a *generic* aspect without application knowledge). Here that
//! knowledge lives in `Si`:
//!
//! * `Si` slots: `methods` (the `Class.method` operations to guard),
//!   `idempotent` (the subset that may be *retried* — retrying a
//!   non-idempotent operation would duplicate its effect, so only the
//!   application can grant this), `max_attempts`, `backoff_us`,
//!   `deadline_us` (0 disables), `breaker_threshold`,
//!   `breaker_cooldown_us`.
//! * CMT_ft: marks every guarded operation «Breaker» (+ threshold and
//!   cooldown tags), the idempotent ones «Retryable» (+ attempts and
//!   backoff tags), and — when a deadline is configured — «Deadline»
//!   (+ the deadline tag).
//! * CA_ft: one `around` advice per guarded operation implementing, in
//!   order: circuit-breaker admission (typed circuit-open error when
//!   open), `proceed` under try, breaker bookkeeping, bounded retry
//!   with exponential backoff + deterministic jitter (sim clock only),
//!   and deadline enforcement against the retry budget.

use crate::util::{
    method_exists_ocl, method_stereotyped_ocl, pc_err, resolve_method, split_method,
};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{
    intrinsics, STEREO_BREAKER, STEREO_DEADLINE, STEREO_RETRYABLE, TAG_FT_BACKOFF_US,
    TAG_FT_BREAKER_COOLDOWN_US, TAG_FT_BREAKER_THRESHOLD, TAG_FT_DEADLINE_US, TAG_FT_MAX_ATTEMPTS,
};
use comet_codegen::{Block, Expr, IrBinOp, IrType, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformError, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "faulttolerance";

fn schema() -> ParamSchema {
    ParamSchema::new()
        .str_list("methods", true)
        .str_list("idempotent", false)
        .integer("max_attempts", 3)
        .integer("backoff_us", 100)
        .integer("deadline_us", 0)
        .integer("breaker_threshold", 3)
        .integer("breaker_cooldown_us", 10_000)
}

/// Builds the fault-tolerance [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("faulttolerance", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_exists_ocl(c, m))
                        .collect()
                })
                .unwrap_or_default()
        })
        .postconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_stereotyped_ocl(c, m, STEREO_BREAKER))
                        .collect()
                })
                .unwrap_or_default()
        })
        .body(|model, params| {
            let methods = params.str_list("methods")?.to_vec();
            let idempotent = params.str_list("idempotent")?.to_vec();
            if let Some(orphan) = idempotent.iter().find(|m| !methods.contains(m)) {
                return Err(TransformError::Custom(format!(
                    "idempotent entry `{orphan}` is not in `methods`"
                )));
            }
            let max_attempts = params.int("max_attempts")?;
            let backoff_us = params.int("backoff_us")?;
            let deadline_us = params.int("deadline_us")?;
            let threshold = params.int("breaker_threshold")?;
            let cooldown_us = params.int("breaker_cooldown_us")?;
            for entry in &methods {
                let (_, op) = resolve_method(model, entry)?;
                model.apply_stereotype(op, STEREO_BREAKER)?;
                model.set_tag(op, TAG_FT_BREAKER_THRESHOLD, threshold)?;
                model.set_tag(op, TAG_FT_BREAKER_COOLDOWN_US, cooldown_us)?;
                if idempotent.contains(entry) {
                    model.apply_stereotype(op, STEREO_RETRYABLE)?;
                    model.set_tag(op, TAG_FT_MAX_ATTEMPTS, max_attempts)?;
                    model.set_tag(op, TAG_FT_BACKOFF_US, backoff_us)?;
                }
                if deadline_us > 0 {
                    model.apply_stereotype(op, STEREO_DEADLINE)?;
                    model.set_tag(op, TAG_FT_DEADLINE_US, deadline_us)?;
                }
            }
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("faulttolerance-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let methods = params.str_list("methods")?.to_vec();
            let idempotent = params.str_list("idempotent")?.to_vec();
            let max_attempts = params.int("max_attempts")?.max(1);
            let backoff_us = params.int("backoff_us")?.max(0);
            let deadline_us = params.int("deadline_us")?.max(0);
            let threshold = params.int("breaker_threshold")?.max(0);
            let cooldown_us = params.int("breaker_cooldown_us")?.max(0);
            let mut advices = Vec::new();
            for entry in &methods {
                let (class, method) = split_method(entry).map_err(AspectGenError::Custom)?;
                let pc = parse_pointcut(&format!("execution({class}.{method})")).map_err(pc_err)?;
                let cfg = GuardConfig {
                    callee: format!("{class}.{method}"),
                    // Only Si-granted idempotent operations retry; the
                    // rest fail on the first error (breaker and deadline
                    // still apply).
                    max_attempts: if idempotent.contains(entry) { max_attempts } else { 1 },
                    backoff_us,
                    deadline_us,
                    threshold,
                    cooldown_us,
                };
                advices.push(Advice::new(AdviceKind::Around, pc, around_body(&cfg)));
            }
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

struct GuardConfig {
    callee: String,
    max_attempts: i64,
    backoff_us: i64,
    deadline_us: i64,
    threshold: i64,
    cooldown_us: i64,
}

/// The around-advice template; `proceed()` is substituted by the weaver.
///
/// ```text
/// __ft_start = ft.now_us(); __ft_attempt = 0
/// while (true) {
///     __ft_attempt += 1
///     ft.breaker.allow(callee)            // throws typed circuit-open
///     try {
///         __r = proceed()
///         ft.breaker.record(callee, true, ...)
///         return __r
///     } catch (__e) {
///         ft.breaker.record(callee, false, ...)
///         if (__ft_attempt >= max_attempts) throw __e
///         ft.deadline.check(callee, __ft_start, deadline)  // typed
///         ft.backoff(__ft_attempt, base)  // advances the sim clock
///     }
/// }
/// ```
fn around_body(cfg: &GuardConfig) -> Block {
    let callee = Expr::str(cfg.callee.as_str());
    let record = |ok: bool| {
        Stmt::Expr(Expr::intrinsic(
            intrinsics::FT_BREAKER_RECORD,
            vec![
                callee.clone(),
                Expr::bool(ok),
                Expr::int(cfg.threshold),
                Expr::int(cfg.cooldown_us),
            ],
        ))
    };
    Block::of(vec![
        Stmt::local("__ft_start", IrType::Int, Expr::intrinsic(intrinsics::FT_NOW_US, vec![])),
        Stmt::local("__ft_attempt", IrType::Int, Expr::int(0)),
        Stmt::While {
            cond: Expr::bool(true),
            body: Block::of(vec![
                Stmt::set_var(
                    "__ft_attempt",
                    Expr::binary(IrBinOp::Add, Expr::var("__ft_attempt"), Expr::int(1)),
                ),
                // Fail fast while the breaker is open: the typed
                // circuit-open error propagates out of the advice
                // without consuming a retry attempt.
                Stmt::Expr(Expr::intrinsic(intrinsics::FT_BREAKER_ALLOW, vec![callee.clone()])),
                Stmt::TryCatch {
                    body: Block::of(vec![
                        Stmt::Local {
                            name: "__r".into(),
                            ty: IrType::Str,
                            init: Some(Expr::Proceed(vec![])),
                        },
                        record(true),
                        Stmt::ret(Expr::var("__r")),
                    ]),
                    var: "__e".into(),
                    handler: Block::of(vec![
                        record(false),
                        Stmt::If {
                            cond: Expr::binary(
                                IrBinOp::Ge,
                                Expr::var("__ft_attempt"),
                                Expr::int(cfg.max_attempts),
                            ),
                            then_block: Block::of(vec![Stmt::Throw(Expr::var("__e"))]),
                            else_block: None,
                        },
                        Stmt::Expr(Expr::intrinsic(
                            intrinsics::FT_DEADLINE_CHECK,
                            vec![
                                callee.clone(),
                                Expr::var("__ft_start"),
                                Expr::int(cfg.deadline_us),
                            ],
                        )),
                        Stmt::Expr(Expr::intrinsic(
                            intrinsics::FT_BACKOFF,
                            vec![Expr::var("__ft_attempt"), Expr::int(cfg.backoff_us)],
                        )),
                    ]),
                    finally: None,
                },
            ]),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    fn si() -> ParamSet {
        ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("idempotent", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("deadline_us", ParamValue::Int(50_000))
    }

    #[test]
    fn cmt_marks_operations_with_all_three_stereotypes() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        for s in [STEREO_BREAKER, STEREO_RETRYABLE, STEREO_DEADLINE] {
            assert!(m.has_stereotype(transfer, s).unwrap(), "missing {s}");
        }
        let core = m.element(transfer).unwrap().core();
        assert_eq!(core.tag(TAG_FT_MAX_ATTEMPTS).unwrap().as_int(), Some(3));
        assert_eq!(core.tag(TAG_FT_BACKOFF_US).unwrap().as_int(), Some(100));
        assert_eq!(core.tag(TAG_FT_DEADLINE_US).unwrap().as_int(), Some(50_000));
        assert_eq!(core.tag(TAG_FT_BREAKER_THRESHOLD).unwrap().as_int(), Some(3));
        assert_eq!(core.tag(TAG_FT_BREAKER_COOLDOWN_US).unwrap().as_int(), Some(10_000));
    }

    #[test]
    fn non_idempotent_methods_are_not_retryable() {
        let si =
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        assert!(m.has_stereotype(transfer, STEREO_BREAKER).unwrap());
        assert!(!m.has_stereotype(transfer, STEREO_RETRYABLE).unwrap());
        assert!(!m.has_stereotype(transfer, STEREO_DEADLINE).unwrap(), "deadline_us defaults to 0");
    }

    #[test]
    fn idempotent_must_be_subset_of_methods() {
        let si = ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("idempotent", ParamValue::from(vec!["Bank.getBalance".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        let err = cmt.apply(&mut m).unwrap_err();
        assert!(err.to_string().contains("not in `methods`"), "got: {err}");
    }

    #[test]
    fn precondition_rejects_unknown_method() {
        let si = ParamSet::new().with("methods", ParamValue::from(vec!["Bank.launder".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        assert!(cmt.apply(&mut m).is_err());
    }

    #[test]
    fn ca_contains_around_advice_per_method() {
        let si = ParamSet::new().with(
            "methods",
            ParamValue::from(vec!["Bank.transfer".to_owned(), "Bank.getBalance".to_owned()]),
        );
        let (_, ca) = pair().specialize(si).unwrap();
        assert_eq!(ca.advices.len(), 2);
        assert!(ca.advices.iter().all(|a| a.kind == AdviceKind::Around));
        assert!(ca.name.starts_with("faulttolerance-aspect<"));
    }

    #[test]
    fn advice_retry_loop_shape() {
        let cfg = GuardConfig {
            callee: "Bank.transfer".into(),
            max_attempts: 3,
            backoff_us: 100,
            deadline_us: 0,
            threshold: 3,
            cooldown_us: 1000,
        };
        let body = around_body(&cfg);
        assert!(matches!(body.stmts[2], Stmt::While { .. }));
        // Exactly one proceed in the template (inside the try).
        fn count_proceeds(b: &Block) -> usize {
            fn in_expr(e: &Expr) -> usize {
                match e {
                    Expr::Proceed(_) => 1,
                    _ => 0,
                }
            }
            b.stmts
                .iter()
                .map(|s| match s {
                    Stmt::While { body, .. } => count_proceeds(body),
                    Stmt::TryCatch { body, handler, .. } => {
                        count_proceeds(body) + count_proceeds(handler)
                    }
                    Stmt::Local { init: Some(e), .. } => in_expr(e),
                    Stmt::Expr(e) => in_expr(e),
                    _ => 0,
                })
                .sum()
        }
        assert_eq!(count_proceeds(&body), 1);
    }
}
