//! Concern **C1: distribution** (paper, Fig. 2).
//!
//! * `Si` slots: `server_class` (the class to expose remotely), `node`
//!   (the logical node it is deployed on), `registry` (the naming-service
//!   name; defaults to the class name), `operations` (the remotely
//!   callable operations — application-specific knowledge), `protocol`.
//! * CMT_dist: marks the class «Remote» with node/registry tagged values,
//!   adds a `registerRemote` operation, and creates a model-level
//!   `<Class>Proxy` class mirroring the remote operations (the structural
//!   artifact a CORBA/RMI stub generator would emit), wired with a
//!   dependency to the server class.
//! * CA_dist: an `around` advice per remote operation that executes
//!   locally when already on the right node and otherwise forwards via
//!   `net.call_list(node, registry, __method, __args)`; plus an `around`
//!   on `registerRemote` binding the object in the naming service.

use crate::util::{method_exists_ocl, pc_err, split_method};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{intrinsics, STEREO_REMOTE, TAG_DIST_NODE, TAG_DIST_REGISTRY};
use comet_codegen::{Block, Expr, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformError, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "distribution";

/// Name of the operation the CMT adds for naming-service registration
/// (shared with the baseline generator through the mark vocabulary).
pub const REGISTER_OP: &str = comet_codegen::marks::DIST_REGISTER_OP;

fn schema() -> ParamSchema {
    ParamSchema::new()
        .string("server_class", true, None)
        .string("node", true, None)
        .string("registry", false, Some(""))
        .str_list("operations", true)
        .choice("protocol", &["rpc"], "rpc")
}

fn registry_name(params: &ParamSet) -> String {
    match params.str("registry") {
        Ok(r) if !r.is_empty() => r.to_owned(),
        _ => params.str("server_class").unwrap_or("service").to_owned(),
    }
}

/// Builds the distribution [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("distribution", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            let mut pre = Vec::new();
            if let Ok(class) = params.str("server_class") {
                pre.push(format!("Class.allInstances()->exists(c | c.name = '{class}')"));
                // Idempotence guard: not already distributed.
                pre.push(format!(
                    "not Class.allInstances()->exists(c | c.name = '{class}' and \
                     c.hasStereotype('{STEREO_REMOTE}'))"
                ));
                if let Ok(ops) = params.str_list("operations") {
                    for op in ops {
                        pre.push(method_exists_ocl(class, op));
                    }
                }
            }
            pre
        })
        .postconditions_fn(|params: &ParamSet| {
            let mut post = Vec::new();
            if let Ok(class) = params.str("server_class") {
                post.push(format!(
                    "Class.allInstances()->exists(c | c.name = '{class}' and \
                     c.hasStereotype('{STEREO_REMOTE}'))"
                ));
                post.push(format!("Class.allInstances()->exists(c | c.name = '{class}Proxy')"));
                post.push(method_exists_ocl(class, REGISTER_OP));
            }
            post
        })
        .body(|model, params| {
            let class_name = params.str("server_class")?.to_owned();
            let node = params.str("node")?.to_owned();
            let registry = registry_name(params);
            let ops: Vec<String> = params.str_list("operations")?.to_vec();
            let class = model
                .find_class(&class_name)
                .ok_or_else(|| TransformError::Custom(format!("no class `{class_name}`")))?;
            model.apply_stereotype(class, STEREO_REMOTE)?;
            model.set_tag(class, TAG_DIST_NODE, node.as_str())?;
            model.set_tag(class, TAG_DIST_REGISTRY, registry.as_str())?;
            model.add_operation(class, REGISTER_OP)?;
            // The proxy: same remote operations, structural stand-in for
            // the stub a platform generator would emit.
            let owner = model.element(class)?.owner().unwrap_or(model.root());
            let proxy = model.add_class(owner, &format!("{class_name}Proxy"))?;
            model.set_tag(proxy, TAG_DIST_NODE, node.as_str())?;
            model.set_tag(proxy, TAG_DIST_REGISTRY, registry.as_str())?;
            for op_name in &ops {
                let original = model.find_operation(class, op_name).ok_or_else(|| {
                    TransformError::Custom(format!("no operation `{class_name}.{op_name}`"))
                })?;
                let data = model
                    .element(original)?
                    .as_operation()
                    .expect("find_operation returns operations")
                    .clone();
                let params_of = model.parameters_of(original);
                let proxy_op = model.add_operation(proxy, op_name)?;
                model.set_return_type(proxy_op, data.return_type)?;
                for p in params_of {
                    let (p_name, p_ty) = {
                        let e = model.element(p)?;
                        (
                            e.name().to_owned(),
                            e.as_parameter().expect("parameters_of returns parameters").ty,
                        )
                    };
                    model.add_parameter(proxy_op, &p_name, p_ty)?;
                }
            }
            model.add_dependency(proxy, class)?;
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("distribution-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let class = params.str("server_class")?.to_owned();
            let node = params.str("node")?.to_owned();
            let registry = registry_name(params);
            let mut advices = Vec::new();
            for op in params.str_list("operations")? {
                if split_method(&format!("{class}.{op}")).is_err() {
                    return Err(AspectGenError::Custom(format!("bad operation `{op}`")));
                }
                let pc = parse_pointcut(&format!("execution({class}.{op})")).map_err(pc_err)?;
                advices.push(Advice::new(AdviceKind::Around, pc, routing_body(&node, &registry)));
            }
            let pc =
                parse_pointcut(&format!("execution({class}.{REGISTER_OP})")).map_err(pc_err)?;
            advices.push(Advice::new(AdviceKind::Around, pc, register_body(&node, &registry)));
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

/// Around template: local execution on the hosting node, RPC otherwise.
/// Uses the weaver-injected `__method` and `__args` join-point locals.
fn routing_body(node: &str, registry: &str) -> Block {
    Block::of(vec![
        Stmt::If {
            cond: Expr::intrinsic(intrinsics::NET_IS_LOCAL, vec![Expr::str(node)]),
            then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
            else_block: None,
        },
        Stmt::ret(Expr::intrinsic(
            intrinsics::NET_CALL_LIST,
            vec![Expr::str(node), Expr::str(registry), Expr::var("__method"), Expr::var("__args")],
        )),
    ])
}

/// Around template for `registerRemote`: bind in the naming service.
fn register_body(node: &str, registry: &str) -> Block {
    Block::of(vec![
        Stmt::Expr(Expr::intrinsic(
            intrinsics::NET_REGISTER,
            vec![Expr::str(node), Expr::str(registry)],
        )),
        Stmt::Return(None),
    ])
}

/// Convenience "wizard": derives the `operations` list for `class` from
/// the model (all its public operations), the way the paper's
/// concern-oriented configuration wizard would pre-fill the dialog.
pub fn suggest_operations(model: &comet_model::Model, class_name: &str) -> Vec<String> {
    let Some(class) = model.find_class(class_name) else {
        return Vec::new();
    };
    model
        .operations_of(class)
        .into_iter()
        .filter_map(|op| model.element(op).ok())
        .filter(|e| e.core().visibility == comet_model::Visibility::Public)
        .map(|e| e.name().to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    fn si() -> ParamSet {
        ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with(
                "operations",
                ParamValue::from(vec!["transfer".to_owned(), "openAccount".to_owned()]),
            )
    }

    #[test]
    fn cmt_creates_proxy_register_op_and_marks() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        let report = cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        assert!(m.has_stereotype(bank, STEREO_REMOTE).unwrap());
        assert!(m.find_operation(bank, REGISTER_OP).is_some());
        let proxy = m.find_class("BankProxy").unwrap();
        assert_eq!(m.operations_of(proxy).len(), 2);
        // Proxy operations mirror signatures.
        let p_transfer = m.find_operation(proxy, "transfer").unwrap();
        assert_eq!(m.parameters_of(p_transfer).len(), 3);
        // Everything created is colored with the concern.
        assert!(report.created.len() >= 2);
        for id in &report.created {
            assert_eq!(m.concern_of(*id), Some(CONCERN), "{id} uncolored");
        }
        assert!(m.validate().is_ok());
    }

    #[test]
    fn reapplication_blocked_by_precondition() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let err = cmt.apply(&mut m).unwrap_err();
        assert!(matches!(err, TransformError::PreconditionFailed { .. }));
    }

    #[test]
    fn ca_has_routing_advice_per_operation_plus_registration() {
        let (_, ca) = pair().specialize(si()).unwrap();
        assert_eq!(ca.advices.len(), 3); // 2 ops + registerRemote
        assert!(ca.advices.iter().all(|a| a.kind == AdviceKind::Around));
    }

    #[test]
    fn registry_defaults_to_class_name() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        assert_eq!(
            m.element(bank).unwrap().core().tag(TAG_DIST_REGISTRY).unwrap().as_str(),
            Some("Bank")
        );
    }

    #[test]
    fn suggest_operations_wizard() {
        let m = banking_pim();
        let ops = suggest_operations(&m, "Bank");
        assert_eq!(ops, vec!["transfer", "openAccount", "audit"]);
        assert!(suggest_operations(&m, "Ghost").is_empty());
    }

    #[test]
    fn unknown_operation_fails_precondition() {
        let bad = ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with("operations", ParamValue::from(vec!["teleport".to_owned()]));
        let (cmt, _) = pair().specialize(bad).unwrap();
        let mut m = banking_pim();
        assert!(matches!(
            cmt.apply(&mut m).unwrap_err(),
            TransformError::PreconditionFailed { .. }
        ));
    }

    #[test]
    fn routing_body_shape() {
        let b = routing_body("n", "r");
        assert_eq!(b.stmts.len(), 2);
        assert!(matches!(&b.stmts[0], Stmt::If { .. }));
    }
}
