//! Extension concern: **persistence** — saving marked objects into the
//! simulated document store after every mutator, plus a generated
//! `reload` operation. Rounds out the middleware-services dimension list
//! the paper draws from (the entity-bean/persistence-service concern of
//! its era).
//!
//! * `Si` slots: `class` (the entity class), `key_attr` (the attribute
//!   providing the identity), `mutators` (the operations after which the
//!   object must be saved), `collection` (key prefix in the store;
//!   defaults to the class name).
//! * CMT_persist: marks the class and mutators «Persistent», records key
//!   attribute and collection tags, adds a `reload` operation.
//! * CA_persist: `afterReturning` advice on each mutator saving a
//!   snapshot under `collection/<key>`, and `around` advice on `reload`
//!   loading it back.

use crate::util::{method_exists_ocl, pc_err};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, ConcernPair};
use comet_codegen::marks::{
    intrinsics, PERSIST_RELOAD_OP, STEREO_PERSISTENT, TAG_PERSIST_KEY, TAG_PERSIST_STORE,
};
use comet_codegen::{Block, Expr, IrBinOp, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformError, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "persistence";

fn schema() -> ParamSchema {
    ParamSchema::new()
        .string("class", true, None)
        .string("key_attr", true, None)
        .str_list("mutators", true)
        .string("collection", false, Some(""))
}

fn collection_name(params: &ParamSet) -> String {
    match params.str("collection") {
        Ok(c) if !c.is_empty() => c.to_owned(),
        _ => params.str("class").unwrap_or("entities").to_owned(),
    }
}

/// Builds the persistence [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("persistence", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            let mut pre = Vec::new();
            if let (Ok(class), Ok(key)) = (params.str("class"), params.str("key_attr")) {
                pre.push(format!(
                    "Class.allInstances()->exists(c | c.name = '{class}' and \
                     c.attributes->exists(a | a.name = '{key}'))"
                ));
                if let Ok(mutators) = params.str_list("mutators") {
                    for m in mutators {
                        pre.push(method_exists_ocl(class, m));
                    }
                }
            }
            pre
        })
        .postconditions_fn(|params: &ParamSet| {
            let mut post = Vec::new();
            if let Ok(class) = params.str("class") {
                post.push(format!(
                    "Class.allInstances()->exists(c | c.name = '{class}' and \
                     c.hasStereotype('{STEREO_PERSISTENT}'))"
                ));
                post.push(method_exists_ocl(class, PERSIST_RELOAD_OP));
            }
            post
        })
        .body(|model, params| {
            let class_name = params.str("class")?.to_owned();
            let key_attr = params.str("key_attr")?.to_owned();
            let collection = collection_name(params);
            let class = model
                .find_class(&class_name)
                .ok_or_else(|| TransformError::Custom(format!("no class `{class_name}`")))?;
            if model.find_attribute(class, &key_attr).is_none() {
                return Err(TransformError::Custom(format!(
                    "no attribute `{key_attr}` on `{class_name}`"
                )));
            }
            model.apply_stereotype(class, STEREO_PERSISTENT)?;
            model.set_tag(class, TAG_PERSIST_KEY, key_attr.as_str())?;
            model.set_tag(class, TAG_PERSIST_STORE, collection.as_str())?;
            for mutator in params.str_list("mutators")? {
                let op = model.find_operation(class, mutator).ok_or_else(|| {
                    TransformError::Custom(format!("no operation `{class_name}.{mutator}`"))
                })?;
                model.apply_stereotype(op, STEREO_PERSISTENT)?;
                model.set_tag(op, TAG_PERSIST_KEY, key_attr.as_str())?;
                model.set_tag(op, TAG_PERSIST_STORE, collection.as_str())?;
            }
            model.add_operation(class, PERSIST_RELOAD_OP)?;
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("persistence-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let class = params.str("class")?.to_owned();
            let key_attr = params.str("key_attr")?.to_owned();
            let collection = collection_name(params);
            let mut advices = Vec::new();
            for mutator in params.str_list("mutators")? {
                let pc =
                    parse_pointcut(&format!("execution({class}.{mutator})")).map_err(pc_err)?;
                advices.push(Advice::new(
                    AdviceKind::AfterReturning,
                    pc,
                    save_body(&collection, &key_attr),
                ));
            }
            let pc = parse_pointcut(&format!("execution({class}.{PERSIST_RELOAD_OP})"))
                .map_err(pc_err)?;
            advices.push(Advice::new(AdviceKind::Around, pc, reload_body(&collection, &key_attr)));
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

/// `collection/` + `this.<key_attr>` as a key expression.
fn key_expr(collection: &str, key_attr: &str) -> Expr {
    Expr::binary(IrBinOp::Add, Expr::str(format!("{collection}/")), Expr::this_field(key_attr))
}

/// afterReturning template: save the object snapshot.
fn save_body(collection: &str, key_attr: &str) -> Block {
    Block::of(vec![Stmt::Expr(Expr::intrinsic(
        intrinsics::STORE_SAVE,
        vec![key_expr(collection, key_attr)],
    ))])
}

/// around template for `reload`: load the snapshot back into the object.
fn reload_body(collection: &str, key_attr: &str) -> Block {
    Block::of(vec![
        Stmt::Expr(Expr::intrinsic(intrinsics::STORE_LOAD, vec![key_expr(collection, key_attr)])),
        Stmt::Return(None),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    fn si() -> ParamSet {
        ParamSet::new()
            .with("class", ParamValue::from("Account"))
            .with("key_attr", ParamValue::from("number"))
            .with("mutators", ParamValue::from(vec!["deposit".to_owned(), "withdraw".to_owned()]))
    }

    #[test]
    fn cmt_marks_class_mutators_and_adds_reload() {
        let (cmt, ca) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let account = m.find_class("Account").unwrap();
        assert!(m.has_stereotype(account, STEREO_PERSISTENT).unwrap());
        assert_eq!(
            m.element(account).unwrap().core().tag(TAG_PERSIST_STORE).unwrap().as_str(),
            Some("Account")
        );
        let deposit = m.find_operation(account, "deposit").unwrap();
        assert!(m.has_stereotype(deposit, STEREO_PERSISTENT).unwrap());
        assert!(m.find_operation(account, PERSIST_RELOAD_OP).is_some());
        // 2 mutator saves + 1 reload.
        assert_eq!(ca.advices.len(), 3);
        assert_eq!(ca.advices[0].kind, AdviceKind::AfterReturning);
        assert_eq!(ca.advices[2].kind, AdviceKind::Around);
    }

    #[test]
    fn missing_key_attribute_fails_precondition() {
        let bad = ParamSet::new()
            .with("class", ParamValue::from("Account"))
            .with("key_attr", ParamValue::from("ghost"))
            .with("mutators", ParamValue::from(vec!["deposit".to_owned()]));
        let (cmt, _) = pair().specialize(bad).unwrap();
        let mut m = banking_pim();
        assert!(matches!(
            cmt.apply(&mut m).unwrap_err(),
            TransformError::PreconditionFailed { .. }
        ));
    }

    #[test]
    fn collection_defaults_to_class_name() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        assert!(cmt.full_name().contains("collection="));
        assert_eq!(collection_name(cmt.params()), "Account");
    }
}
