//! # comet-concerns — the middleware-service concern library
//!
//! The paper's running example (Section 2, Fig. 2) refines an application
//! along three middleware-service concern dimensions — **C1 =
//! distribution, C2 = transactions, C3 = security** — each realized as a
//! generic model transformation T_i paired with a generic aspect A_i and
//! specialized by an application-specific parameter set
//! `T_i<p_i1, p_i2, ...>` / `A_i<p_i1, p_i2, ...>`.
//!
//! This crate provides those three concern modules plus two extensions
//! the paper lists among middleware services (§1: "communication,
//! distribution, concurrency, security, or transactions"): **logging**
//! (monitoring/communication tracing) and **concurrency**
//! (synchronization). Each module exposes
//!
//! * `pair()` — the [`ConcernPair`]
//!   bundling GMT_Ci and GA_Ci;
//! * the parameter schema documenting its `P_ik` slots;
//! * model-level marks (stereotypes + tagged values from
//!   `comet_codegen::marks`) written by the CMT and consumed by both the
//!   aspect generator and the monolithic baseline generator.
//!
//! ## Example
//!
//! ```
//! use comet_concerns::transactions;
//! use comet_model::sample::banking_pim;
//! use comet_transform::{ParamSet, ParamValue};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pair = transactions::pair();
//! let si = ParamSet::new()
//!     .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
//!     .with("isolation", ParamValue::from("serializable"));
//! let (cmt, ca) = pair.specialize(si)?;
//! let mut model = banking_pim();
//! cmt.apply(&mut model)?;
//! let bank = model.find_class("Bank").unwrap();
//! let transfer = model.find_operation(bank, "transfer").unwrap();
//! assert!(model.has_stereotype(transfer, "Transactional")?);
//! assert_eq!(ca.advices.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod concurrency;
pub mod distribution;
pub mod faulttolerance;
pub mod logging;
pub mod persistence;
pub mod security;
pub mod transactions;

mod util;

use comet_aspectgen::ConcernPair;

/// The standard concern library, in the paper's Fig. 2 order
/// (distribution, transactions, security) followed by the extensions.
pub fn standard_pairs() -> Vec<ConcernPair> {
    vec![
        distribution::pair(),
        transactions::pair(),
        security::pair(),
        logging::pair(),
        concurrency::pair(),
        persistence::pair(),
        faulttolerance::pair(),
    ]
}

/// Looks a standard concern up by name. Matches on the name first and
/// constructs only the requested pair (building a pair allocates its
/// schema, conditions and advice templates, so constructing all seven
/// per lookup was pure waste).
pub fn by_name(name: &str) -> Option<ConcernPair> {
    match name {
        distribution::CONCERN => Some(distribution::pair()),
        transactions::CONCERN => Some(transactions::pair()),
        security::CONCERN => Some(security::pair()),
        logging::CONCERN => Some(logging::pair()),
        concurrency::CONCERN => Some(concurrency::pair()),
        persistence::CONCERN => Some(persistence::pair()),
        faulttolerance::CONCERN => Some(faulttolerance::pair()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_seven_concerns() {
        let names: Vec<String> = standard_pairs().iter().map(|p| p.concern().to_owned()).collect();
        assert_eq!(
            names,
            vec![
                "distribution",
                "transactions",
                "security",
                "logging",
                "concurrency",
                "persistence",
                "faulttolerance"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("security").is_some());
        assert!(by_name("faulttolerance").is_some());
        assert!(by_name("astrology").is_none());
    }

    #[test]
    fn by_name_agrees_with_standard_pairs() {
        for p in standard_pairs() {
            let looked_up = by_name(p.concern()).expect("every standard pair is addressable");
            assert_eq!(looked_up.concern(), p.concern());
        }
    }

    #[test]
    fn every_pair_agrees_on_schema_shape() {
        for p in standard_pairs() {
            // The GA must accept everything the GMT schema declares: the
            // same Si specializes both (Fig. 1).
            let t_specs = p.transformation().parameter_schema();
            let a_specs = p.aspect().parameter_schema();
            assert_eq!(
                t_specs.specs().len(),
                a_specs.specs().len(),
                "schema mismatch for {}",
                p.concern()
            );
        }
    }
}
