//! Concern **C2: transactions** (paper, Fig. 2).
//!
//! * `Si` slots: `methods` (the `Class.method` operations to make
//!   transactional — the application-specific knowledge that a generic
//!   transactional aspect cannot invent, per Kienzle & Guerraoui),
//!   `isolation`, `propagation`.
//! * CMT_tx: marks each listed operation «Transactional» and records the
//!   isolation/propagation tagged values.
//! * CA_tx: one `around` advice per listed operation — begin, `proceed`,
//!   commit; roll back and rethrow on exception; with `required`
//!   propagation an active transaction is joined instead of nested.

use crate::util::{
    method_exists_ocl, method_stereotyped_ocl, pc_err, resolve_method, split_method,
};
use comet_aop::{parse_pointcut, Advice, AdviceKind};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{
    intrinsics, STEREO_TRANSACTIONAL, TAG_TX_ISOLATION, TAG_TX_PROPAGATION,
};
use comet_codegen::{Block, Expr, IrType, Stmt};
use comet_transform::{ParamSchema, ParamSet, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "transactions";

fn schema() -> ParamSchema {
    ParamSchema::new()
        .str_list("methods", true)
        .choice("isolation", &["read-committed", "serializable"], "read-committed")
        .choice("propagation", &["required", "requires-new"], "required")
}

/// Builds the transactions [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("transactions", CONCERN)
        .schema(schema())
        .preconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_exists_ocl(c, m))
                        .collect()
                })
                .unwrap_or_default()
        })
        .postconditions_fn(|params: &ParamSet| {
            params
                .str_list("methods")
                .map(|ms| {
                    ms.iter()
                        .filter_map(|m| split_method(m).ok())
                        .map(|(c, m)| method_stereotyped_ocl(c, m, STEREO_TRANSACTIONAL))
                        .collect()
                })
                .unwrap_or_default()
        })
        .body(|model, params| {
            let isolation = params.str("isolation")?.to_owned();
            let propagation = params.str("propagation")?.to_owned();
            for entry in params.str_list("methods")? {
                let (_, op) = resolve_method(model, entry)?;
                model.apply_stereotype(op, STEREO_TRANSACTIONAL)?;
                model.set_tag(op, TAG_TX_ISOLATION, isolation.as_str())?;
                model.set_tag(op, TAG_TX_PROPAGATION, propagation.as_str())?;
            }
            Ok(())
        })
        .build();

    let ga = AspectBuilder::new("transactions-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let isolation = params.str("isolation")?.to_owned();
            let propagation = params.str("propagation")?.to_owned();
            let mut advices = Vec::new();
            for entry in params.str_list("methods")? {
                let (class, method) = split_method(entry).map_err(AspectGenError::Custom)?;
                let pc = parse_pointcut(&format!("execution({class}.{method})")).map_err(pc_err)?;
                advices.push(Advice::new(
                    AdviceKind::Around,
                    pc,
                    around_body(&isolation, &propagation),
                ));
            }
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

/// The around-advice template; `proceed()` is substituted by the weaver.
fn around_body(isolation: &str, propagation: &str) -> Block {
    let mut stmts = Vec::new();
    if propagation == "required" {
        // Join an enclosing transaction instead of nesting a new one.
        stmts.push(Stmt::If {
            cond: Expr::intrinsic(intrinsics::TX_ACTIVE, vec![]),
            then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
            else_block: None,
        });
    }
    stmts.push(Stmt::Expr(Expr::intrinsic(intrinsics::TX_BEGIN, vec![Expr::str(isolation)])));
    stmts.push(Stmt::TryCatch {
        body: Block::of(vec![
            Stmt::Local { name: "__r".into(), ty: IrType::Str, init: Some(Expr::Proceed(vec![])) },
            Stmt::Expr(Expr::intrinsic(intrinsics::TX_COMMIT, vec![])),
            Stmt::ret(Expr::var("__r")),
        ]),
        var: "__e".into(),
        handler: Block::of(vec![
            Stmt::Expr(Expr::intrinsic(intrinsics::TX_ROLLBACK, vec![])),
            Stmt::Throw(Expr::var("__e")),
        ]),
        finally: None,
    });
    Block::of(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;

    fn si() -> ParamSet {
        ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
    }

    #[test]
    fn cmt_marks_operations() {
        let (cmt, _) = pair().specialize(si()).unwrap();
        let mut m = banking_pim();
        let report = cmt.apply(&mut m).unwrap();
        assert_eq!(report.modified.len(), 1);
        let bank = m.find_class("Bank").unwrap();
        let transfer = m.find_operation(bank, "transfer").unwrap();
        assert!(m.has_stereotype(transfer, STEREO_TRANSACTIONAL).unwrap());
        assert_eq!(
            m.element(transfer).unwrap().core().tag(TAG_TX_ISOLATION).unwrap().as_str(),
            Some("read-committed")
        );
        assert_eq!(
            m.element(transfer).unwrap().core().tag(TAG_TX_PROPAGATION).unwrap().as_str(),
            Some("required")
        );
    }

    #[test]
    fn precondition_rejects_unknown_method() {
        let si = ParamSet::new().with("methods", ParamValue::from(vec!["Bank.launder".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        assert!(cmt.apply(&mut m).is_err());
    }

    #[test]
    fn ca_contains_around_advice_per_method() {
        let si = ParamSet::new()
            .with(
                "methods",
                ParamValue::from(vec!["Bank.transfer".to_owned(), "Account.withdraw".to_owned()]),
            )
            .with("propagation", ParamValue::from("requires-new"));
        let (_, ca) = pair().specialize(si).unwrap();
        assert_eq!(ca.advices.len(), 2);
        assert!(ca.advices.iter().all(|a| a.kind == AdviceKind::Around));
        assert!(ca.name.starts_with("transactions-aspect<"));
    }

    #[test]
    fn required_propagation_adds_join_guard() {
        let body = around_body("rc", "required");
        assert!(matches!(body.stmts[0], Stmt::If { .. }));
        let body = around_body("rc", "requires-new");
        assert!(!matches!(body.stmts[0], Stmt::If { .. }));
    }
}
