//! Extension concern: **logging/monitoring** — the "communication"
//! flavour of the paper's middleware-services list, implemented as call
//! tracing.
//!
//! * `Si` slots: `targets` (patterns `Class.method`, `*` allowed in
//!   either position) and `level`.
//! * CMT_log: marks every operation matching a target «Logged» with the
//!   level tagged value.
//! * CA_log: per target, `before` (enter) and `afterReturning` (exit)
//!   advice emitting log records that carry the weaver-injected `__jp`.

use crate::util::{pc_err, split_method};
use comet_aop::{parse_pointcut, Advice, AdviceKind, NamePattern};
use comet_aspectgen::{AspectBuilder, AspectGenError, ConcernPair};
use comet_codegen::marks::{intrinsics, STEREO_LOGGED, TAG_LOG_LEVEL};
use comet_codegen::{Block, Expr, IrBinOp, Stmt};
use comet_transform::{ParamSchema, TransformError, TransformationBuilder};

/// The concern name.
pub const CONCERN: &str = "logging";

fn schema() -> ParamSchema {
    ParamSchema::new().str_list("targets", true).choice(
        "level",
        &["info", "debug", "trace"],
        "info",
    )
}

/// Builds the logging [`ConcernPair`].
pub fn pair() -> ConcernPair {
    let gmt = TransformationBuilder::new("logging", CONCERN)
        .schema(schema())
        .body(|model, params| {
            let level = params.str("level")?.to_owned();
            let mut matched_any = false;
            for target in params.str_list("targets")? {
                let (class_pat, method_pat) =
                    split_method(target).map_err(TransformError::Custom)?;
                let class_pattern = NamePattern::new(class_pat);
                let method_pattern = NamePattern::new(method_pat);
                for class in model.classes() {
                    let class_name = model.element(class)?.name().to_owned();
                    if !class_pattern.matches(&class_name) {
                        continue;
                    }
                    for op in model.operations_of(class) {
                        let op_name = model.element(op)?.name().to_owned();
                        if method_pattern.matches(&op_name) {
                            model.apply_stereotype(op, STEREO_LOGGED)?;
                            model.set_tag(op, TAG_LOG_LEVEL, level.as_str())?;
                            matched_any = true;
                        }
                    }
                }
            }
            if !matched_any {
                return Err(TransformError::Custom(
                    "no operation matched any logging target".into(),
                ));
            }
            Ok(())
        })
        .postcondition(&format!(
            "Operation.allInstances()->exists(o | o.hasStereotype('{STEREO_LOGGED}'))"
        ))
        .build();

    let ga = AspectBuilder::new("logging-aspect", CONCERN)
        .schema(schema())
        .advice_fn(|params| {
            let level = params.str("level")?.to_owned();
            let mut advices = Vec::new();
            for target in params.str_list("targets")? {
                let (class_pat, method_pat) =
                    split_method(target).map_err(AspectGenError::Custom)?;
                let pc = parse_pointcut(&format!("execution({class_pat}.{method_pat})"))
                    .map_err(pc_err)?;
                advices.push(Advice::new(
                    AdviceKind::Before,
                    pc.clone(),
                    emit_body(&level, "enter "),
                ));
                advices.push(Advice::new(
                    AdviceKind::AfterReturning,
                    pc,
                    emit_body(&level, "exit "),
                ));
            }
            Ok(advices)
        })
        .build();

    ConcernPair::new(gmt, ga)
}

fn emit_body(level: &str, prefix: &str) -> Block {
    Block::of(vec![Stmt::Expr(Expr::intrinsic(
        intrinsics::LOG_EMIT,
        vec![Expr::str(level), Expr::binary(IrBinOp::Add, Expr::str(prefix), Expr::var("__jp"))],
    ))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_transform::{ParamSet, ParamValue};

    #[test]
    fn wildcard_targets_mark_matching_operations() {
        let si = ParamSet::new()
            .with("targets", ParamValue::from(vec!["Bank.*".to_owned()]))
            .with("level", ParamValue::from("debug"));
        let (cmt, ca) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        cmt.apply(&mut m).unwrap();
        let bank = m.find_class("Bank").unwrap();
        for op in m.operations_of(bank) {
            assert!(m.element(op).unwrap().core().has_stereotype(STEREO_LOGGED));
            assert_eq!(
                m.element(op).unwrap().core().tag(TAG_LOG_LEVEL).unwrap().as_str(),
                Some("debug")
            );
        }
        // Other classes untouched.
        let account = m.find_class("Account").unwrap();
        for op in m.operations_of(account) {
            assert!(!m.element(op).unwrap().core().has_stereotype(STEREO_LOGGED));
        }
        assert_eq!(ca.advices.len(), 2);
        assert_eq!(ca.advices[0].kind, AdviceKind::Before);
        assert_eq!(ca.advices[1].kind, AdviceKind::AfterReturning);
    }

    #[test]
    fn no_match_is_an_error_and_rolls_back() {
        let si = ParamSet::new().with("targets", ParamValue::from(vec!["Ghost.*".to_owned()]));
        let (cmt, _) = pair().specialize(si).unwrap();
        let mut m = banking_pim();
        let snapshot = m.clone();
        assert!(cmt.apply(&mut m).is_err());
        assert_eq!(m, snapshot);
    }

    #[test]
    fn bad_target_rejected() {
        // The aspect template rejects the malformed entry during the
        // shared specialization, so neither artifact is produced.
        let si = ParamSet::new().with("targets", ParamValue::from(vec!["nodot".to_owned()]));
        assert!(pair().specialize(si.clone()).is_err());
        // The transformation side independently rejects it at apply time.
        let cmt = comet_transform::specialize(std::sync::Arc::clone(pair().transformation()), si)
            .unwrap();
        let mut m = banking_pim();
        assert!(cmt.apply(&mut m).is_err());
    }
}
