//! # comet-xmi — XML infrastructure and XMI import/export
//!
//! Section 3 of the paper requires "support for importing/exporting
//! models in XMI format". This crate provides a dependency-free XML
//! reader/writer ([`XmlNode`], [`parse_xml`], [`write_xml`]) and an
//! XMI-1.2-flavoured codec between `comet-model` models and XML
//! documents ([`export_model`], [`import_model`]).
//!
//! Round-trip fidelity (`import(export(m)) == m`) is the contract, and
//! is property-tested in the crate's test suite.
//!
//! ## Example
//!
//! ```
//! use comet_model::sample::banking_pim;
//! use comet_xmi::{export_model, import_model};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = banking_pim();
//! let xml = export_model(&model);
//! assert!(xml.contains("XMI.content"));
//! let back = import_model(&xml)?;
//! assert_eq!(model, back);
//! # Ok(())
//! # }
//! ```

mod codec;
mod xml;

pub use codec::{export_model, import_model, XmiError};
pub use xml::{parse_xml, write_xml, XmlError, XmlNode};
