//! Minimal XML: a node tree, an escaping writer, and a recursive-descent
//! parser. Supports elements, attributes, text content, self-closing
//! tags, comments, processing instructions/XML declarations (skipped),
//! and the five predefined entities. No namespaces semantics (prefixes
//! are kept as literal name parts), no DTDs, no CDATA.

use std::fmt;

/// One XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Element name (prefix kept verbatim, e.g. `UML:Model`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly under this element.
    pub text: String,
}

impl XmlNode {
    /// Creates an element with a name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode { name: name.into(), ..XmlNode::default() }
    }

    /// Adds an attribute, builder style.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a child, builder style.
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First child with the given name.
    pub fn find_child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn find_children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// XML parse/serialize failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Explanation.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for XmlError {}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// Serializes a node tree to a document string with an XML declaration.
pub fn write_xml(root: &XmlNode) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_node(root, 0, &mut out);
    out
}

fn write_node(node: &XmlNode, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(&node.name);
    for (k, v) in &node.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape(v, out);
        out.push('"');
    }
    if node.children.is_empty() && node.text.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if !node.text.is_empty() {
        escape(&node.text, out);
    }
    if !node.children.is_empty() {
        out.push('\n');
        for c in &node.children {
            write_node(c, indent + 1, out);
        }
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(&node.name);
    out.push_str(">\n");
}

/// Parses a document into its root element.
///
/// # Errors
/// Returns [`XmlError`] describing the first syntax problem.
pub fn parse_xml(source: &str) -> Result<XmlNode, XmlError> {
    let mut p = XmlParser { src: source.as_bytes(), pos: 0 };
    p.skip_prolog();
    let root = p.element()?;
    p.skip_misc();
    if p.pos < p.src.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self.peek().map(|c| (c as char).is_ascii_whitespace()).unwrap_or(false) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_misc();
    }

    /// Skips whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                while self.pos < self.src.len() && !self.starts_with("?>") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
            } else if self.starts_with("<!--") {
                while self.pos < self.src.len() && !self.starts_with("-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.src.len());
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn unescape(&self, raw: &str, at: usize) -> Result<String, XmlError> {
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.char_indices();
        while let Some((i, c)) = chars.next() {
            if c != '&' {
                out.push(c);
                continue;
            }
            let rest = &raw[i + 1..];
            let semi = rest
                .find(';')
                .ok_or(XmlError { message: "unterminated entity".into(), offset: at + i })?;
            let entity = &rest[..semi];
            out.push(match entity {
                "amp" => '&',
                "lt" => '<',
                "gt" => '>',
                "quot" => '"',
                "apos" => '\'',
                other => {
                    if let Some(hex) = other.strip_prefix("#x") {
                        char::from_u32(u32::from_str_radix(hex, 16).unwrap_or(0)).ok_or(
                            XmlError { message: "bad char reference".into(), offset: at + i },
                        )?
                    } else if let Some(dec) = other.strip_prefix('#') {
                        char::from_u32(dec.parse().unwrap_or(0)).ok_or(XmlError {
                            message: "bad char reference".into(),
                            offset: at + i,
                        })?
                    } else {
                        return Err(XmlError {
                            message: format!("unknown entity `&{other};`"),
                            offset: at + i,
                        });
                    }
                }
            });
            // Advance the iterator past the entity.
            for _ in 0..=semi {
                chars.next();
            }
        }
        Ok(out)
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let key = self.name()?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(self.err("expected `=` in attribute"));
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().map(|c| c != quote).unwrap_or(false) {
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return Err(self.err("unterminated attribute value"));
        }
        let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let value = self.unescape(&raw, start)?;
        self.pos += 1;
        Ok((key, value))
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(name.clone());
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let (k, v) = self.attribute()?;
                    node.attrs.push((k, v));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        loop {
            // Text run.
            let start = self.pos;
            while self.peek().map(|c| c != b'<').unwrap_or(false) {
                self.pos += 1;
            }
            if self.pos > start {
                let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                let text = self.unescape(&raw, start)?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    node.text.push_str(trimmed);
                }
            }
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in content"));
            }
            if self.starts_with("<!--") {
                while self.pos < self.src.len() && !self.starts_with("-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.src.len());
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched close tag `{close}` for `{name}`")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` in close tag"));
                }
                self.pos += 1;
                return Ok(node);
            }
            let child = self.element()?;
            node.children.push(child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_round_trip() {
        let doc = XmlNode::new("root")
            .attr("a", "1")
            .attr("weird", "a<b&\"c'")
            .child(XmlNode::new("child").attr("x", "y"))
            .child({
                let mut t = XmlNode::new("text");
                t.text = "hello <world> & 'friends'".into();
                t
            });
        let s = write_xml(&doc);
        let back = parse_xml(&s).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_declaration_comments_and_self_closing() {
        let src = r#"<?xml version="1.0"?>
<!-- a comment -->
<a>
  <!-- inner -->
  <b x="1"/>
  <c></c>
</a>"#;
        let n = parse_xml(src).unwrap();
        assert_eq!(n.name, "a");
        assert_eq!(n.children.len(), 2);
        assert_eq!(n.find_child("b").unwrap().get_attr("x"), Some("1"));
        assert!(n.find_child("c").unwrap().children.is_empty());
        assert_eq!(n.find_children("b").count(), 1);
    }

    #[test]
    fn entities_decoded() {
        let n = parse_xml("<a t=\"&lt;&amp;&gt;&quot;&apos;\">&#65;&#x42;</a>").unwrap();
        assert_eq!(n.get_attr("t"), Some("<&>\"'"));
        assert_eq!(n.text, "AB");
    }

    #[test]
    fn errors() {
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></b>").is_err());
        assert!(parse_xml("<a x=1/>").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
        assert!(parse_xml("<a>&bogus;</a>").is_err());
        assert!(parse_xml("no tags").is_err());
        let e = parse_xml("<a></b>").unwrap_err();
        assert!(e.to_string().contains("mismatched"));
    }

    #[test]
    fn namespace_prefixes_are_literal() {
        let n = parse_xml("<UML:Model xmi.id=\"1\"><UML:Class/></UML:Model>").unwrap();
        assert_eq!(n.name, "UML:Model");
        assert_eq!(n.get_attr("xmi.id"), Some("1"));
        assert_eq!(n.children[0].name, "UML:Class");
    }
}
