//! The XMI codec: `comet-model` ⇄ XMI-1.2-flavoured XML.

use crate::xml::{parse_xml, write_xml, XmlError, XmlNode};
use comet_model::{
    AggregationKind, AssociationData, AssociationEnd, AttributeData, ClassData, ConstraintData,
    DataTypeData, DependencyData, Direction, Element, ElementCore, ElementId, ElementKind,
    EnumerationData, GeneralizationData, InterfaceData, Model, Multiplicity, OperationData,
    PackageData, ParameterData, Primitive, TagValue, TypeRef, Visibility,
};
use std::fmt;

/// XMI import failure.
#[derive(Debug, Clone, PartialEq)]
pub enum XmiError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// A structurally required node or attribute is missing.
    Missing(String),
    /// An attribute value could not be decoded.
    Bad(String),
    /// The decoded model failed well-formedness validation.
    Invalid(String),
}

impl fmt::Display for XmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmiError::Xml(e) => write!(f, "xml: {e}"),
            XmiError::Missing(w) => write!(f, "missing {w}"),
            XmiError::Bad(w) => write!(f, "malformed {w}"),
            XmiError::Invalid(w) => write!(f, "invalid model: {w}"),
        }
    }
}

impl std::error::Error for XmiError {}

impl From<XmlError> for XmiError {
    fn from(e: XmlError) -> Self {
        XmiError::Xml(e)
    }
}

fn vis_str(v: Visibility) -> &'static str {
    match v {
        Visibility::Public => "public",
        Visibility::Protected => "protected",
        Visibility::Package => "package",
        Visibility::Private => "private",
    }
}

fn parse_vis(s: &str) -> Result<Visibility, XmiError> {
    match s {
        "public" => Ok(Visibility::Public),
        "protected" => Ok(Visibility::Protected),
        "package" => Ok(Visibility::Package),
        "private" => Ok(Visibility::Private),
        other => Err(XmiError::Bad(format!("visibility `{other}`"))),
    }
}

fn type_str(t: TypeRef) -> String {
    match t {
        TypeRef::Primitive(p) => p.name().to_owned(),
        TypeRef::Element(id) => format!("#{}", id.raw()),
    }
}

fn parse_type(s: &str) -> Result<TypeRef, XmiError> {
    if let Some(raw) = s.strip_prefix('#') {
        let id: u64 = raw.parse().map_err(|_| XmiError::Bad(format!("type ref `{s}`")))?;
        Ok(TypeRef::Element(ElementId::from_raw(id)))
    } else {
        Primitive::parse(s)
            .map(TypeRef::Primitive)
            .ok_or_else(|| XmiError::Bad(format!("type `{s}`")))
    }
}

fn mult_str(m: Multiplicity) -> String {
    match m.upper {
        Some(u) => format!("{}..{}", m.lower, u),
        None => format!("{}..*", m.lower),
    }
}

fn parse_mult(s: &str) -> Result<Multiplicity, XmiError> {
    let (lo, hi) =
        s.split_once("..").ok_or_else(|| XmiError::Bad(format!("multiplicity `{s}`")))?;
    let lower: u32 = lo.parse().map_err(|_| XmiError::Bad(format!("multiplicity `{s}`")))?;
    let upper = if hi == "*" {
        None
    } else {
        Some(hi.parse().map_err(|_| XmiError::Bad(format!("multiplicity `{s}`")))?)
    };
    Ok(Multiplicity { lower, upper })
}

fn id_str(id: ElementId) -> String {
    format!("#{}", id.raw())
}

fn parse_id(s: &str) -> Result<ElementId, XmiError> {
    let raw = s.strip_prefix('#').ok_or_else(|| XmiError::Bad(format!("id `{s}`")))?;
    let n: u64 = raw.parse().map_err(|_| XmiError::Bad(format!("id `{s}`")))?;
    Ok(ElementId::from_raw(n))
}

fn tag_value_node(name: &str, value: &TagValue) -> XmlNode {
    let node = XmlNode::new(name);
    match value {
        TagValue::Str(s) => node.attr("type", "str").attr("value", s.clone()),
        TagValue::Int(i) => node.attr("type", "int").attr("value", i.to_string()),
        TagValue::Bool(b) => node.attr("type", "bool").attr("value", b.to_string()),
        TagValue::Real(r) => node.attr("type", "real").attr("value", format!("{r:?}")),
        TagValue::List(items) => {
            let mut n = node.attr("type", "list");
            for item in items {
                n = n.child(tag_value_node("UML:Value", item));
            }
            n
        }
    }
}

fn parse_tag_value(node: &XmlNode) -> Result<TagValue, XmiError> {
    let ty = node.get_attr("type").ok_or_else(|| XmiError::Missing("tag type".into()))?;
    let value = || node.get_attr("value").ok_or_else(|| XmiError::Missing("tag value".into()));
    match ty {
        "str" => Ok(TagValue::Str(value()?.to_owned())),
        "int" => value()?.parse().map(TagValue::Int).map_err(|_| XmiError::Bad("int tag".into())),
        "bool" => {
            value()?.parse().map(TagValue::Bool).map_err(|_| XmiError::Bad("bool tag".into()))
        }
        "real" => {
            value()?.parse().map(TagValue::Real).map_err(|_| XmiError::Bad("real tag".into()))
        }
        "list" => {
            let mut items = Vec::new();
            for c in node.find_children("UML:Value") {
                items.push(parse_tag_value(c)?);
            }
            Ok(TagValue::List(items))
        }
        other => Err(XmiError::Bad(format!("tag type `{other}`"))),
    }
}

fn end_node(end: &AssociationEnd) -> XmlNode {
    XmlNode::new("UML:End")
        .attr("role", end.role.clone())
        .attr("class", id_str(end.class))
        .attr("multiplicity", mult_str(end.multiplicity))
        .attr("navigable", end.navigable.to_string())
        .attr(
            "aggregation",
            match end.aggregation {
                AggregationKind::None => "none",
                AggregationKind::Shared => "shared",
                AggregationKind::Composite => "composite",
            },
        )
}

fn parse_end(node: &XmlNode) -> Result<AssociationEnd, XmiError> {
    Ok(AssociationEnd {
        role: node.get_attr("role").unwrap_or_default().to_owned(),
        class: parse_id(
            node.get_attr("class").ok_or_else(|| XmiError::Missing("end class".into()))?,
        )?,
        multiplicity: parse_mult(
            node.get_attr("multiplicity")
                .ok_or_else(|| XmiError::Missing("end multiplicity".into()))?,
        )?,
        navigable: node
            .get_attr("navigable")
            .unwrap_or("true")
            .parse()
            .map_err(|_| XmiError::Bad("navigable".into()))?,
        aggregation: match node.get_attr("aggregation").unwrap_or("none") {
            "none" => AggregationKind::None,
            "shared" => AggregationKind::Shared,
            "composite" => AggregationKind::Composite,
            other => return Err(XmiError::Bad(format!("aggregation `{other}`"))),
        },
    })
}

fn element_node(e: &Element) -> XmlNode {
    let mut node = XmlNode::new("UML:Element")
        .attr("xmi.id", id_str(e.id()))
        .attr("kind", e.kind().kind_name())
        .attr("name", e.name().to_owned())
        .attr("visibility", vis_str(e.core().visibility));
    if let Some(o) = e.owner() {
        node = node.attr("owner", id_str(o));
    }
    if !e.core().doc.is_empty() {
        node = node.attr("doc", e.core().doc.clone());
    }
    for s in &e.core().stereotypes {
        node = node.child(XmlNode::new("UML:Stereotype").attr("name", s.clone()));
    }
    for (k, v) in &e.core().tags {
        node = node.child(tag_value_node("UML:TaggedValue", v).attr("key", k.clone()));
    }
    match e.kind() {
        ElementKind::Package(_) | ElementKind::Interface(_) | ElementKind::DataType(_) => {}
        ElementKind::Class(c) => {
            node = node
                .attr("isAbstract", c.is_abstract.to_string())
                .attr("isActive", c.is_active.to_string());
        }
        ElementKind::Enumeration(en) => {
            for l in &en.literals {
                node = node.child(XmlNode::new("UML:Literal").attr("name", l.clone()));
            }
        }
        ElementKind::Attribute(a) => {
            node = node
                .attr("type", type_str(a.ty))
                .attr("multiplicity", mult_str(a.multiplicity))
                .attr("isStatic", a.is_static.to_string())
                .attr("isReadOnly", a.is_read_only.to_string());
            if let Some(d) = &a.default {
                node = node.attr("default", d.clone());
            }
        }
        ElementKind::Operation(o) => {
            node = node
                .attr("returnType", type_str(o.return_type))
                .attr("isStatic", o.is_static.to_string())
                .attr("isAbstract", o.is_abstract.to_string())
                .attr("isQuery", o.is_query.to_string());
        }
        ElementKind::Parameter(p) => {
            node = node.attr("type", type_str(p.ty)).attr(
                "direction",
                match p.direction {
                    Direction::In => "in",
                    Direction::Out => "out",
                    Direction::InOut => "inout",
                    Direction::Return => "return",
                },
            );
        }
        ElementKind::Association(a) => {
            node = node.child(end_node(&a.ends[0])).child(end_node(&a.ends[1]));
        }
        ElementKind::Generalization(g) => {
            node = node.attr("child", id_str(g.child)).attr("parent", id_str(g.parent));
        }
        ElementKind::Dependency(d) => {
            node = node.attr("client", id_str(d.client)).attr("supplier", id_str(d.supplier));
        }
        ElementKind::Constraint(c) => {
            node = node.attr("constrained", id_str(c.constrained)).attr("body", c.body.clone());
        }
    }
    node
}

/// Exports a model as an XMI document string.
pub fn export_model(model: &Model) -> String {
    let mut content = XmlNode::new("UML:Model")
        .attr("name", model.name().to_owned())
        .attr("root", id_str(model.root()));
    for e in model.iter() {
        content = content.child(element_node(e));
    }
    let doc = XmlNode::new("XMI")
        .attr("xmi.version", "1.2")
        .attr("xmlns:UML", "org.omg.xmi.namespace.UML")
        .child(
            XmlNode::new("XMI.header")
                .child(XmlNode::new("XMI.documentation").attr("exporter", "comet-xmi")),
        )
        .child(XmlNode::new("XMI.content").child(content));
    write_xml(&doc)
}

fn attr_bool(node: &XmlNode, key: &str) -> Result<bool, XmiError> {
    node.get_attr(key)
        .unwrap_or("false")
        .parse()
        .map_err(|_| XmiError::Bad(format!("boolean `{key}`")))
}

fn parse_element(node: &XmlNode) -> Result<Element, XmiError> {
    let id = parse_id(node.get_attr("xmi.id").ok_or_else(|| XmiError::Missing("xmi.id".into()))?)?;
    let kind_name = node.get_attr("kind").ok_or_else(|| XmiError::Missing("kind".into()))?;
    let mut core = ElementCore::new(
        node.get_attr("name").unwrap_or_default(),
        node.get_attr("owner").map(parse_id).transpose()?,
    );
    core.visibility = parse_vis(node.get_attr("visibility").unwrap_or("public"))?;
    core.doc = node.get_attr("doc").unwrap_or_default().to_owned();
    for s in node.find_children("UML:Stereotype") {
        core.apply_stereotype(
            s.get_attr("name").ok_or_else(|| XmiError::Missing("stereotype name".into()))?,
        );
    }
    for t in node.find_children("UML:TaggedValue") {
        let key = t.get_attr("key").ok_or_else(|| XmiError::Missing("tag key".into()))?;
        core.set_tag(key, parse_tag_value(t)?);
    }
    let attr = |key: &str| -> Result<&str, XmiError> {
        node.get_attr(key)
            .ok_or_else(|| XmiError::Missing(format!("attribute `{key}` on {kind_name}")))
    };
    let kind = match kind_name {
        "Package" => ElementKind::Package(PackageData::default()),
        "Interface" => ElementKind::Interface(InterfaceData::default()),
        "DataType" => ElementKind::DataType(DataTypeData::default()),
        "Class" => ElementKind::Class(ClassData {
            is_abstract: attr_bool(node, "isAbstract")?,
            is_active: attr_bool(node, "isActive")?,
        }),
        "Enumeration" => ElementKind::Enumeration(EnumerationData {
            literals: node
                .find_children("UML:Literal")
                .map(|l| {
                    l.get_attr("name")
                        .map(str::to_owned)
                        .ok_or_else(|| XmiError::Missing("literal name".into()))
                })
                .collect::<Result<_, _>>()?,
        }),
        "Attribute" => ElementKind::Attribute(AttributeData {
            ty: parse_type(attr("type")?)?,
            multiplicity: parse_mult(attr("multiplicity")?)?,
            is_static: attr_bool(node, "isStatic")?,
            is_read_only: attr_bool(node, "isReadOnly")?,
            default: node.get_attr("default").map(str::to_owned),
        }),
        "Operation" => ElementKind::Operation(OperationData {
            return_type: parse_type(attr("returnType")?)?,
            is_static: attr_bool(node, "isStatic")?,
            is_abstract: attr_bool(node, "isAbstract")?,
            is_query: attr_bool(node, "isQuery")?,
        }),
        "Parameter" => ElementKind::Parameter(ParameterData {
            ty: parse_type(attr("type")?)?,
            direction: match attr("direction")? {
                "in" => Direction::In,
                "out" => Direction::Out,
                "inout" => Direction::InOut,
                "return" => Direction::Return,
                other => return Err(XmiError::Bad(format!("direction `{other}`"))),
            },
        }),
        "Association" => {
            let ends: Vec<AssociationEnd> =
                node.find_children("UML:End").map(parse_end).collect::<Result<_, _>>()?;
            let [a, b]: [AssociationEnd; 2] = ends
                .try_into()
                .map_err(|_| XmiError::Bad("association needs exactly two ends".into()))?;
            ElementKind::Association(AssociationData { ends: [a, b] })
        }
        "Generalization" => ElementKind::Generalization(GeneralizationData {
            child: parse_id(attr("child")?)?,
            parent: parse_id(attr("parent")?)?,
        }),
        "Dependency" => ElementKind::Dependency(DependencyData {
            client: parse_id(attr("client")?)?,
            supplier: parse_id(attr("supplier")?)?,
        }),
        "Constraint" => ElementKind::Constraint(ConstraintData {
            constrained: parse_id(attr("constrained")?)?,
            body: attr("body")?.to_owned(),
        }),
        other => return Err(XmiError::Bad(format!("element kind `{other}`"))),
    };
    Ok(Element::new(id, core, kind))
}

/// Imports a model from an XMI document string.
///
/// # Errors
/// Fails on malformed XML, unknown structure, or a model that does not
/// validate.
pub fn import_model(source: &str) -> Result<Model, XmiError> {
    let doc = parse_xml(source)?;
    if doc.name != "XMI" {
        return Err(XmiError::Missing("XMI document element".into()));
    }
    let content =
        doc.find_child("XMI.content").ok_or_else(|| XmiError::Missing("XMI.content".into()))?;
    let model_node =
        content.find_child("UML:Model").ok_or_else(|| XmiError::Missing("UML:Model".into()))?;
    let name = model_node.get_attr("name").ok_or_else(|| XmiError::Missing("model name".into()))?;
    let root = parse_id(
        model_node.get_attr("root").ok_or_else(|| XmiError::Missing("model root".into()))?,
    )?;
    let elements: Vec<Element> =
        model_node.find_children("UML:Element").map(parse_element).collect::<Result<_, _>>()?;
    Model::from_parts(name, root, elements).map_err(|violations| {
        XmiError::Invalid(violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; "))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::{auction_pim, banking_pim, synthetic};

    #[test]
    fn banking_round_trip() {
        let m = banking_pim();
        let xml = export_model(&m);
        let back = import_model(&xml).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn auction_round_trip() {
        let m = auction_pim();
        assert_eq!(import_model(&export_model(&m)).unwrap(), m);
    }

    #[test]
    fn synthetic_round_trip() {
        let m = synthetic(30, 2, 2);
        assert_eq!(import_model(&export_model(&m)).unwrap(), m);
    }

    #[test]
    fn stereotypes_tags_and_docs_survive() {
        let mut m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        m.apply_stereotype(bank, "Remote").unwrap();
        m.set_tag(bank, "comet.dist.node", "server").unwrap();
        m.set_tag(bank, "count", 42i64).unwrap();
        m.set_tag(bank, "flag", true).unwrap();
        m.set_tag(bank, "list", TagValue::List(vec![TagValue::Int(1), TagValue::Str("x".into())]))
            .unwrap();
        m.element_mut(bank).unwrap().core_mut().doc = "the bank <&> 'entity'".into();
        m.mark_concern(bank, "distribution").unwrap();
        let back = import_model(&export_model(&m)).unwrap();
        assert_eq!(m, back);
        let bank2 = back.find_class("Bank").unwrap();
        assert_eq!(back.concern_of(bank2), Some("distribution"));
    }

    #[test]
    fn enumeration_and_interface_round_trip() {
        let mut m = Model::new("m");
        m.add_enumeration(m.root(), "Color", vec!["RED".into(), "BLUE".into()]).unwrap();
        m.add_interface(m.root(), "Printable").unwrap();
        m.add_data_type(m.root(), "Money").unwrap();
        assert_eq!(import_model(&export_model(&m)).unwrap(), m);
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(matches!(import_model("<html/>"), Err(XmiError::Missing(_))));
        assert!(matches!(import_model("not xml"), Err(XmiError::Xml(_))));
        // Dangling owner reference fails validation.
        let bad = r##"<XMI xmi.version="1.2"><XMI.content>
            <UML:Model name="m" root="#0">
              <UML:Element xmi.id="#0" kind="Package" name="m"/>
              <UML:Element xmi.id="#1" kind="Class" name="A" owner="#99"/>
            </UML:Model></XMI.content></XMI>"##;
        assert!(matches!(import_model(bad), Err(XmiError::Invalid(_))));
        // Unknown kind.
        let bad2 = r##"<XMI xmi.version="1.2"><XMI.content>
            <UML:Model name="m" root="#0">
              <UML:Element xmi.id="#0" kind="Widget" name="m"/>
            </UML:Model></XMI.content></XMI>"##;
        assert!(matches!(import_model(bad2), Err(XmiError::Bad(_))));
    }

    #[test]
    fn export_contains_xmi_structure() {
        let xml = export_model(&banking_pim());
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("xmi.version=\"1.2\""));
        assert!(xml.contains("XMI.header"));
        assert!(xml.contains("UML:Model name=\"bank\""));
        assert!(xml.contains("kind=\"Class\" name=\"Account\""));
    }
}
