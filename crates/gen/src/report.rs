//! The `report` backend: instead of source code it renders a
//! deterministic model + concern summary — element counts, the element
//! inventory, per-concern advised join points, and the tangling ratio —
//! as human-readable text followed by a machine-readable JSON document
//! produced through the shared `comet_obs::JsonValue` writer. Useful as
//! a cheap "what would generation see?" probe and as the third,
//! structurally different target proving the factory generic.

use crate::{GenInput, Generator};
use comet_aop::concern_metrics;
use comet_obs::JsonValue;
use std::fmt::Write as _;

/// Concern prefixes the woven program's intrinsics are attributed to —
/// the same set `comet-cli metrics` measures.
const CONCERN_PREFIXES: [&str; 5] = ["net", "tx", "sec", "log", "lock"];

/// `report`: deterministic model + concern summary (text + JSON).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportBackend;

impl Generator for ReportBackend {
    fn id(&self) -> &'static str {
        "report"
    }

    fn describe(&self) -> &'static str {
        "deterministic model + concern summary (element counts, advised join points, tangling)"
    }

    fn generate(&self, input: &GenInput<'_>) -> String {
        let model = input.model;
        let classes = model.classes();
        let mut attributes = 0usize;
        let mut operations = 0usize;
        for &class_id in &classes {
            attributes += model.attributes_of(class_id).len();
            operations += model.operations_of(class_id).len();
        }
        let metrics = concern_metrics(input.woven, &CONCERN_PREFIXES);

        let mut out = String::new();
        let _ = writeln!(out, "comet-gen report — model `{}`", model.name());
        let _ = writeln!(
            out,
            "elements: {} total (classes={} associations={} packages={} attributes={} \
             operations={})",
            model.len(),
            classes.len(),
            model.associations().len(),
            model.packages().len(),
            attributes,
            operations
        );
        if input.concerns.is_empty() {
            let _ = writeln!(out, "concerns applied: none");
        } else {
            let _ =
                writeln!(out, "concerns applied (precedence order): {}", input.concerns.join(", "));
        }
        let _ = writeln!(out, "inventory:");
        for &class_id in &classes {
            let class = match model.element(class_id) {
                Ok(element) => element,
                Err(_) => continue,
            };
            let methods: Vec<String> = model
                .operations_of(class_id)
                .into_iter()
                .filter_map(|op| model.element(op).ok().map(|o| o.name().to_owned()))
                .collect();
            let _ = writeln!(out, "  class {}: {}", class.name(), methods.join(", "));
        }
        let _ = writeln!(
            out,
            "woven program: {} classes, {} methods, {} statements",
            input.woven.classes.len(),
            metrics.total_methods,
            metrics.total_statements
        );
        let _ = writeln!(out, "advised join points per concern:");
        for (prefix, m) in &metrics.concerns {
            let _ = writeln!(
                out,
                "  {prefix}: classes={} methods={} stmts={}",
                m.scattered_classes, m.scattered_methods, m.statements
            );
        }
        let _ = writeln!(out, "tangling ratio: {:.6}", metrics.tangling_ratio());

        let advised = metrics
            .concerns
            .iter()
            .map(|(prefix, m)| {
                (
                    prefix.clone(),
                    JsonValue::Obj(vec![
                        ("scattered_classes".into(), JsonValue::Num(m.scattered_classes as f64)),
                        ("advised_methods".into(), JsonValue::Num(m.scattered_methods as f64)),
                        ("statements".into(), JsonValue::Num(m.statements as f64)),
                    ]),
                )
            })
            .collect();
        let json = JsonValue::Obj(vec![
            ("model".into(), JsonValue::Str(model.name().to_owned())),
            (
                "elements".into(),
                JsonValue::Obj(vec![
                    ("total".into(), JsonValue::Num(model.len() as f64)),
                    ("classes".into(), JsonValue::Num(classes.len() as f64)),
                    ("associations".into(), JsonValue::Num(model.associations().len() as f64)),
                    ("packages".into(), JsonValue::Num(model.packages().len() as f64)),
                    ("attributes".into(), JsonValue::Num(attributes as f64)),
                    ("operations".into(), JsonValue::Num(operations as f64)),
                ]),
            ),
            (
                "concerns".into(),
                JsonValue::Arr(input.concerns.iter().map(|c| JsonValue::Str(c.clone())).collect()),
            ),
            ("advised".into(), JsonValue::Obj(advised)),
            ("tangling_ratio".into(), JsonValue::Fixed(metrics.tangling_ratio(), 6)),
        ]);
        let _ = writeln!(out, "--- json ---");
        out.push_str(&json.to_pretty());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_codegen::{BodyProvider, FunctionalGenerator};
    use comet_model::sample::banking_pim;

    #[test]
    fn report_is_deterministic_and_parseable() {
        let model = banking_pim();
        let bodies = BodyProvider::default();
        let program = FunctionalGenerator::new().generate(&model, &bodies);
        let concerns = vec!["distribution".to_owned(), "transactions".to_owned()];
        let input = GenInput {
            model: &model,
            functional: &program,
            woven: &program,
            concerns: &concerns,
            bodies: &bodies,
        };
        let first = ReportBackend.generate(&input);
        assert_eq!(first, ReportBackend.generate(&input));
        assert!(first.contains("concerns applied (precedence order): distribution, transactions"));
        assert!(first.contains("inventory:"));
        let json_part = first.split("--- json ---\n").nth(1).expect("json section");
        let doc = JsonValue::parse(json_part).expect("well-formed JSON");
        assert_eq!(doc.get("model").and_then(|v| v.as_str()), Some(model.name()));
        assert_eq!(
            doc.get("elements").and_then(|e| e.get("classes")).and_then(|v| v.as_u64()),
            Some(model.classes().len() as u64)
        );
        assert!(json_part.contains("\"tangling_ratio\": 0."), "{json_part}");
    }
}
