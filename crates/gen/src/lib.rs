//! `comet-gen` — the **generator factory**: every code-generation
//! target in the suite lives behind one [`Generator`] trait, registered
//! in a [`GeneratorFactory`] keyed by a [`Backend`] id. This is the
//! "generic" half of *Generic* Concern-Oriented Model Transformations
//! made concrete: the PSM → code step is a pluggable transformation
//! chosen per request, not a hard-wired printer.
//!
//! Standard backends:
//!
//! | id                | artifact |
//! |-------------------|----------|
//! | `java-functional` | the Java-flavoured woven system source (functional generator + woven aspects) |
//! | `java-monolithic` | the tangled baseline the paper argues against ([`comet_codegen::MonolithicGenerator`]) |
//! | `rust-skeleton`   | a typed Rust skeleton lowered from the woven IR, intrinsic calls preserved |
//! | `report`          | a deterministic model + concern summary (text + JSON) |
//!
//! On top sits [`GenCache`], a content-addressed artifact cache: key =
//! `(fnv1a64 over the canonical XMI export, fingerprint of the supplied
//! method bodies, backend id, applied-concern list in precedence
//! order)`, value = the rendered artifact bytes. The
//! content hash is memoized per [`Model::revision`], so a `Generate`
//! request against an unchanged model is an O(1) map hit whose artifact
//! is byte-identical to a cold render — the same hashing discipline the
//! durable segment store uses for snapshot identity.

mod cache;
mod java;
mod report;
mod rust_skeleton;

pub use cache::GenCache;
pub use java::{JavaFunctionalBackend, JavaMonolithicBackend};
pub use report::ReportBackend;
pub use rust_skeleton::{RustSkeletonBackend, RustType};

use comet_codegen::{BodyProvider, Program};
use comet_model::Model;
use std::fmt;

/// FNV-1a over raw bytes — the segment-store content-hash discipline,
/// reused here so cache keys are stable across processes and platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The registered generation targets, mirroring the RAISE
/// `TransformationDomain` enum: one variant per backend, each with a
/// stable string id used in workload plans, CLI flags, and cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Java-flavoured functional target: the woven system source.
    JavaFunctional,
    /// The tangled monolithic baseline (paper experiment E5's control).
    JavaMonolithic,
    /// Typed Rust-skeleton lowering of the woven IR.
    RustSkeleton,
    /// Deterministic model + concern metrics summary.
    Report,
}

impl Backend {
    /// Every backend, in the canonical listing order.
    pub const ALL: [Backend; 4] =
        [Backend::JavaFunctional, Backend::JavaMonolithic, Backend::RustSkeleton, Backend::Report];

    /// The stable string id (plan TOML / CLI / cache-key spelling).
    pub fn id(self) -> &'static str {
        match self {
            Backend::JavaFunctional => "java-functional",
            Backend::JavaMonolithic => "java-monolithic",
            Backend::RustSkeleton => "rust-skeleton",
            Backend::Report => "report",
        }
    }

    /// Parses a backend id; `None` for unknown spellings.
    pub fn parse(id: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.id() == id)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Everything a backend may consult when rendering: the refined model,
/// the functional program, the woven program (functional + aspects),
/// the applied-concern names in §3 precedence order, and the method
/// bodies the functional generator was given.
#[derive(Debug, Clone, Copy)]
pub struct GenInput<'a> {
    /// The refined (most-specialized) model the programs were generated
    /// from.
    pub model: &'a Model,
    /// The functional program (no concern code).
    pub functional: &'a Program,
    /// The woven program: functional code + aspect advice.
    pub woven: &'a Program,
    /// Applied concern names, in application (precedence) order.
    pub concerns: &'a [String],
    /// Method bodies supplied to the functional generator.
    pub bodies: &'a BodyProvider,
}

/// One code-generation target. Implementations must be deterministic:
/// the same [`GenInput`] renders byte-identical artifacts, which is
/// what makes the content-addressed [`GenCache`] sound.
pub trait Generator {
    /// Stable backend id; must agree with [`Backend::id`] for standard
    /// backends.
    fn id(&self) -> &'static str;
    /// One-line human description for `--list-backends`.
    fn describe(&self) -> &'static str;
    /// Renders the artifact.
    fn generate(&self, input: &GenInput<'_>) -> String;
}

/// The backend registry, in the style of the RAISE transformation
/// factory: ask it for a transformer by domain ([`Backend`]) or by raw
/// id, or iterate the registered set for listings.
pub struct GeneratorFactory {
    registry: Vec<Box<dyn Generator + Send + Sync>>,
}

impl GeneratorFactory {
    /// An empty registry (for tests that register custom backends).
    pub fn new() -> Self {
        GeneratorFactory { registry: Vec::new() }
    }

    /// The standard registry: all four [`Backend::ALL`] targets.
    pub fn with_standard_backends() -> Self {
        let mut factory = GeneratorFactory::new();
        factory.register(Box::new(JavaFunctionalBackend));
        factory.register(Box::new(JavaMonolithicBackend));
        factory.register(Box::new(RustSkeletonBackend));
        factory.register(Box::new(ReportBackend));
        factory
    }

    /// Registers a backend; a later registration with the same id wins
    /// over an earlier one (lookup is last-registered-first).
    pub fn register(&mut self, generator: Box<dyn Generator + Send + Sync>) {
        self.registry.push(generator);
    }

    /// Looks a backend up by enum variant.
    pub fn get(&self, backend: Backend) -> Option<&(dyn Generator + Send + Sync)> {
        self.by_id(backend.id())
    }

    /// Looks a backend up by raw id (the plan-TOML / CLI spelling).
    pub fn by_id(&self, id: &str) -> Option<&(dyn Generator + Send + Sync)> {
        self.registry.iter().rev().find(|g| g.id() == id).map(Box::as_ref)
    }

    /// The registered backends, in registration order.
    pub fn backends(&self) -> impl Iterator<Item = &(dyn Generator + Send + Sync)> {
        self.registry.iter().map(Box::as_ref)
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }
}

impl Default for GeneratorFactory {
    fn default() -> Self {
        GeneratorFactory::with_standard_backends()
    }
}

impl fmt::Debug for GeneratorFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<&str> = self.registry.iter().map(|g| g.id()).collect();
        f.debug_struct("GeneratorFactory").field("backends", &ids).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_aop::Weaver;
    use comet_codegen::FunctionalGenerator;
    use comet_model::sample::banking_pim;

    fn input_fixture() -> (Model, Program, Program, Vec<String>, BodyProvider) {
        let model = banking_pim();
        let bodies = BodyProvider::default();
        let functional = FunctionalGenerator::new().generate(&model, &bodies);
        let woven = functional.clone();
        (model, functional, woven, vec!["distribution".into()], bodies)
    }

    #[test]
    fn backend_ids_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.id()), Some(backend));
            assert_eq!(backend.to_string(), backend.id());
        }
        assert_eq!(Backend::parse("cobol"), None);
    }

    #[test]
    fn standard_factory_registers_all_backends() {
        let factory = GeneratorFactory::with_standard_backends();
        assert_eq!(factory.len(), Backend::ALL.len());
        assert!(!factory.is_empty());
        for backend in Backend::ALL {
            let generator = factory.get(backend).expect("registered");
            assert_eq!(generator.id(), backend.id());
            assert!(!generator.describe().is_empty());
        }
        assert!(factory.by_id("cobol").is_none());
    }

    #[test]
    fn later_registration_shadows_earlier() {
        struct Custom;
        impl Generator for Custom {
            fn id(&self) -> &'static str {
                "report"
            }
            fn describe(&self) -> &'static str {
                "custom report"
            }
            fn generate(&self, _input: &GenInput<'_>) -> String {
                "custom".into()
            }
        }
        let mut factory = GeneratorFactory::with_standard_backends();
        factory.register(Box::new(Custom));
        assert_eq!(factory.by_id("report").expect("present").describe(), "custom report");
    }

    #[test]
    fn every_backend_mentions_every_class_and_method() {
        let (model, functional, woven, concerns, bodies) = input_fixture();
        let input = GenInput {
            model: &model,
            functional: &functional,
            woven: &woven,
            concerns: &concerns,
            bodies: &bodies,
        };
        let factory = GeneratorFactory::with_standard_backends();
        for generator in factory.backends() {
            let artifact = generator.generate(&input);
            for class_id in model.classes() {
                let class = model.element(class_id).expect("class exists");
                assert!(
                    artifact.contains(class.name()),
                    "backend {} omits class {}",
                    generator.id(),
                    class.name()
                );
                for op_id in model.operations_of(class_id) {
                    let op = model.element(op_id).expect("operation exists");
                    assert!(
                        artifact.contains(op.name()),
                        "backend {} omits method {}.{}",
                        generator.id(),
                        class.name(),
                        op.name()
                    );
                }
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let (model, functional, woven, concerns, bodies) = input_fixture();
        let input = GenInput {
            model: &model,
            functional: &functional,
            woven: &woven,
            concerns: &concerns,
            bodies: &bodies,
        };
        let factory = GeneratorFactory::with_standard_backends();
        for generator in factory.backends() {
            assert_eq!(generator.generate(&input), generator.generate(&input));
        }
    }

    #[test]
    fn woven_intrinsics_survive_the_rust_lowering() {
        use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect};
        use comet_codegen::{Block, Expr, Stmt};
        let model = banking_pim();
        let bodies = BodyProvider::default();
        let functional = FunctionalGenerator::new().generate(&model, &bodies);
        let aspect = Aspect::new("logging").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(*.*)").expect("valid pointcut"),
            Block::of(vec![Stmt::Expr(Expr::intrinsic(
                "log.emit",
                vec![Expr::str("info"), Expr::str("enter")],
            ))]),
        ));
        let woven = Weaver::new(vec![aspect]).weave(&functional).expect("weaves").program;
        let concerns = vec!["logging".to_owned()];
        let input = GenInput {
            model: &model,
            functional: &functional,
            woven: &woven,
            concerns: &concerns,
            bodies: &bodies,
        };
        let artifact = RustSkeletonBackend.generate(&input);
        assert!(artifact.contains("pub struct"), "{artifact}");
        assert!(artifact.contains("rt::intrinsic(\"log.emit\""), "{artifact}");
    }
}
