//! The Java-flavoured backends: the paper's proposal (functional
//! generator + woven aspects, rendered from the woven IR) and the
//! monolithic baseline it argues against. Both reuse `comet-codegen` —
//! the IR home — and differ only in which program they print.

use crate::{GenInput, Generator};
use comet_codegen::{pretty_print, MonolithicGenerator};

/// `java-functional`: the woven system source — functional code with
/// the applied concerns' advice woven in. This is the artifact the
/// original single-target `comet-codegen` pipeline produced; it is now
/// one backend among peers.
#[derive(Debug, Clone, Copy, Default)]
pub struct JavaFunctionalBackend;

impl Generator for JavaFunctionalBackend {
    fn id(&self) -> &'static str {
        "java-functional"
    }

    fn describe(&self) -> &'static str {
        "Java-flavoured woven system source (functional generator + woven aspects)"
    }

    fn generate(&self, input: &GenInput<'_>) -> String {
        pretty_print(input.woven)
    }
}

/// `java-monolithic`: the tangled baseline — concern behaviour inlined
/// into every affected class by [`MonolithicGenerator`], regenerated
/// from the most-specialized PSM. Experiment E5's control arm.
#[derive(Debug, Clone, Copy, Default)]
pub struct JavaMonolithicBackend;

impl Generator for JavaMonolithicBackend {
    fn id(&self) -> &'static str {
        "java-monolithic"
    }

    fn describe(&self) -> &'static str {
        "tangled monolithic Java baseline (concern code inlined from the PSM marks)"
    }

    fn generate(&self, input: &GenInput<'_>) -> String {
        let program = MonolithicGenerator::new().generate(input.model, input.bodies);
        pretty_print(&program)
    }
}
