//! The content-addressed generation cache. Artifacts are keyed by
//! *what was generated from what*: the FNV-1a hash of the model's
//! canonical XMI export, a fingerprint of the supplied method bodies
//! (the remaining caller-controlled input a render depends on), the
//! backend id, and the applied-concern list in precedence order.
//! Content addressing makes the cache immune to lying revision
//! counters — two models with identical content share entries, and an
//! `undo` that restores an earlier snapshot re-hits the artifact
//! rendered before the edit.
//!
//! Hashing the XMI export is O(model), so the hash is memoized against
//! [`Model::revision`] — the same generation counter the incremental
//! weaver keys its cache on. The memo (never the artifact map) must be
//! dropped whenever the model *instance* is replaced, because revision
//! counters are per instance; see [`GenCache::forget_revision`].

use crate::{fnv1a64, GenInput, Generator};
use comet_codegen::BodyProvider;
use comet_model::Model;
use comet_xmi::export_model;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Cache key: (content hash, bodies fingerprint, backend id, applied
/// concerns in order).
type CacheKey = (u64, u64, String, Vec<String>);

/// FNV-1a over a canonical serialization of the provider's
/// `(qualified name, body)` pairs. The rendered artifact depends on the
/// bodies just as much as on the model, so two providers with different
/// bodies must never alias one cache entry.
fn bodies_fingerprint(bodies: &BodyProvider) -> u64 {
    let mut repr = String::new();
    for (name, body) in bodies.entries() {
        write!(repr, "{name}\0{body:?}\0").expect("writing to a String cannot fail");
    }
    fnv1a64(repr.as_bytes())
}

/// Content-addressed artifact cache with a revision-memoized content
/// hash, so a `Generate` against an unchanged model costs one map
/// lookup instead of a render.
#[derive(Debug, Default)]
pub struct GenCache {
    entries: BTreeMap<CacheKey, String>,
    /// `(revision, content hash)` of the most recently hashed model
    /// state — valid only while the same model instance stays at the
    /// same revision.
    memo: Option<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl GenCache {
    /// An empty cache.
    pub fn new() -> Self {
        GenCache::default()
    }

    /// The model's content hash: FNV-1a over the canonical XMI export,
    /// memoized by [`Model::revision`]. Two calls against an unchanged
    /// instance pay one export; an edited model re-exports once.
    pub fn content_hash(&mut self, model: &Model) -> u64 {
        let revision = model.revision();
        if let Some((memo_revision, hash)) = self.memo {
            if memo_revision == revision {
                return hash;
            }
        }
        let hash = fnv1a64(export_model(model).as_bytes());
        self.memo = Some((revision, hash));
        hash
    }

    /// Renders `input` through `generator`, consulting the cache first.
    /// Returns the artifact and whether it was a cache hit. A hit is
    /// byte-identical to the cold render that populated the entry.
    pub fn render(&mut self, generator: &dyn Generator, input: &GenInput<'_>) -> (String, bool) {
        let hash = self.content_hash(input.model);
        let key = (
            hash,
            bodies_fingerprint(input.bodies),
            generator.id().to_owned(),
            input.concerns.to_vec(),
        );
        if let Some(artifact) = self.entries.get(&key) {
            self.hits += 1;
            return (artifact.clone(), true);
        }
        let artifact = generator.generate(input);
        self.entries.insert(key, artifact.clone());
        self.misses += 1;
        (artifact, false)
    }

    /// Drops the revision memo (not the artifact entries). Call this
    /// whenever the model *instance* behind the cache may have been
    /// replaced — snapshot restore, journal rollback, recovery — since
    /// a fresh instance restarts its revision counter and could
    /// otherwise alias a stale hash. Entries stay: they are addressed
    /// by content, so a restored state re-hits its old artifacts.
    pub fn forget_revision(&mut self) {
        self.memo = None;
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no artifact has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, GeneratorFactory};
    use comet_codegen::{BodyProvider, FunctionalGenerator};
    use comet_model::sample::banking_pim;

    fn fixture() -> (Model, comet_codegen::Program, Vec<String>, BodyProvider) {
        let model = banking_pim();
        let bodies = BodyProvider::default();
        let program = FunctionalGenerator::new().generate(&model, &bodies);
        (model, program, vec!["distribution".to_owned()], bodies)
    }

    fn input<'a>(
        model: &'a Model,
        program: &'a comet_codegen::Program,
        concerns: &'a [String],
        bodies: &'a BodyProvider,
    ) -> GenInput<'a> {
        GenInput { model, functional: program, woven: program, concerns, bodies }
    }

    #[test]
    fn hit_is_byte_identical_to_cold_render() {
        let (model, program, concerns, bodies) = fixture();
        let factory = GeneratorFactory::with_standard_backends();
        let mut cache = GenCache::new();
        for backend in Backend::ALL {
            let generator = factory.get(backend).expect("registered");
            let gen_input = input(&model, &program, &concerns, &bodies);
            let (cold, hit0) = cache.render(generator, &gen_input);
            assert!(!hit0, "first render must miss");
            let (warm, hit1) = cache.render(generator, &gen_input);
            assert!(hit1, "second render must hit");
            assert_eq!(cold, warm);
        }
        assert_eq!(cache.stats(), (Backend::ALL.len() as u64, Backend::ALL.len() as u64));
        assert_eq!(cache.len(), Backend::ALL.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn keys_separate_backends_and_concern_lists() {
        let (model, program, concerns, bodies) = fixture();
        let factory = GeneratorFactory::with_standard_backends();
        let mut cache = GenCache::new();
        let functional = factory.get(Backend::JavaFunctional).expect("registered");
        let report = factory.get(Backend::Report).expect("registered");
        let gen_input = input(&model, &program, &concerns, &bodies);
        cache.render(functional, &gen_input);
        let (_, hit) = cache.render(report, &gen_input);
        assert!(!hit, "different backend must be a different entry");
        let reordered = vec!["transactions".to_owned()];
        let other = input(&model, &program, &reordered, &bodies);
        let (_, hit) = cache.render(functional, &other);
        assert!(!hit, "different concern list must be a different entry");
    }

    #[test]
    fn different_body_providers_never_alias() {
        use comet_codegen::{Block, Expr, Stmt};
        let model = banking_pim();
        let concerns = vec!["distribution".to_owned()];
        let factory = GeneratorFactory::with_standard_backends();
        let generator = factory.get(Backend::JavaFunctional).expect("registered");
        let mut cache = GenCache::new();
        let bodies1 = BodyProvider::default();
        let program1 = FunctionalGenerator::new().generate(&model, &bodies1);
        let (cold1, hit) = cache.render(generator, &input(&model, &program1, &concerns, &bodies1));
        assert!(!hit);
        let bodies2 = BodyProvider::new().provide(
            "Bank::transfer",
            Block::of(vec![Stmt::Expr(Expr::intrinsic("audit.log", vec![Expr::str("transfer")]))]),
        );
        let program2 = FunctionalGenerator::new().generate(&model, &bodies2);
        let (cold2, hit) = cache.render(generator, &input(&model, &program2, &concerns, &bodies2));
        assert!(!hit, "same model and concerns with different bodies must be a different entry");
        assert_ne!(cold1, cold2, "the two providers render different artifacts");
        // Each provider re-hits its own entry, byte-identically.
        let (warm, hit) = cache.render(generator, &input(&model, &program1, &concerns, &bodies1));
        assert!(hit);
        assert_eq!(warm, cold1);
    }

    #[test]
    fn edits_invalidate_and_restores_re_hit() {
        let (mut model, program, concerns, bodies) = fixture();
        let factory = GeneratorFactory::with_standard_backends();
        let generator = factory.get(Backend::Report).expect("registered");
        let mut cache = GenCache::new();
        let hash_before = cache.content_hash(&model);
        {
            let gen_input = input(&model, &program, &concerns, &bodies);
            cache.render(generator, &gen_input);
        }
        // Edit: new class changes the content hash → miss.
        let root = model.root();
        let added = model.add_class(root, "Ledger").expect("fresh name");
        assert_ne!(cache.content_hash(&model), hash_before);
        {
            let gen_input = input(&model, &program, &concerns, &bodies);
            let (_, hit) = cache.render(generator, &gen_input);
            assert!(!hit, "edited model must miss");
        }
        // Undo the edit: content is back, so the original entry re-hits
        // even though the revision counter moved on.
        model.remove_element(added).expect("removable");
        assert_eq!(cache.content_hash(&model), hash_before);
        let gen_input = input(&model, &program, &concerns, &bodies);
        let (_, hit) = cache.render(generator, &gen_input);
        assert!(hit, "restored content must re-hit the original entry");
    }

    #[test]
    fn forget_revision_guards_against_instance_swaps() {
        let (model, program, concerns, bodies) = fixture();
        let mut cache = GenCache::new();
        let hash = cache.content_hash(&model);
        // A *different* instance with different content could reuse the
        // same revision number; forgetting the memo forces a re-hash.
        cache.forget_revision();
        let mut other = banking_pim();
        let root = other.root();
        other.add_class(root, "Imposter").expect("fresh name");
        assert_ne!(cache.content_hash(&other), hash);
        let _ = (program, concerns, bodies);
    }
}
