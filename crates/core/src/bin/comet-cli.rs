//! `comet-cli` — a command-line front-end for the COMET tool
//! infrastructure: inspect models, list concerns and their parameters,
//! apply concern transformations to XMI models, and emit aspect
//! artifacts.
//!
//! ```text
//! comet-cli new <out.xmi>                     write the sample banking PIM
//! comet-cli inspect <model.xmi>               summary, validation, colors
//! comet-cli concerns                          list concern pairs + parameters
//! comet-cli apply <model.xmi> <concern> k=v... [-o out.xmi] [--aspect-out f.aj] [--dry-run]
//! comet-cli weave <model.xmi> <concern> k=v... [--threads N]
//! comet-cli pipeline [--threads N] [--faults plan.toml] [--seed N] [--trace out.json]
//! comet-cli generate [--backend ID] [-o out] [--list-backends]
//! comet-cli run [--faults plan.toml] [--seed N] [--order O] [--transfers N] [--trace out.json]
//! comet-cli provenance <element> --trace out.json
//! comet-cli metrics [--json]
//! comet-cli interactions [--json]
//! ```
//!
//! Parameters are `key=value`; list-valued parameters take
//! comma-separated values (`methods=Bank.transfer,Account.withdraw`).
//! `--threads N` pins the weaver's worker-thread count (default: all
//! cores). `apply --dry-run` previews the refinement report and then
//! unwinds it via the change journal — no file is touched.
//!
//! `run` executes the chaos harness: the banking system woven with
//! {distribution, transactions, faulttolerance}, driven under the fault
//! plan (omit `--faults` for a fault-free run). It prints the fault log
//! and degradation summary and exits non-zero if the run degraded
//! ungracefully (hard error or a partial transfer observed). `--order`
//! is `ft-outside-tx` (default) or `tx-outside-ft` — the §3 precedence
//! choice. `--seed N` overrides the plan's seed. `pipeline --faults`
//! appends the same chaos run after the Fig. 2 demo.
//!
//! `--trace out.json` attaches the observability collector to every
//! pipeline layer and writes a Chrome trace-event file (loadable in
//! Perfetto / `chrome://tracing`). Same seed + same plan ⇒ the same
//! trace, byte for byte. `provenance <element> --trace out.json` reads
//! such a file back and answers "which concern / CMT⟨Si⟩ / advice /
//! runtime event touched this element?". `metrics` runs the Fig. 2
//! pipeline and prints scattering/tangling metrics for the woven
//! program (`--json` for machine-readable output).
//!
//! `generate` runs the Fig. 2 pipeline and renders the woven system
//! with the named generation backend (default `java-functional`;
//! `--list-backends` lists the registered ids). The artifact goes to
//! stdout, or to a file with `-o` — the same content-addressed cache
//! the serving layer uses backs repeated renders.
//!
//! `interactions` prints the critical-pair interaction matrix over the
//! standard concern library — the same matrix `serve` consults at
//! admission time; a serve run whose plan trips a `conflicts` cell
//! prints its report and then exits non-zero.

use comet::chaos::{run_banking_chaos_traced, ChaosConfig, FtOrder};
use comet::{
    run_banking_serve_cfg, run_banking_serve_durable_cfg, KillPoint, MdaLifecycle, Wizard,
};
use comet_aop::{concern_metrics, Weaver};
use comet_aspectgen::{AspectBackend, AspectJBackend};
use comet_codegen::{BodyProvider, FunctionalGenerator};
use comet_middleware::FaultPlan;
use comet_model::sample::banking_pim;
use comet_obs::{Collector, ProvenanceIndex, Trace};
use comet_repo::ColorReport;
use comet_serve::WorkloadPlan;
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use comet_xmi::{export_model, import_model};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// CLI failures, split by exit-code convention: `Usage` is caller error
/// (unknown subcommand, bad flags) → usage on stderr, exit 2; `Failure`
/// is the operation failing → `error: ...` on stderr, exit 1.
enum CliError {
    Usage(String),
    Failure(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Failure(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Failure(message.to_owned())
    }
}

/// Shorthand for flag/argument mistakes.
fn usage_err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("new") => cmd_new(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("concerns") => cmd_concerns(),
        Some("apply") => cmd_apply(&args[1..]),
        Some("weave") => cmd_weave(&args[1..]),
        Some("pipeline") => cmd_pipeline(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("repo") => cmd_repo(&args[1..]),
        Some("provenance") => cmd_provenance(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("interactions") => cmd_interactions(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{}", usage_text());
            Ok(())
        }
        Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage_text());
            ExitCode::from(2)
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn usage_text() -> &'static str {
    "comet-cli — concern-oriented model transformations meet AOP\n\n\
     USAGE:\n  comet-cli new <out.xmi>\n  comet-cli inspect <model.xmi>\n  \
     comet-cli concerns\n  comet-cli apply <model.xmi> <concern> [k=v ...] \
     [-o out.xmi] [--aspect-out out.aj] [--dry-run]\n  \
     comet-cli weave <model.xmi> <concern> [k=v ...] [--threads N]\n  \
     comet-cli pipeline [--threads N] [--faults plan.toml] [--seed N] [--trace out.json]\n  \
     comet-cli generate [--backend ID] [-o out] [--list-backends]\n  \
     comet-cli run [--faults plan.toml] [--seed N] \
     [--order ft-outside-tx|tx-outside-ft] [--transfers N] [--trace out.json]\n  \
     comet-cli serve [--workload plan.toml] [--shards N] [--seed N] [--faults plan.toml] \
     [--threads N] [--trace out.json] [--json] [--data-dir DIR] [--kill tenant@N] \
     [--metrics out.prom|out.json] [--slo]\n  \
     comet-cli repo fsck <data-dir>\n  \
     comet-cli provenance <element> --trace out.json\n  \
     comet-cli metrics [--json]\n  \
     comet-cli interactions [--json]"
}

/// Runs `op` with `--threads N` governing the weaver's parallel
/// per-class fan-out: a dedicated rayon pool when a count was given,
/// the global default (all cores) otherwise.
fn with_pool<R>(threads: Option<usize>, op: impl FnOnce() -> R) -> Result<R, CliError> {
    match threads {
        None => Ok(op()),
        Some(0) => Err(usage_err("--threads must be at least 1")),
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| e.to_string())?;
            Ok(pool.install(op))
        }
    }
}

fn cmd_new(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("usage: comet-cli new <out.xmi>"))?;
    let model = banking_pim();
    std::fs::write(path, export_model(&model)).map_err(|e| e.to_string())?;
    println!("wrote sample PIM `{}` ({} elements) to {path}", model.name(), model.len());
    Ok(())
}

fn load(path: &str) -> Result<comet_model::Model, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    import_model(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("usage: comet-cli inspect <model.xmi>"))?;
    let model = load(path)?;
    println!("model `{}`: {} elements", model.name(), model.len());
    println!(
        "  classes: {}, associations: {}, packages: {}",
        model.classes().len(),
        model.associations().len(),
        model.packages().len()
    );
    match model.validate() {
        Ok(()) => println!("  well-formed: yes"),
        Err(violations) => {
            println!("  well-formed: NO ({} violations)", violations.len());
            for v in violations.iter().take(10) {
                println!("    - {v}");
            }
        }
    }
    let colors = ColorReport::for_model(&model);
    print!("{colors}");
    for class_id in model.classes() {
        let class = model.element(class_id).map_err(|e| e.to_string())?;
        let stereo = if class.core().stereotypes.is_empty() {
            String::new()
        } else {
            format!(" «{}»", class.core().stereotypes.join(", "))
        };
        println!("  class {}{stereo}", class.name());
        for op in model.operations_of(class_id) {
            let o = model.element(op).map_err(|e| e.to_string())?;
            let marks = if o.core().stereotypes.is_empty() {
                String::new()
            } else {
                format!(" «{}»", o.core().stereotypes.join(", "))
            };
            println!("    {}(){marks}", o.name());
        }
    }
    Ok(())
}

fn cmd_concerns() -> Result<(), CliError> {
    for pair in comet_concerns::standard_pairs() {
        let wizard = Wizard::for_pair(&pair);
        println!("{}", pair.concern());
        for q in wizard.questions() {
            println!(
                "  {}  {:?}{}{}",
                q.name,
                q.kind,
                if q.required { "  (required)" } else { "" },
                q.default.map(|d| format!("  [default: {d}]")).unwrap_or_default()
            );
        }
    }
    Ok(())
}

fn cmd_apply(args: &[String]) -> Result<(), CliError> {
    let mut positional = Vec::new();
    let mut params: BTreeMap<String, String> = BTreeMap::new();
    let mut out_path: Option<String> = None;
    let mut aspect_out: Option<String> = None;
    let mut dry_run = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                out_path =
                    Some(args.get(i + 1).ok_or_else(|| usage_err("-o needs a path"))?.clone());
                i += 2;
            }
            "--aspect-out" => {
                aspect_out = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--aspect-out needs a path"))?.clone(),
                );
                i += 2;
            }
            "--dry-run" => {
                dry_run = true;
                i += 1;
            }
            arg if arg.contains('=') => {
                let (k, v) = arg.split_once('=').expect("checked contains");
                params.insert(k.to_owned(), v.to_owned());
                i += 1;
            }
            other => {
                positional.push(other.to_owned());
                i += 1;
            }
        }
    }
    let [model_path, concern_name] = positional.as_slice() else {
        return Err(usage_err("usage: comet-cli apply <model.xmi> <concern> [k=v ...]"));
    };
    let pair = comet_concerns::by_name(concern_name)
        .ok_or_else(|| format!("unknown concern `{concern_name}` (see `comet-cli concerns`)"))?;
    let mut model = load(model_path)?;

    let wizard = Wizard::for_pair(&pair);
    let si = wizard.collect(&params).map_err(|e| e.to_string())?;
    let (cmt, ca) = pair.specialize(si).map_err(|e| e.to_string())?;
    // Under --dry-run the apply happens inside an outer journal segment
    // (the engine's own segment nests into it), so the whole refinement
    // can be unwound after the report is printed.
    if dry_run {
        model.begin_journal();
    }
    let report = match cmt.apply(&mut model) {
        Ok(report) => report,
        Err(e) => {
            if dry_run {
                model.rollback_journal();
            }
            return Err(e.to_string().into());
        }
    };
    println!(
        "{} {} (created {}, modified {}, removed {})",
        if dry_run { "would apply" } else { "applied" },
        cmt.full_name(),
        report.created.len(),
        report.modified.len(),
        report.removed.len()
    );
    if dry_run {
        model.rollback_journal();
        println!("dry run: model unchanged, nothing written");
        return Ok(());
    }

    let out = out_path.unwrap_or_else(|| model_path.clone());
    std::fs::write(&out, export_model(&model)).map_err(|e| e.to_string())?;
    println!("wrote refined model to {out}");

    if let Some(aspect_path) = aspect_out {
        let artifact = AspectJBackend::new().render(&ca);
        std::fs::write(&aspect_path, artifact).map_err(|e| e.to_string())?;
        println!("wrote concrete aspect `{}` to {aspect_path}", ca.name);
    }
    Ok(())
}

fn parse_threads(args: &[String]) -> Result<(Vec<String>, Option<usize>), CliError> {
    let mut rest = Vec::new();
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let n = args.get(i + 1).ok_or_else(|| usage_err("--threads needs a count"))?;
            threads = Some(
                n.parse().map_err(|_| usage_err(format!("--threads: `{n}` is not a number")))?,
            );
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, threads))
}

fn cmd_weave(args: &[String]) -> Result<(), CliError> {
    let (rest, threads) = parse_threads(args)?;
    let mut positional = Vec::new();
    let mut params: BTreeMap<String, String> = BTreeMap::new();
    for arg in &rest {
        match arg.split_once('=') {
            Some((k, v)) => {
                params.insert(k.to_owned(), v.to_owned());
            }
            None => positional.push(arg.clone()),
        }
    }
    let [model_path, concern_name] = positional.as_slice() else {
        return Err(usage_err(
            "usage: comet-cli weave <model.xmi> <concern> [k=v ...] [--threads N]",
        ));
    };
    let pair = comet_concerns::by_name(concern_name)
        .ok_or_else(|| format!("unknown concern `{concern_name}` (see `comet-cli concerns`)"))?;
    let mut model = load(model_path)?;
    let si = Wizard::for_pair(&pair).collect(&params).map_err(|e| e.to_string())?;
    let (cmt, ca) = pair.specialize(si).map_err(|e| e.to_string())?;
    cmt.apply(&mut model).map_err(|e| e.to_string())?;
    let functional = FunctionalGenerator::new().generate(&model, &BodyProvider::default());
    let weaver = Weaver::new(vec![ca]);
    let result = with_pool(threads, || weaver.weave(&functional))?.map_err(|e| e.to_string())?;
    println!(
        "wove `{}` into {} classes: {} advice applications",
        weaver.aspects()[0].name,
        result.program.classes.len(),
        result.trace.len()
    );
    for jp in &result.trace {
        println!("  {:?} at {}.{} ({:?})", jp.kind, jp.class, jp.method, jp.shadow);
    }
    Ok(())
}

/// Extracts `--faults <plan.toml>` and `--seed <N>` from `args`,
/// returning the remaining arguments and the resulting plan: the parsed
/// plan file (re-seeded when `--seed` is given), an inert seeded plan
/// for `--seed` alone, `None` when neither flag is present.
fn parse_faults(args: &[String]) -> Result<(Vec<String>, Option<FaultPlan>), CliError> {
    let mut rest = Vec::new();
    let mut plan_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--faults" => {
                plan_path = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--faults needs a path"))?.clone(),
                );
                i += 2;
            }
            "--seed" => {
                let n = args.get(i + 1).ok_or_else(|| usage_err("--seed needs a number"))?;
                seed = Some(
                    n.parse().map_err(|_| usage_err(format!("--seed: `{n}` is not a number")))?,
                );
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let plan = match plan_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut plan = FaultPlan::parse_toml(&text).map_err(|e| format!("{path}: {e}"))?;
            if let Some(s) = seed {
                plan.seed = s;
            }
            Some(plan)
        }
        None => seed.map(FaultPlan::new),
    };
    Ok((rest, plan))
}

/// Extracts `--trace <out.json>` from `args`, returning the remaining
/// arguments and the output path.
fn parse_trace(args: &[String]) -> Result<(Vec<String>, Option<String>), CliError> {
    let mut rest = Vec::new();
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            trace = Some(args.get(i + 1).ok_or_else(|| usage_err("--trace needs a path"))?.clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, trace))
}

/// Writes the collector's trace as a Chrome trace-event file.
fn write_trace(obs: &Collector, path: &str) -> Result<(), CliError> {
    let trace = obs.snapshot();
    std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "wrote trace to {path} ({} spans, {} events, {} counters) — load it in Perfetto",
        trace.spans.len(),
        trace.events.len(),
        trace.counters.len()
    );
    Ok(())
}

/// Runs the chaos harness and prints the report; `Err` when the run
/// violated the graceful-degradation contract.
fn run_chaos(
    plan: Option<FaultPlan>,
    order: FtOrder,
    transfers: Option<u32>,
    obs: &Collector,
) -> Result<(), CliError> {
    let mut cfg = ChaosConfig { order, ..ChaosConfig::default() };
    if let Some(plan) = plan {
        cfg.seed = plan.seed;
        cfg.plan = plan;
    }
    if let Some(n) = transfers {
        cfg.transfers = n;
    }
    let report = run_banking_chaos_traced(&cfg, obs).map_err(|e| e.to_string())?;
    print!("{report}");
    if report.degraded_gracefully() {
        Ok(())
    } else {
        Err("chaos run degraded ungracefully (see report above)".into())
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let (rest, plan) = parse_faults(args)?;
    let (rest, trace_path) = parse_trace(&rest)?;
    let mut order = FtOrder::FtOutsideTx;
    let mut transfers: Option<u32> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--order" => {
                order = match rest.get(i + 1).map(String::as_str) {
                    Some("ft-outside-tx") => FtOrder::FtOutsideTx,
                    Some("tx-outside-ft") => FtOrder::TxOutsideFt,
                    other => {
                        return Err(usage_err(format!(
                            "--order must be `ft-outside-tx` or `tx-outside-ft`, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--transfers" => {
                let n = rest.get(i + 1).ok_or_else(|| usage_err("--transfers needs a count"))?;
                transfers = Some(
                    n.parse()
                        .map_err(|_| usage_err(format!("--transfers: `{n}` is not a number")))?,
                );
                i += 2;
            }
            other => return Err(usage_err(format!("run: unexpected argument `{other}`"))),
        }
    }
    let obs = if trace_path.is_some() { Collector::enabled() } else { Collector::disabled() };
    let outcome = run_chaos(plan, order, transfers, &obs);
    if let Some(path) = trace_path {
        write_trace(&obs, &path)?;
    }
    outcome
}

/// The Fig. 2 demo's concern steps: distribution, transactions,
/// security, each with its `Si`, shared by `pipeline` and `metrics`.
fn fig2_steps() -> [(&'static str, ParamSet); 3] {
    [
        (
            "distribution",
            ParamSet::new()
                .with("server_class", ParamValue::from("Bank"))
                .with("node", ParamValue::from("server"))
                .with(
                    "operations",
                    ParamValue::from(vec!["transfer".to_owned(), "openAccount".to_owned()]),
                ),
        ),
        (
            "transactions",
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()])),
        ),
        (
            "security",
            ParamSet::new()
                .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()])),
        ),
    ]
}

fn cmd_pipeline(args: &[String]) -> Result<(), CliError> {
    let (rest, plan) = parse_faults(args)?;
    let (rest, threads) = parse_threads(&rest)?;
    let (rest, trace_path) = parse_trace(&rest)?;
    if !rest.is_empty() {
        return Err(usage_err(
            "usage: comet-cli pipeline [--threads N] [--faults plan.toml] [--seed N] \
             [--trace out.json]",
        ));
    }
    let obs = if trace_path.is_some() { Collector::enabled() } else { Collector::disabled() };
    // The paper's Fig. 2 demo: distribution, transactions, security
    // refined onto the sample banking PIM, then code generation +
    // weaving.
    let workflow = WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false);
    let mut mda = MdaLifecycle::new(banking_pim(), workflow).map_err(|e| e.to_string())?;
    mda.set_collector(obs.clone());
    for (name, si) in fig2_steps() {
        let pair = comet_concerns::by_name(name).expect("standard concern exists");
        let applied = mda.apply_concern(&pair, si).map_err(|e| e.to_string())?;
        println!(
            "applied {} (created {}, modified {})",
            applied.cmt.full_name(),
            applied.report.created.len(),
            applied.report.modified.len()
        );
    }
    let system = with_pool(threads, || {
        mda.generate(&BodyProvider::default(), comet::Backend::JavaFunctional)
    })?
    .map_err(|e| e.to_string())?;
    println!(
        "generated {} classes, wove {} aspects: {} advice applications",
        system.woven.classes.len(),
        system.aspect_sources.len(),
        system.weave_trace.len()
    );
    print!("{}", mda.colors());
    let chaos_outcome = if plan.is_some() {
        println!("--- chaos run ---");
        run_chaos(plan, FtOrder::FtOutsideTx, None, &obs)
    } else {
        Ok(())
    };
    if let Some(path) = trace_path {
        write_trace(&obs, &path)?;
    }
    chaos_outcome
}

/// `comet-cli generate`: runs the Fig. 2 pipeline and renders the
/// woven system through the named generation backend. The factory and
/// content-addressed cache are the same ones the serving layer drives,
/// so the artifact printed here is byte-identical to what a serving
/// tenant's `Generate` request produces at the same model state.
fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let mut backend_id: Option<String> = None;
    let mut out: Option<String> = None;
    let mut list = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let id = iter.next().ok_or_else(|| usage_err("--backend needs a value"))?;
                backend_id = Some(id.clone());
            }
            "-o" => {
                let path = iter.next().ok_or_else(|| usage_err("-o needs a path"))?;
                out = Some(path.clone());
            }
            "--list-backends" => list = true,
            other => return Err(usage_err(format!("generate: unexpected argument `{other}`"))),
        }
    }
    if list {
        let factory = comet::GeneratorFactory::with_standard_backends();
        for generator in factory.backends() {
            println!("{:<16} {}", generator.id(), generator.describe());
        }
        return Ok(());
    }
    let id = backend_id.unwrap_or_else(|| comet_serve::DEFAULT_BACKEND.to_owned());
    let backend = comet::Backend::parse(&id)
        .ok_or_else(|| usage_err(format!("unknown backend `{id}` (try --list-backends)")))?;
    let workflow = WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false);
    let mut mda = MdaLifecycle::new(banking_pim(), workflow).map_err(|e| e.to_string())?;
    for (name, si) in fig2_steps() {
        let pair = comet_concerns::by_name(name).expect("standard concern exists");
        mda.apply_concern(&pair, si).map_err(|e| e.to_string())?;
    }
    let system = mda.generate(&BodyProvider::default(), backend).map_err(|e| e.to_string())?;
    match out {
        Some(path) => {
            std::fs::write(&path, &system.artifact).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {} artifact ({} bytes) to {path}", backend, system.artifact.len());
        }
        None => print!("{}", system.artifact),
    }
    Ok(())
}

/// `comet-cli serve`: the sharded multi-tenant serving harness over the
/// banking lifecycle. Everything printed to stdout is derived from the
/// shard-count-invariant `ServeReport`/trace, so CI can diff the output
/// of `--shards 1` against `--shards 4` byte for byte.
///
/// `--data-dir DIR` journals every tenant's repository under
/// `DIR/<tenant>/` (segment store + write-ahead log); a later `serve`
/// over the same directory resumes the tenants from their journals.
/// `--kill tenant@N` (requires `--data-dir`) crashes that tenant's
/// lifecycle at its Nth request — torn journal tail included — and
/// recovers it from the log; the printed report is byte-identical to a
/// run without the kill.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut workload: Option<String> = None;
    let mut shards: usize = 1;
    let mut seed: Option<u64> = None;
    let mut faults: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut data_dir: Option<String> = None;
    let mut kill: Option<KillPoint> = None;
    let mut json = false;
    let mut metrics_path: Option<String> = None;
    let mut slo = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data-dir" => {
                data_dir = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--data-dir needs a path"))?.clone(),
                );
                i += 2;
            }
            "--kill" => {
                let spec = args.get(i + 1).ok_or_else(|| usage_err("--kill needs tenant@N"))?;
                let (tenant, at) = spec
                    .split_once('@')
                    .ok_or_else(|| usage_err(format!("--kill: `{spec}` is not tenant@N")))?;
                let at_request = at
                    .parse()
                    .map_err(|_| usage_err(format!("--kill: `{at}` is not a request number")))?;
                kill = Some(KillPoint { tenant: tenant.to_owned(), at_request });
                i += 2;
            }
            "--workload" => {
                workload = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--workload needs a path"))?.clone(),
                );
                i += 2;
            }
            "--shards" => {
                let n = args.get(i + 1).ok_or_else(|| usage_err("--shards needs a count"))?;
                shards =
                    n.parse().map_err(|_| usage_err(format!("--shards: `{n}` is not a number")))?;
                if shards == 0 {
                    return Err(usage_err("--shards must be at least 1"));
                }
                i += 2;
            }
            "--seed" => {
                let n = args.get(i + 1).ok_or_else(|| usage_err("--seed needs a number"))?;
                seed = Some(
                    n.parse().map_err(|_| usage_err(format!("--seed: `{n}` is not a number")))?,
                );
                i += 2;
            }
            "--faults" => {
                faults = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--faults needs a path"))?.clone(),
                );
                i += 2;
            }
            "--trace" => {
                trace_path =
                    Some(args.get(i + 1).ok_or_else(|| usage_err("--trace needs a path"))?.clone());
                i += 2;
            }
            "--threads" => {
                let n = args.get(i + 1).ok_or_else(|| usage_err("--threads needs a count"))?;
                threads = Some(
                    n.parse()
                        .map_err(|_| usage_err(format!("--threads: `{n}` is not a number")))?,
                );
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--metrics" => {
                metrics_path = Some(
                    args.get(i + 1).ok_or_else(|| usage_err("--metrics needs a path"))?.clone(),
                );
                i += 2;
            }
            "--slo" => {
                slo = true;
                i += 1;
            }
            other => return Err(usage_err(format!("serve: unexpected argument `{other}`"))),
        }
    }
    let mut plan = match workload {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            WorkloadPlan::parse_toml(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => WorkloadPlan::default(),
    };
    if let Some(s) = seed {
        plan.seed = s;
    }
    let fault_plan = match faults {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            Some(FaultPlan::parse_toml(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    if kill.is_some() && data_dir.is_none() {
        return Err(usage_err("--kill requires --data-dir (recovery needs a journal)"));
    }
    if slo && plan.slo.is_none() {
        return Err(usage_err("--slo requires an [slo] section in the workload plan"));
    }
    let cfg = comet_serve::RunConfig {
        traced: trace_path.is_some(),
        metrics: metrics_path.is_some() || slo,
    };
    let outcome = match &data_dir {
        None => with_pool(threads, || run_banking_serve_cfg(&plan, shards, fault_plan, &cfg))?
            .map_err(|e| e.to_string())?,
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            let (outcome, recoveries) = with_pool(threads, || {
                run_banking_serve_durable_cfg(&plan, shards, fault_plan, &cfg, &dir, kill)
            })?
            .map_err(|e| e.to_string())?;
            if recoveries > 0 {
                println!("recovered {recoveries} crashed tenant lifecycle(s) from the journal");
            }
            outcome
        }
    };
    if json {
        print!("{}", outcome.report.to_json());
    } else {
        print!("{}", outcome.report);
    }
    if let Some(path) = &metrics_path {
        let snapshot = outcome.metrics.as_ref().expect("metrics-enabled run returns a snapshot");
        let rendered =
            if path.ends_with(".json") { snapshot.to_json() } else { snapshot.to_prometheus() };
        std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote metrics to {path}");
    }
    if let Some(path) = trace_path {
        let trace = outcome.trace.expect("traced run returns a trace");
        std::fs::write(&path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote trace to {path} ({} spans, {} events, {} counters) — load it in Perfetto",
            trace.spans.len(),
            trace.events.len(),
            trace.counters.len()
        );
    }
    // Admission-gate rejections fail the run loudly: the report above
    // shows what served, but a plan that tripped the interaction matrix
    // is not a clean run.
    if outcome.report.conflicts > 0 {
        return Err(format!(
            "{} apply request(s) rejected by the interaction admission gate \
             (ServeError::Conflict)",
            outcome.report.conflicts
        )
        .into());
    }
    // `--slo` makes a burn-rate breach fail the run the same loud way.
    if slo && outcome.report.slo_breached() {
        let breached: Vec<&str> = outcome
            .report
            .slo
            .iter()
            .filter(|(_, v)| v.breached)
            .map(|(t, _)| t.as_str())
            .collect();
        return Err(format!("SLO breached for tenant(s): {}", breached.join(", ")).into());
    }
    Ok(())
}

/// `comet-cli repo fsck <dir>`: offline integrity check of durable
/// repository journals. `<dir>` is either one journal directory (it
/// contains `wal.log`) or a serve data dir whose subdirectories are
/// per-tenant journals. Replays each write-ahead log, verifies every
/// commit's snapshot bytes against its content hash in the segment
/// store, and checks branch/tag referential integrity; exits non-zero
/// when any journal is corrupt.
fn cmd_repo(args: &[String]) -> Result<(), CliError> {
    let usage = "usage: comet-cli repo fsck <data-dir>";
    match args.first().map(String::as_str) {
        Some("fsck") => {}
        Some(other) => return Err(usage_err(format!("repo: unknown subcommand `{other}`"))),
        None => return Err(usage_err(usage)),
    }
    let dir = std::path::PathBuf::from(args.get(1).ok_or_else(|| usage_err(usage))?);
    if args.len() > 2 {
        return Err(usage_err(format!("repo fsck: unexpected argument `{}`", args[2])));
    }
    let mut journals = Vec::new();
    if comet_repo::DurableRepository::exists(&dir) {
        journals.push(dir.clone());
    } else {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut dirs: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| comet_repo::DurableRepository::exists(p))
            .collect();
        dirs.sort();
        journals.extend(dirs);
    }
    if journals.is_empty() {
        return Err(format!("{}: no repository journal found", dir.display()).into());
    }
    let mut corrupt = 0usize;
    for journal in &journals {
        let report = comet_repo::DurableRepository::fsck(journal)
            .map_err(|e| format!("{}: {e}", journal.display()))?;
        println!("{}:", journal.display());
        print!("{report}");
        if !report.ok() {
            corrupt += 1;
        }
    }
    if corrupt > 0 {
        return Err(format!("{corrupt} of {} journal(s) corrupt", journals.len()).into());
    }
    println!("{} journal(s) healthy", journals.len());
    Ok(())
}

fn cmd_provenance(args: &[String]) -> Result<(), CliError> {
    let (rest, trace_path) = parse_trace(args)?;
    let [element] = rest.as_slice() else {
        return Err(usage_err("usage: comet-cli provenance <element> --trace out.json"));
    };
    let path = trace_path.ok_or_else(|| {
        usage_err(
            "provenance needs --trace <out.json> (a file written by \
             `pipeline --trace` or `run --trace`)",
        )
    })?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let index = ProvenanceIndex::build(&trace);
    match index.query(element) {
        Some(report) => print!("{report}"),
        None => {
            println!("no provenance for `{element}` in {path} ({} indexed entries)", index.len())
        }
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => return Err(usage_err(format!("metrics: unexpected argument `{other}`"))),
        }
    }
    // Same Fig. 2 pipeline as `comet-cli pipeline`, measured instead of
    // narrated: scattering/tangling of the middleware concerns over the
    // woven program (the monolithic-equivalent artifact the paper's E5
    // experiment compares against).
    let workflow = WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false);
    let mut mda = MdaLifecycle::new(banking_pim(), workflow).map_err(|e| e.to_string())?;
    for (name, si) in fig2_steps() {
        let pair = comet_concerns::by_name(name).expect("standard concern exists");
        mda.apply_concern(&pair, si).map_err(|e| e.to_string())?;
    }
    let system = mda
        .generate(&BodyProvider::default(), comet::Backend::JavaFunctional)
        .map_err(|e| e.to_string())?;
    let report = concern_metrics(&system.woven, &["net", "tx", "sec", "log", "lock"]);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(())
}

/// `comet-cli interactions`: the critical-pair interaction matrix over
/// the full standard concern library, exactly as the serving admission
/// gate computes it (same probe PIM, same serving `Si` bindings) —
/// every `commutes` cell is backed by the weave-both-orders oracle.
fn cmd_interactions(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => return Err(usage_err(format!("interactions: unexpected argument `{other}`"))),
        }
    }
    let steps: Vec<String> =
        comet_concerns::standard_pairs().iter().map(|p| p.concern().to_owned()).collect();
    let matrix = comet::serve_interaction_matrix(&steps).map_err(|e| e.to_string())?;
    if json {
        print!("{}", matrix.to_json());
    } else {
        print!("{matrix}");
    }
    Ok(())
}
