//! The banking-backed serving engine: plugs [`MdaLifecycle`] sessions
//! into the `comet-serve` substrate.
//!
//! `comet-serve` knows queues, deadlines, shards and reports;
//! this module knows what a request *does*. Each tenant gets a full
//! private stack — the executable banking PIM, an `MdaLifecycle`
//! (model + repository + workflow), and a simulated middleware platform
//! whose seed derives from the workload seed and the tenant name, so a
//! tenant behaves identically no matter which shard runs it. The
//! middleware also gives injected faults a real surface: every request
//! kind crosses one of the fault choke points before (or while)
//! touching the lifecycle, so a `FaultPlan` degrades individual
//! requests exactly the way the chaos harness degrades individual
//! transfers — and never poisons the session.
//!
//! | request    | choke point              | lifecycle work              |
//! |------------|--------------------------|-----------------------------|
//! | apply      | `tx.begin`/`tx.commit`   | `apply_concern` (CMT + Si)  |
//! | undo       | `store.load`             | `undo_last`                 |
//! | generate   | `bus.send`               | `generate` (codegen+weave)  |
//! | query      | `naming.lookup`          | `ModelIndex` reads          |
//! | snapshot   | `store.save`             | XMI export into the store   |
//!
//! Because each tenant owns a private [`MdaLifecycle`], the lifecycle's
//! incrementality caches (dirty-set weave cache, condition cache) are
//! **per-tenant automatically**: a steady-state tenant that repeats
//! `Generate` at an unchanged model revision pays one cold weave and
//! then hits the cache (`weave.incremental.hit` in the trace counters),
//! while other tenants' edits cannot invalidate it. The cached results
//! are byte-identical to full weaves, so shard-count invariance of
//! reports and traces is unaffected.

use crate::chaos::{banking_bodies, executable_banking_pim};
use crate::lifecycle::MdaLifecycle;
use comet_middleware::{FaultLog, FaultPlan, Middleware, MiddlewareConfig};
use comet_obs::Collector;
use comet_serve::{
    fnv1a64, EngineFactory, QuerySelector, Request, ServeError, TenantEngine, WorkloadPlan,
};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

/// The serving workflow every tenant starts from, in §3 precedence
/// order (application order = aspect precedence).
pub const SERVE_WORKFLOW: [&str; 3] = ["distribution", "transactions", "security"];

/// The specialisation decisions Si for a serving-workflow concern.
fn serve_si(concern: &str) -> ParamSet {
    match concern {
        "distribution" => ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with(
                "operations",
                ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]),
            ),
        "transactions" => ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("isolation", ParamValue::from("serializable")),
        "security" => ParamSet::new()
            .with("protected", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("policy", ParamValue::from("deny")),
        other => panic!("no serving Si for concern `{other}`"),
    }
}

/// A request named a concern the registry does not know.
#[derive(Debug)]
struct UnknownConcern(String);

impl std::fmt::Display for UnknownConcern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown concern `{}`", self.0)
    }
}

impl std::error::Error for UnknownConcern {}

/// One tenant's live banking session: lifecycle + middleware platform.
/// Holds `Rc`-based middleware state, so it is `!Send` by design — the
/// shard creates and drives it on a single worker thread.
pub struct BankingSession {
    mda: MdaLifecycle,
    mw: Middleware<String>,
    /// Middleware sim time already charged to earlier requests.
    charged_us: u64,
    /// Snapshots taken, for distinct store keys.
    snapshots: u64,
}

impl BankingSession {
    fn new(tenant: &str, seed: u64, fault_plan: Option<&FaultPlan>, obs: &Collector) -> Self {
        let mut workflow = WorkflowModel::new("serve");
        for step in SERVE_WORKFLOW {
            workflow = workflow.step(step, true);
        }
        let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow)
            .expect("banking PIM admits the serving workflow");
        mda.set_collector(obs.clone());
        let tenant_salt = fnv1a64(tenant.as_bytes());
        let mw: Middleware<String> = Middleware::new(MiddlewareConfig {
            seed: seed ^ tenant_salt,
            ..MiddlewareConfig::default()
        });
        mw.attach_collector(obs.clone());
        if let Some(plan) = fault_plan {
            // Same plan, tenant-distinct draws: reseed per tenant so
            // fault streams are independent but shard-invariant.
            let mut plan = plan.clone();
            plan.seed ^= tenant_salt;
            mw.install_fault_plan(plan);
        }
        let mut session = BankingSession { mda, mw, charged_us: 0, snapshots: 0 };
        session.mw.bus.add_node("client");
        session.mw.bus.add_node("server");
        session
            .mw
            .naming
            .bind("bank", "server", 1)
            .expect("fresh naming service accepts the binding");
        session.charged_us = session.mw.now_us();
        session
    }

    fn answer(&self, selector: &QuerySelector) -> u64 {
        let model = self.mda.model();
        match selector {
            QuerySelector::Classes => model.classes().len() as u64,
            QuerySelector::Stereotype(s) => model.stereotyped(s).len() as u64,
            QuerySelector::Operations(class) => {
                model.find_classifier(class).map_or(0, |id| model.operations_of(id).len() as u64)
            }
        }
    }
}

impl TenantEngine for BankingSession {
    fn execute(&mut self, req: &Request, _obs: &Collector) -> Result<String, ServeError> {
        match req {
            Request::ApplyConcern { concern, si } => {
                let pair = comet_concerns::by_name(concern)
                    .ok_or_else(|| ServeError::engine(UnknownConcern(concern.clone())))?;
                // The platform transaction brackets the refinement:
                // commit faults degrade the request before the model
                // is touched.
                let tx = self.mw.tx.begin("serializable").map_err(ServeError::engine)?;
                self.mw.tx.commit(tx).map_err(ServeError::engine)?;
                self.mda.apply_concern(&pair, si.clone()).map_err(ServeError::engine)?;
                Ok(format!("applied:{concern}"))
            }
            Request::UndoLast => {
                self.mw.store.load("model/head").map_err(ServeError::engine)?;
                self.mda.undo_last().map_err(ServeError::engine)?;
                Ok("undone".to_owned())
            }
            Request::Generate => {
                self.mw.bus.send("client", "server", 512).map_err(ServeError::engine)?;
                let system = self.mda.generate(&banking_bodies()).map_err(ServeError::engine)?;
                Ok(format!("generated:{}", system.woven.classes.len()))
            }
            Request::Query(_) => unreachable!("queries are batched via execute_queries"),
            Request::Snapshot => {
                let xmi = comet_xmi::export_model(self.mda.model());
                self.snapshots += 1;
                let key = format!("model/v{}", self.snapshots);
                self.mw.store.save(&key, xmi).map_err(ServeError::engine)?;
                self.mw.store.save("model/head", key.clone()).map_err(ServeError::engine)?;
                Ok(format!("snapshot:{key}"))
            }
        }
    }

    fn execute_queries(
        &mut self,
        selectors: &[QuerySelector],
        _obs: &Collector,
    ) -> Result<Vec<u64>, ServeError> {
        // One naming round per batch — the batching win the report's
        // `batched_queries` counter measures.
        self.mw.naming.lookup("bank").map_err(ServeError::engine)?;
        Ok(selectors.iter().map(|s| self.answer(s)).collect())
    }

    fn next_apply(&mut self) -> Option<Request> {
        let concern = self.mda.remaining_concerns().first().map(|c| (*c).to_owned())?;
        let si = serve_si(&concern);
        Some(Request::ApplyConcern { concern, si })
    }

    fn applied(&self) -> Vec<String> {
        self.mda.applied().iter().map(|a| a.cmt.concern().to_owned()).collect()
    }

    fn take_service_us(&mut self) -> u64 {
        let now = self.mw.now_us();
        let delta = now - self.charged_us;
        self.charged_us = now;
        delta
    }

    fn fault_log(&self) -> FaultLog {
        self.mw.fault_log()
    }
}

/// Creates [`BankingSession`]s for the server core.
pub struct BankingFactory {
    seed: u64,
    fault_plan: Option<FaultPlan>,
}

impl BankingFactory {
    /// A factory deriving per-tenant seeds from the workload seed, with
    /// an optional fault plan installed (reseeded) per tenant.
    pub fn new(seed: u64, fault_plan: Option<FaultPlan>) -> Self {
        BankingFactory { seed, fault_plan }
    }
}

impl EngineFactory for BankingFactory {
    type Engine = BankingSession;

    fn create(&self, tenant: &str, obs: &Collector) -> BankingSession {
        BankingSession::new(tenant, self.seed, self.fault_plan.as_ref(), obs)
    }

    fn query_pool(&self) -> Vec<QuerySelector> {
        vec![
            QuerySelector::Classes,
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_REMOTE.to_owned()),
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_TRANSACTIONAL.to_owned()),
            QuerySelector::Operations("Bank".to_owned()),
            QuerySelector::Operations("Account".to_owned()),
        ]
    }
}

/// Runs the banking workload end to end: builds the factory, shards the
/// tenants, executes, and returns the outcome. The entry point behind
/// `comet-cli serve` and the integration tests.
pub fn run_banking_serve(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    traced: bool,
) -> Result<comet_serve::ServeOutcome, ServeError> {
    let factory = BankingFactory::new(plan.seed, fault_plan);
    let core = comet_serve::ServerCore::new(plan, &factory, shards)?;
    Ok(core.run(traced))
}
