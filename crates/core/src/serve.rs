//! The banking-backed serving engine: plugs [`MdaLifecycle`] sessions
//! into the `comet-serve` substrate.
//!
//! `comet-serve` knows queues, deadlines, shards and reports;
//! this module knows what a request *does*. Each tenant gets a full
//! private stack — the executable banking PIM, an `MdaLifecycle`
//! (model + repository + workflow), and a simulated middleware platform
//! whose seed derives from the workload seed and the tenant name, so a
//! tenant behaves identically no matter which shard runs it. The
//! middleware also gives injected faults a real surface: every request
//! kind crosses one of the fault choke points before (or while)
//! touching the lifecycle, so a `FaultPlan` degrades individual
//! requests exactly the way the chaos harness degrades individual
//! transfers — and never poisons the session.
//!
//! | request    | choke point              | lifecycle work              |
//! |------------|--------------------------|-----------------------------|
//! | apply      | `tx.begin`/`tx.commit`   | `apply_concern` (CMT + Si)  |
//! | undo       | `store.load`             | `undo_last`                 |
//! | generate   | `bus.send`               | `generate` (codegen+weave)  |
//! | query      | `naming.lookup`          | `ModelIndex` reads          |
//! | snapshot   | `store.save`             | XMI export into the store   |
//!
//! Because each tenant owns a private [`MdaLifecycle`], the lifecycle's
//! incrementality caches (dirty-set weave cache, condition cache) are
//! **per-tenant automatically**: a steady-state tenant that repeats
//! `Generate` at an unchanged model revision pays one cold weave and
//! then hits the cache (`weave.incremental.hit` in the trace counters),
//! while other tenants' edits cannot invalidate it. The cached results
//! are byte-identical to full weaves, so shard-count invariance of
//! reports and traces is unaffected.

use crate::chaos::{banking_bodies, executable_banking_pim};
use crate::lifecycle::{LifecycleError, MdaLifecycle};
use comet_aspectgen::ConcernPair;
use comet_middleware::{FaultLog, FaultPlan, Middleware, MiddlewareConfig};
use comet_obs::Collector;
use comet_repo::DurableRepository;
use comet_serve::{
    fnv1a64, EngineFactory, QuerySelector, Request, ServeError, TenantEngine, WorkloadPlan,
};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The serving workflow every tenant starts from, in §3 precedence
/// order (application order = aspect precedence).
pub const SERVE_WORKFLOW: [&str; 3] = ["distribution", "transactions", "security"];

/// The serving workflow model every tenant starts from.
fn serve_workflow() -> WorkflowModel {
    let mut workflow = WorkflowModel::new("serve");
    for step in SERVE_WORKFLOW {
        workflow = workflow.step(step, true);
    }
    workflow
}

/// Maps a journalled concern name back to its pair and `Si` — the
/// resolver [`MdaLifecycle::recover`] uses to regenerate the concrete
/// aspects of a crashed tenant. The serving `Si` is a pure function of
/// the concern name, so the regenerated aspects match the pre-crash
/// ones exactly.
fn serve_resolver(concern: &str) -> Option<(ConcernPair, ParamSet)> {
    comet_concerns::by_name(concern).map(|pair| (pair, serve_si(concern)))
}

/// The specialisation decisions Si for a serving-workflow concern.
fn serve_si(concern: &str) -> ParamSet {
    match concern {
        "distribution" => ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with(
                "operations",
                ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]),
            ),
        "transactions" => ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("isolation", ParamValue::from("serializable")),
        "security" => ParamSet::new()
            .with("protected", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("policy", ParamValue::from("deny")),
        other => panic!("no serving Si for concern `{other}`"),
    }
}

/// A request named a concern the registry does not know.
#[derive(Debug)]
struct UnknownConcern(String);

impl std::fmt::Display for UnknownConcern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown concern `{}`", self.0)
    }
}

impl std::error::Error for UnknownConcern {}

/// A deterministic crash instruction for the serving harness: the named
/// tenant's lifecycle dies at the start of its `at_request`-th request
/// (1-based, counting both executes and query batches), leaving a torn
/// write-ahead-log tail, and is rebuilt from the journal before the
/// request then executes normally. One-shot: each tenant crashes at
/// most once per run.
#[derive(Debug, Clone)]
pub struct KillPoint {
    /// The tenant to crash.
    pub tenant: String,
    /// 1-based request ordinal at which the crash fires.
    pub at_request: u64,
}

/// One tenant's live banking session: lifecycle + middleware platform.
/// Holds `Rc`-based middleware state, so it is `!Send` by design — the
/// shard creates and drives it on a single worker thread.
pub struct BankingSession {
    mda: MdaLifecycle,
    mw: Middleware<String>,
    /// Middleware sim time already charged to earlier requests.
    charged_us: u64,
    /// Snapshots taken, for distinct store keys.
    snapshots: u64,
    /// The session's collector, kept to re-attach after a recovery.
    obs: Collector,
    /// This tenant's journal directory (durable mode only).
    data_dir: Option<PathBuf>,
    /// Pending one-shot kill: crash at the start of this request.
    kill_at: Option<u64>,
    /// Requests seen so far (executes + query batches).
    requests_seen: u64,
    /// Run-wide recovery counter, shared with the factory.
    recoveries: Arc<AtomicU64>,
}

impl BankingSession {
    fn new(
        tenant: &str,
        seed: u64,
        fault_plan: Option<&FaultPlan>,
        obs: &Collector,
        data_dir: Option<PathBuf>,
        kill_at: Option<u64>,
        recoveries: Arc<AtomicU64>,
    ) -> Self {
        let mut mda = match &data_dir {
            None => MdaLifecycle::new(executable_banking_pim(), serve_workflow())
                .expect("banking PIM admits the serving workflow"),
            // A journal already present means a previous run (or a
            // previous process) served this tenant: resume from it
            // instead of starting over.
            Some(dir) if DurableRepository::exists(dir) => {
                MdaLifecycle::recover(dir, serve_workflow(), serve_resolver)
                    .expect("journalled tenant state recovers")
                    .0
            }
            Some(dir) => MdaLifecycle::new_durable(executable_banking_pim(), serve_workflow(), dir)
                .expect("tenant journal directory is writable"),
        };
        mda.set_collector(obs.clone());
        let tenant_salt = fnv1a64(tenant.as_bytes());
        let mw: Middleware<String> = Middleware::new(MiddlewareConfig {
            seed: seed ^ tenant_salt,
            ..MiddlewareConfig::default()
        });
        mw.attach_collector(obs.clone());
        if let Some(plan) = fault_plan {
            // Same plan, tenant-distinct draws: reseed per tenant so
            // fault streams are independent but shard-invariant.
            let mut plan = plan.clone();
            plan.seed ^= tenant_salt;
            mw.install_fault_plan(plan);
        }
        let mut session = BankingSession {
            mda,
            mw,
            charged_us: 0,
            snapshots: 0,
            obs: obs.clone(),
            data_dir,
            kill_at,
            requests_seen: 0,
            recoveries,
        };
        session.mw.bus.add_node("client");
        session.mw.bus.add_node("server");
        session
            .mw
            .naming
            .bind("bank", "server", 1)
            .expect("fresh naming service accepts the binding");
        session.charged_us = session.mw.now_us();
        session
    }

    /// Counts a request and, if the kill point fires here, crashes and
    /// recovers the lifecycle before the request runs.
    fn tick(&mut self) -> Result<(), ServeError> {
        self.requests_seen += 1;
        if self.kill_at == Some(self.requests_seen) {
            self.kill_at = None;
            self.crash_and_recover().map_err(ServeError::engine)?;
        }
        Ok(())
    }

    /// The simulated crash: the lifecycle process dies mid-append —
    /// its in-memory state is dropped and the journal gets a torn tail
    /// — while the middleware platform (the tenant's environment:
    /// clock, RNG, fault counters, document store) stays up. Recovery
    /// replays the write-ahead log to the last committed operation and
    /// rebuilds the lifecycle from it; the snapshot counter is
    /// recounted from the surviving store instead of trusted from the
    /// dead session. Recovery itself touches neither the middleware
    /// nor the trace, so a recovered run is byte-identical to an
    /// uninterrupted one.
    fn crash_and_recover(&mut self) -> Result<(), LifecycleError> {
        let dir = self
            .data_dir
            .as_ref()
            .ok_or_else(|| LifecycleError::Recovery("kill points require a data dir".to_owned()))?;
        DurableRepository::simulate_torn_tail(dir)?;
        let (mut mda, _report) = MdaLifecycle::recover(dir, serve_workflow(), serve_resolver)?;
        mda.set_collector(self.obs.clone());
        self.mda = mda;
        self.snapshots =
            self.mw.store.keys().iter().filter(|k| k.starts_with("model/v")).count() as u64;
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn answer(&self, selector: &QuerySelector) -> u64 {
        let model = self.mda.model();
        match selector {
            QuerySelector::Classes => model.classes().len() as u64,
            QuerySelector::Stereotype(s) => model.stereotyped(s).len() as u64,
            QuerySelector::Operations(class) => {
                model.find_classifier(class).map_or(0, |id| model.operations_of(id).len() as u64)
            }
        }
    }
}

impl TenantEngine for BankingSession {
    fn execute(&mut self, req: &Request, _obs: &Collector) -> Result<String, ServeError> {
        self.tick()?;
        match req {
            Request::ApplyConcern { concern, si } => {
                let pair = comet_concerns::by_name(concern)
                    .ok_or_else(|| ServeError::engine(UnknownConcern(concern.clone())))?;
                // The platform transaction brackets the refinement:
                // commit faults degrade the request before the model
                // is touched.
                let tx = self.mw.tx.begin("serializable").map_err(ServeError::engine)?;
                self.mw.tx.commit(tx).map_err(ServeError::engine)?;
                self.mda.apply_concern(&pair, si.clone()).map_err(ServeError::engine)?;
                Ok(format!("applied:{concern}"))
            }
            Request::UndoLast => {
                self.mw.store.load("model/head").map_err(ServeError::engine)?;
                self.mda.undo_last().map_err(ServeError::engine)?;
                Ok("undone".to_owned())
            }
            Request::Generate => {
                self.mw.bus.send("client", "server", 512).map_err(ServeError::engine)?;
                let system = self.mda.generate(&banking_bodies()).map_err(ServeError::engine)?;
                Ok(format!("generated:{}", system.woven.classes.len()))
            }
            Request::Query(_) => unreachable!("queries are batched via execute_queries"),
            Request::Snapshot => {
                let xmi = comet_xmi::export_model(self.mda.model());
                self.snapshots += 1;
                let key = format!("model/v{}", self.snapshots);
                self.mw.store.save(&key, xmi).map_err(ServeError::engine)?;
                self.mw.store.save("model/head", key.clone()).map_err(ServeError::engine)?;
                Ok(format!("snapshot:{key}"))
            }
        }
    }

    fn execute_queries(
        &mut self,
        selectors: &[QuerySelector],
        _obs: &Collector,
    ) -> Result<Vec<u64>, ServeError> {
        self.tick()?;
        // One naming round per batch — the batching win the report's
        // `batched_queries` counter measures.
        self.mw.naming.lookup("bank").map_err(ServeError::engine)?;
        Ok(selectors.iter().map(|s| self.answer(s)).collect())
    }

    fn next_apply(&mut self) -> Option<Request> {
        let concern = self.mda.remaining_concerns().first().map(|c| (*c).to_owned())?;
        let si = serve_si(&concern);
        Some(Request::ApplyConcern { concern, si })
    }

    fn applied(&self) -> Vec<String> {
        self.mda.applied().iter().map(|a| a.cmt.concern().to_owned()).collect()
    }

    fn take_service_us(&mut self) -> u64 {
        let now = self.mw.now_us();
        let delta = now - self.charged_us;
        self.charged_us = now;
        delta
    }

    fn fault_log(&self) -> FaultLog {
        self.mw.fault_log()
    }
}

/// Creates [`BankingSession`]s for the server core.
pub struct BankingFactory {
    seed: u64,
    fault_plan: Option<FaultPlan>,
    data_dir: Option<PathBuf>,
    kill: Option<KillPoint>,
    recoveries: Arc<AtomicU64>,
}

impl BankingFactory {
    /// A factory deriving per-tenant seeds from the workload seed, with
    /// an optional fault plan installed (reseeded) per tenant.
    pub fn new(seed: u64, fault_plan: Option<FaultPlan>) -> Self {
        BankingFactory {
            seed,
            fault_plan,
            data_dir: None,
            kill: None,
            recoveries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Journals every tenant's repository under `dir` (one
    /// subdirectory per tenant). Tenants whose journal already exists
    /// resume from it.
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Arms a deterministic crash (requires a data dir).
    pub fn with_kill(mut self, kill: KillPoint) -> Self {
        self.kill = Some(kill);
        self
    }

    /// The shared counter of recoveries performed during the run.
    pub fn recoveries(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.recoveries)
    }
}

impl EngineFactory for BankingFactory {
    type Engine = BankingSession;

    fn create(&self, tenant: &str, obs: &Collector) -> BankingSession {
        let data_dir = self.data_dir.as_ref().map(|d| d.join(tenant));
        let kill_at = self.kill.as_ref().filter(|k| k.tenant == tenant).map(|k| k.at_request);
        BankingSession::new(
            tenant,
            self.seed,
            self.fault_plan.as_ref(),
            obs,
            data_dir,
            kill_at,
            Arc::clone(&self.recoveries),
        )
    }

    fn query_pool(&self) -> Vec<QuerySelector> {
        vec![
            QuerySelector::Classes,
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_REMOTE.to_owned()),
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_TRANSACTIONAL.to_owned()),
            QuerySelector::Operations("Bank".to_owned()),
            QuerySelector::Operations("Account".to_owned()),
        ]
    }
}

/// Runs the banking workload end to end: builds the factory, shards the
/// tenants, executes, and returns the outcome. The entry point behind
/// `comet-cli serve` and the integration tests.
pub fn run_banking_serve(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    traced: bool,
) -> Result<comet_serve::ServeOutcome, ServeError> {
    let factory = BankingFactory::new(plan.seed, fault_plan);
    let core = comet_serve::ServerCore::new(plan, &factory, shards)?;
    Ok(core.run(traced))
}

/// [`run_banking_serve`] with every tenant's repository journalled
/// under `data_dir` and an optional deterministic crash armed. Returns
/// the outcome plus the number of crash recoveries performed; a
/// recovered run's report and trace are byte-identical to the same run
/// without the kill.
///
/// # Errors
/// Propagates plan validation failures from the server core.
pub fn run_banking_serve_durable(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    traced: bool,
    data_dir: &Path,
    kill: Option<KillPoint>,
) -> Result<(comet_serve::ServeOutcome, u64), ServeError> {
    let mut factory = BankingFactory::new(plan.seed, fault_plan).with_data_dir(data_dir);
    if let Some(kill) = kill {
        factory = factory.with_kill(kill);
    }
    let recoveries = factory.recoveries();
    let core = comet_serve::ServerCore::new(plan, &factory, shards)?;
    let outcome = core.run(traced);
    Ok((outcome, recoveries.load(Ordering::Relaxed)))
}
