//! The banking-backed serving engine: plugs [`MdaLifecycle`] sessions
//! into the `comet-serve` substrate.
//!
//! `comet-serve` knows queues, deadlines, shards and reports;
//! this module knows what a request *does*. Each tenant gets a full
//! private stack — the executable banking PIM, an `MdaLifecycle`
//! (model + repository + workflow), and a simulated middleware platform
//! whose seed derives from the workload seed and the tenant name, so a
//! tenant behaves identically no matter which shard runs it. The
//! middleware also gives injected faults a real surface: every request
//! kind crosses one of the fault choke points before (or while)
//! touching the lifecycle, so a `FaultPlan` degrades individual
//! requests exactly the way the chaos harness degrades individual
//! transfers — and never poisons the session.
//!
//! | request    | choke point              | lifecycle work              |
//! |------------|--------------------------|-----------------------------|
//! | apply      | `tx.begin`/`tx.commit`   | `apply_concern` (CMT + Si)  |
//! | undo       | `store.load`             | `undo_last`                 |
//! | generate   | `bus.send`               | `generate` (backend render) |
//! | query      | `naming.lookup`          | `ModelIndex` reads          |
//! | snapshot   | `store.save`             | XMI export into the store   |
//!
//! Because each tenant owns a private [`MdaLifecycle`], the lifecycle's
//! incrementality caches (dirty-set weave cache, condition cache, and
//! the content-addressed generation cache behind the generator
//! factory) are **per-tenant automatically**: a steady-state tenant
//! that repeats `Generate` at an unchanged model revision pays one
//! cold weave + render and then hits both caches
//! (`weave.incremental.hit` / `gen.cache.hit` in the trace counters,
//! `comet_serve_gen_cache_hits_total` in the metrics exposition),
//! while other tenants' edits cannot invalidate them. The cached
//! results are byte-identical to full weaves and cold renders, so
//! shard-count invariance of reports and traces is unaffected.

use crate::chaos::{banking_bodies, executable_banking_pim};
use crate::lifecycle::{LifecycleError, MdaLifecycle};
use comet_aspectgen::ConcernPair;
use comet_interaction::{build_matrix, pair_key, InteractionMatrix};
use comet_middleware::{FaultLog, FaultPlan, Middleware, MiddlewareConfig};
use comet_obs::Collector;
use comet_repo::DurableRepository;
use comet_serve::{
    fnv1a64, EngineFactory, QuerySelector, Request, RunConfig, ServeError, TenantEngine,
    WorkloadPlan, WorkloadPlanError,
};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The default serving workflow, in §3 precedence order (application
/// order = aspect precedence). A workload plan's `[workflow]` section
/// overrides it per run.
pub const SERVE_WORKFLOW: [&str; 3] = ["distribution", "transactions", "security"];

/// Maps a journalled concern name back to its pair and `Si` — the
/// resolver [`MdaLifecycle::recover`] uses to regenerate the concrete
/// aspects of a crashed tenant. The serving `Si` is a pure function of
/// the concern name, so the regenerated aspects match the pre-crash
/// ones exactly.
fn serve_resolver(concern: &str) -> Option<(ConcernPair, ParamSet)> {
    comet_concerns::by_name(concern).zip(serve_si(concern))
}

/// The specialisation decisions Si binding each standard concern to the
/// executable banking PIM (`Bank.transfer` / `Bank.getBalance`), or
/// `None` for a concern with no serving binding. The concurrency and
/// fault-tolerance bindings deliberately meet on `Bank.getBalance`
/// («Synchronized» × «Retryable») — the standard matrix's `Conflicts`
/// cell, which the admission gate turns into typed rejections.
fn serve_si(concern: &str) -> Option<ParamSet> {
    let si = match concern {
        "distribution" => ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with(
                "operations",
                ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]),
            ),
        "transactions" => ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("isolation", ParamValue::from("serializable")),
        "security" => ParamSet::new()
            .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]))
            .with("policy", ParamValue::from("deny")),
        "logging" => ParamSet::new()
            .with("targets", ParamValue::from(vec!["Bank.transfer".to_owned()]))
            .with("level", ParamValue::from("info")),
        "concurrency" => ParamSet::new().with(
            "methods",
            ParamValue::from(vec!["Bank.transfer".to_owned(), "Bank.getBalance".to_owned()]),
        ),
        "persistence" => ParamSet::new()
            .with("class", ParamValue::from("Bank"))
            .with("key_attr", ParamValue::from("a1"))
            .with("mutators", ParamValue::from(vec!["transfer".to_owned()])),
        "faulttolerance" => ParamSet::new()
            .with(
                "methods",
                ParamValue::from(vec!["Bank.transfer".to_owned(), "Bank.getBalance".to_owned()]),
            )
            .with("idempotent", ParamValue::from(vec!["Bank.getBalance".to_owned()])),
        _ => return None,
    };
    Some(si)
}

/// Builds the interaction matrix for a serving workflow: every step's
/// `(ConcernPair, Si)` binding is footprinted on the executable banking
/// PIM and pairwise critical-pair analysed (with the weave-both-orders
/// oracle backing each `Commutes` verdict). The entry point behind
/// `comet-cli interactions`.
///
/// # Errors
/// Returns a plan error when a step names an unknown concern, has no
/// serving `Si`, or fails the probe weave.
pub fn serve_interaction_matrix(steps: &[String]) -> Result<InteractionMatrix, ServeError> {
    let mut bindings = Vec::new();
    for step in steps {
        let pair = comet_concerns::by_name(step)
            .ok_or_else(|| ServeError::Plan(WorkloadPlanError::UnknownConcern(step.clone())))?;
        let si = serve_si(step).ok_or_else(|| {
            ServeError::Plan(WorkloadPlanError::BadConcern {
                concern: step.clone(),
                detail: "no serving Si binding".to_owned(),
            })
        })?;
        bindings.push((pair, si));
    }
    build_matrix(&executable_banking_pim(), &banking_bodies(), &bindings).map_err(|e| {
        ServeError::Plan(WorkloadPlanError::Invalid(format!("interaction analysis: {e}")))
    })
}

/// The per-run serving profile, computed once by the factory and shared
/// by every tenant session: the workflow model (with the matrix's
/// `OrderSensitive` cells ingested as auto-derived `Before`
/// constraints) and the conflict table the admission gate consults.
///
/// `Conflicts` cells deliberately do **not** become workflow
/// constraints — a `MutuallyExclusive` constraint would make
/// `next_apply` silently skip the clashing step, and the gate's typed
/// rejection must stay loud.
struct ServeProfile {
    /// The interaction-constrained workflow every tenant starts from.
    workflow: WorkflowModel,
    /// `pair_key(a, b)` → evidence, one entry per `Conflicts` cell.
    conflicts: BTreeMap<(String, String), String>,
}

/// Runs interaction analysis over `steps` and assembles the profile.
fn serve_profile(steps: &[String]) -> Result<Arc<ServeProfile>, ServeError> {
    let matrix = serve_interaction_matrix(steps)?;
    let mut workflow = WorkflowModel::new("serve");
    for step in steps {
        workflow = workflow.step(step, true);
    }
    let workflow = matrix.constrain(workflow);
    workflow.validate().map_err(|e| {
        ServeError::Plan(WorkloadPlanError::Invalid(format!("derived workflow: {e}")))
    })?;
    let conflicts = matrix
        .conflicts()
        .into_iter()
        .map(|(a, b, evidence)| (pair_key(&a, &b), evidence))
        .collect();
    Ok(Arc::new(ServeProfile { workflow, conflicts }))
}

/// The default-workflow steps as owned strings.
fn default_steps() -> Vec<String> {
    SERVE_WORKFLOW.iter().map(|s| (*s).to_owned()).collect()
}

/// The steps a plan asks for: its `[workflow]` section, or the default.
fn effective_steps(plan: &WorkloadPlan) -> Vec<String> {
    if plan.workflow.is_empty() {
        default_steps()
    } else {
        plan.workflow.clone()
    }
}

/// A request named a concern the registry does not know.
#[derive(Debug)]
struct UnknownConcern(String);

impl std::fmt::Display for UnknownConcern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown concern `{}`", self.0)
    }
}

impl std::error::Error for UnknownConcern {}

/// A deterministic crash instruction for the serving harness: the named
/// tenant's lifecycle dies at the start of its `at_request`-th request
/// (1-based, counting both executes and query batches), leaving a torn
/// write-ahead-log tail, and is rebuilt from the journal before the
/// request then executes normally. One-shot: each tenant crashes at
/// most once per run.
#[derive(Debug, Clone)]
pub struct KillPoint {
    /// The tenant to crash.
    pub tenant: String,
    /// 1-based request ordinal at which the crash fires.
    pub at_request: u64,
}

/// One tenant's live banking session: lifecycle + middleware platform.
/// Holds `Rc`-based middleware state, so it is `!Send` by design — the
/// shard creates and drives it on a single worker thread.
pub struct BankingSession {
    mda: MdaLifecycle,
    mw: Middleware<String>,
    /// The run's shared workflow + conflict-table profile.
    profile: Arc<ServeProfile>,
    /// Conflicting concerns already offered once by `next_apply` — each
    /// is surfaced exactly once (so the typed rejection lands in the
    /// report) and skipped thereafter (so the rest of the plan serves).
    conflict_reported: BTreeSet<String>,
    /// Middleware sim time already charged to earlier requests.
    charged_us: u64,
    /// Snapshots taken, for distinct store keys.
    snapshots: u64,
    /// The session's collector, kept to re-attach after a recovery.
    obs: Collector,
    /// This tenant's journal directory (durable mode only).
    data_dir: Option<PathBuf>,
    /// Pending one-shot kill: crash at the start of this request.
    kill_at: Option<u64>,
    /// Requests seen so far (executes + query batches).
    requests_seen: u64,
    /// Run-wide recovery counter, shared with the factory.
    recoveries: Arc<AtomicU64>,
}

impl BankingSession {
    fn new(factory: &BankingFactory, tenant: &str, obs: &Collector) -> Self {
        let profile = Arc::clone(&factory.profile);
        let data_dir = factory.data_dir.as_ref().map(|d| d.join(tenant));
        let kill_at = factory.kill.as_ref().filter(|k| k.tenant == tenant).map(|k| k.at_request);
        let workflow = profile.workflow.clone();
        let mut mda = match &data_dir {
            None => MdaLifecycle::new(executable_banking_pim(), workflow)
                .expect("banking PIM admits the serving workflow"),
            // A journal already present means a previous run (or a
            // previous process) served this tenant: resume from it
            // instead of starting over.
            Some(dir) if DurableRepository::exists(dir) => {
                MdaLifecycle::recover(dir, workflow, serve_resolver)
                    .expect("journalled tenant state recovers")
                    .0
            }
            Some(dir) => MdaLifecycle::new_durable(executable_banking_pim(), workflow, dir)
                .expect("tenant journal directory is writable"),
        };
        mda.set_collector(obs.clone());
        let tenant_salt = fnv1a64(tenant.as_bytes());
        let mw: Middleware<String> = Middleware::new(MiddlewareConfig {
            seed: factory.seed ^ tenant_salt,
            ..MiddlewareConfig::default()
        });
        mw.attach_collector(obs.clone());
        if let Some(plan) = factory.fault_plan.as_ref() {
            // Same plan, tenant-distinct draws: reseed per tenant so
            // fault streams are independent but shard-invariant.
            let mut plan = plan.clone();
            plan.seed ^= tenant_salt;
            mw.install_fault_plan(plan);
        }
        let mut session = BankingSession {
            mda,
            mw,
            profile,
            conflict_reported: BTreeSet::new(),
            charged_us: 0,
            snapshots: 0,
            obs: obs.clone(),
            data_dir,
            kill_at,
            requests_seen: 0,
            recoveries: Arc::clone(&factory.recoveries),
        };
        session.mw.bus.add_node("client");
        session.mw.bus.add_node("server");
        session
            .mw
            .naming
            .bind("bank", "server", 1)
            .expect("fresh naming service accepts the binding");
        session.charged_us = session.mw.now_us();
        session
    }

    /// Counts a request and, if the kill point fires here, crashes and
    /// recovers the lifecycle before the request runs.
    fn tick(&mut self) -> Result<(), ServeError> {
        self.requests_seen += 1;
        if self.kill_at == Some(self.requests_seen) {
            self.kill_at = None;
            self.crash_and_recover().map_err(ServeError::engine)?;
        }
        Ok(())
    }

    /// The simulated crash: the lifecycle process dies mid-append —
    /// its in-memory state is dropped and the journal gets a torn tail
    /// — while the middleware platform (the tenant's environment:
    /// clock, RNG, fault counters, document store) stays up. Recovery
    /// replays the write-ahead log to the last committed operation and
    /// rebuilds the lifecycle from it; the snapshot counter is
    /// recounted from the surviving store instead of trusted from the
    /// dead session. Recovery itself touches neither the middleware
    /// nor the trace, so a recovered run is byte-identical to an
    /// uninterrupted one.
    fn crash_and_recover(&mut self) -> Result<(), LifecycleError> {
        let dir = self
            .data_dir
            .as_ref()
            .ok_or_else(|| LifecycleError::Recovery("kill points require a data dir".to_owned()))?;
        DurableRepository::simulate_torn_tail(dir)?;
        let (mut mda, _report) =
            MdaLifecycle::recover(dir, self.profile.workflow.clone(), serve_resolver)?;
        mda.set_collector(self.obs.clone());
        self.mda = mda;
        self.snapshots =
            self.mw.store.keys().iter().filter(|k| k.starts_with("model/v")).count() as u64;
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Looks `concern` up against every already-applied concern in the
    /// profile's conflict table. Returns the clashing applied concern
    /// and the matrix evidence — an O(applied) walk over O(1) table
    /// lookups, the hot path of the admission gate.
    fn conflict_with_applied(&self, concern: &str) -> Option<(String, String)> {
        for done in self.mda.applied() {
            let other = done.cmt.concern();
            if let Some(evidence) = self.profile.conflicts.get(&pair_key(other, concern)) {
                return Some((other.to_owned(), evidence.clone()));
            }
        }
        None
    }

    fn answer(&self, selector: &QuerySelector) -> u64 {
        let model = self.mda.model();
        match selector {
            QuerySelector::Classes => model.classes().len() as u64,
            QuerySelector::Stereotype(s) => model.stereotyped(s).len() as u64,
            QuerySelector::Operations(class) => {
                model.find_classifier(class).map_or(0, |id| model.operations_of(id).len() as u64)
            }
        }
    }
}

impl TenantEngine for BankingSession {
    fn execute(&mut self, req: &Request, _obs: &Collector) -> Result<String, ServeError> {
        self.tick()?;
        match req {
            Request::ApplyConcern { concern, si } => {
                // Critical-pair admission gate: a concern the matrix
                // proved incompatible with one already applied is
                // rejected here, before the platform transaction and
                // before any model mutation.
                if let Some((applied, evidence)) = self.conflict_with_applied(concern) {
                    return Err(ServeError::Conflict { a: applied, b: concern.clone(), evidence });
                }
                let pair = comet_concerns::by_name(concern)
                    .ok_or_else(|| ServeError::engine(UnknownConcern(concern.clone())))?;
                // The platform transaction brackets the refinement:
                // commit faults degrade the request before the model
                // is touched.
                let tx = self.mw.tx.begin("serializable").map_err(ServeError::engine)?;
                self.mw.tx.commit(tx).map_err(ServeError::engine)?;
                self.mda.apply_concern(&pair, si.clone()).map_err(ServeError::engine)?;
                Ok(format!("applied:{concern}"))
            }
            Request::UndoLast => {
                self.mw.store.load("model/head").map_err(ServeError::engine)?;
                self.mda.undo_last().map_err(ServeError::engine)?;
                Ok("undone".to_owned())
            }
            Request::Generate { backend } => {
                let be = comet_gen::Backend::parse(backend)
                    .ok_or_else(|| ServeError::UnknownBackend(backend.clone()))?;
                self.mw.bus.send("client", "server", 512).map_err(ServeError::engine)?;
                let system =
                    self.mda.generate(&banking_bodies(), be).map_err(ServeError::engine)?;
                Ok(format!("generated:{backend}:{}", system.woven.classes.len()))
            }
            Request::Query(_) => unreachable!("queries are batched via execute_queries"),
            Request::Snapshot => {
                let xmi = comet_xmi::export_model(self.mda.model());
                self.snapshots += 1;
                let key = format!("model/v{}", self.snapshots);
                self.mw.store.save(&key, xmi).map_err(ServeError::engine)?;
                self.mw.store.save("model/head", key.clone()).map_err(ServeError::engine)?;
                Ok(format!("snapshot:{key}"))
            }
        }
    }

    fn execute_queries(
        &mut self,
        selectors: &[QuerySelector],
        _obs: &Collector,
    ) -> Result<Vec<u64>, ServeError> {
        self.tick()?;
        // One naming round per batch — the batching win the report's
        // `batched_queries` counter measures.
        self.mw.naming.lookup("bank").map_err(ServeError::engine)?;
        Ok(selectors.iter().map(|s| self.answer(s)).collect())
    }

    fn next_apply(&mut self) -> Option<Request> {
        let allowed: Vec<String> =
            self.mda.workflow().allowed_next().iter().map(|c| (*c).to_owned()).collect();
        for concern in allowed {
            // A conflict-blocked step is offered exactly once — the
            // gate's typed rejection must surface in the report — and
            // skipped on every later draw so the remaining steps serve.
            if self.conflict_with_applied(&concern).is_some()
                && !self.conflict_reported.insert(concern.clone())
            {
                continue;
            }
            let si = serve_si(&concern).expect("planned concern has a serving Si");
            return Some(Request::ApplyConcern { concern, si });
        }
        None
    }

    fn applied(&self) -> Vec<String> {
        self.mda.applied().iter().map(|a| a.cmt.concern().to_owned()).collect()
    }

    fn take_service_us(&mut self) -> u64 {
        let now = self.mw.now_us();
        let delta = now - self.charged_us;
        self.charged_us = now;
        delta
    }

    fn fault_log(&self) -> FaultLog {
        self.mw.fault_log()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let (hits, misses) = self.mda.weave_cache_stats();
        let (gen_hits, gen_misses) = self.mda.gen_cache_stats();
        vec![
            ("weave_cache_hits", hits),
            ("weave_cache_misses", misses),
            ("gen_cache_hits", gen_hits),
            ("gen_cache_misses", gen_misses),
            ("wal_fsyncs", self.mda.wal_fsyncs()),
        ]
    }
}

/// Creates [`BankingSession`]s for the server core. Construction runs
/// interaction analysis over the workflow steps once; every session
/// shares the resulting [`ServeProfile`].
pub struct BankingFactory {
    seed: u64,
    fault_plan: Option<FaultPlan>,
    profile: Arc<ServeProfile>,
    data_dir: Option<PathBuf>,
    kill: Option<KillPoint>,
    recoveries: Arc<AtomicU64>,
}

impl BankingFactory {
    /// A factory deriving per-tenant seeds from the workload seed, with
    /// an optional fault plan installed (reseeded) per tenant, serving
    /// the default [`SERVE_WORKFLOW`].
    pub fn new(seed: u64, fault_plan: Option<FaultPlan>) -> Self {
        Self::with_steps(seed, fault_plan, &default_steps())
            .expect("the default serving workflow passes interaction analysis")
    }

    /// A factory serving `steps` instead of the default workflow.
    ///
    /// # Errors
    /// Fails when a step names an unknown concern, has no serving `Si`,
    /// or interaction analysis rejects the workflow.
    pub fn with_steps(
        seed: u64,
        fault_plan: Option<FaultPlan>,
        steps: &[String],
    ) -> Result<Self, ServeError> {
        Ok(BankingFactory {
            seed,
            fault_plan,
            profile: serve_profile(steps)?,
            data_dir: None,
            kill: None,
            recoveries: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Journals every tenant's repository under `dir` (one
    /// subdirectory per tenant). Tenants whose journal already exists
    /// resume from it.
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Arms a deterministic crash (requires a data dir).
    pub fn with_kill(mut self, kill: KillPoint) -> Self {
        self.kill = Some(kill);
        self
    }

    /// The shared counter of recoveries performed during the run.
    pub fn recoveries(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.recoveries)
    }
}

impl EngineFactory for BankingFactory {
    type Engine = BankingSession;

    fn create(&self, tenant: &str, obs: &Collector) -> BankingSession {
        BankingSession::new(self, tenant, obs)
    }

    fn query_pool(&self) -> Vec<QuerySelector> {
        vec![
            QuerySelector::Classes,
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_REMOTE.to_owned()),
            QuerySelector::Stereotype(comet_codegen::marks::STEREO_TRANSACTIONAL.to_owned()),
            QuerySelector::Operations("Bank".to_owned()),
            QuerySelector::Operations("Account".to_owned()),
        ]
    }
}

/// Runs the banking workload end to end: validates the plan's workflow
/// steps against the concern registry, builds the factory (which runs
/// interaction analysis once), shards the tenants, executes, and
/// returns the outcome. The entry point behind `comet-cli serve` and
/// the integration tests.
pub fn run_banking_serve(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    traced: bool,
) -> Result<comet_serve::ServeOutcome, ServeError> {
    run_banking_serve_cfg(plan, shards, fault_plan, &RunConfig { traced, metrics: false })
}

/// [`run_banking_serve`] with explicit collection switches
/// ([`RunConfig`]): tracing and/or metrics.
///
/// # Errors
/// Propagates plan validation failures from the server core.
pub fn run_banking_serve_cfg(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    cfg: &RunConfig,
) -> Result<comet_serve::ServeOutcome, ServeError> {
    plan.validate_concerns(|c| comet_concerns::by_name(c).is_some())?;
    plan.validate_backends(|b| comet_gen::Backend::parse(b).is_some())?;
    let factory = BankingFactory::with_steps(plan.seed, fault_plan, &effective_steps(plan))?;
    let core = comet_serve::ServerCore::new(plan, &factory, shards)?;
    Ok(core.run_with(cfg))
}

/// [`run_banking_serve`] with every tenant's repository journalled
/// under `data_dir` and an optional deterministic crash armed. Returns
/// the outcome plus the number of crash recoveries performed; a
/// recovered run's report and trace are byte-identical to the same run
/// without the kill.
///
/// # Errors
/// Propagates plan validation failures from the server core.
pub fn run_banking_serve_durable(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    traced: bool,
    data_dir: &Path,
    kill: Option<KillPoint>,
) -> Result<(comet_serve::ServeOutcome, u64), ServeError> {
    run_banking_serve_durable_cfg(
        plan,
        shards,
        fault_plan,
        &RunConfig { traced, metrics: false },
        data_dir,
        kill,
    )
}

/// [`run_banking_serve_durable`] with explicit collection switches
/// ([`RunConfig`]): tracing and/or metrics.
///
/// # Errors
/// Propagates plan validation failures from the server core.
pub fn run_banking_serve_durable_cfg(
    plan: &WorkloadPlan,
    shards: usize,
    fault_plan: Option<FaultPlan>,
    cfg: &RunConfig,
    data_dir: &Path,
    kill: Option<KillPoint>,
) -> Result<(comet_serve::ServeOutcome, u64), ServeError> {
    plan.validate_concerns(|c| comet_concerns::by_name(c).is_some())?;
    plan.validate_backends(|b| comet_gen::Backend::parse(b).is_some())?;
    let mut factory = BankingFactory::with_steps(plan.seed, fault_plan, &effective_steps(plan))?
        .with_data_dir(data_dir);
    if let Some(kill) = kill {
        factory = factory.with_kill(kill);
    }
    let recoveries = factory.recoveries();
    let core = comet_serve::ServerCore::new(plan, &factory, shards)?;
    let outcome = core.run_with(cfg);
    Ok((outcome, recoveries.load(Ordering::Relaxed)))
}
