//! Shipping strategies — the paper's open packaging question, answered
//! both ways:
//!
//! > *"Should we ship only the last, most specialized model, together
//! > with the implementation, or should we ship all the intermediate
//! > models, together with the transformations and the set of parameters
//! > that specialize each transformation?"*

use crate::lifecycle::MdaLifecycle;
use comet_xmi::export_model;

/// How much of the refinement lineage to package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShippingStrategy {
    /// Only the most-specialized model (smallest package, no replay).
    FinalModelOnly,
    /// Every intermediate model plus, per step, the transformation name
    /// and its parameter set (enables replay, reuse and auditing).
    FullLineage,
}

/// One step of a shipped lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedStep {
    /// Commit message (the CMT's `name<params>` full name).
    pub message: String,
    /// The concern, when the step came from a concern transformation.
    pub concern: Option<String>,
    /// XMI snapshot of the model *after* this step.
    pub model_xmi: String,
}

/// The shippable package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedPackage {
    /// Strategy that produced the package.
    pub strategy: ShippingStrategy,
    /// XMI of the most-specialized model.
    pub final_model_xmi: String,
    /// The lineage (present only for [`ShippingStrategy::FullLineage`]).
    pub lineage: Vec<ShippedStep>,
}

impl ShippedPackage {
    /// Total payload size in bytes (XMI text), the metric the packaging
    /// trade-off turns on.
    pub fn payload_bytes(&self) -> usize {
        self.final_model_xmi.len() + self.lineage.iter().map(|s| s.model_xmi.len()).sum::<usize>()
    }
}

impl MdaLifecycle {
    /// Packages the current state of the refinement for shipping.
    pub fn ship(&self, strategy: ShippingStrategy) -> ShippedPackage {
        let final_model_xmi = export_model(self.model());
        let lineage = match strategy {
            ShippingStrategy::FinalModelOnly => Vec::new(),
            ShippingStrategy::FullLineage => self
                .repository()
                .log()
                .iter()
                .map(|c| ShippedStep {
                    message: c.message.clone(),
                    concern: c.concern.clone(),
                    model_xmi: c.snapshot_xmi().to_owned(),
                })
                .collect(),
        };
        ShippedPackage { strategy, final_model_xmi, lineage }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_concerns::transactions;
    use comet_model::sample::banking_pim;
    use comet_transform::{ParamSet, ParamValue};
    use comet_workflow::WorkflowModel;

    fn lifecycle() -> MdaLifecycle {
        let mut mda =
            MdaLifecycle::new(banking_pim(), WorkflowModel::new("w").step("transactions", false))
                .unwrap();
        mda.apply_concern(
            &transactions::pair(),
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()])),
        )
        .unwrap();
        mda
    }

    #[test]
    fn final_only_ships_one_model() {
        let p = lifecycle().ship(ShippingStrategy::FinalModelOnly);
        assert!(p.lineage.is_empty());
        assert!(p.final_model_xmi.contains("Transactional"));
    }

    #[test]
    fn full_lineage_ships_history_with_params() {
        let p = lifecycle().ship(ShippingStrategy::FullLineage);
        assert_eq!(p.lineage.len(), 2); // initial PIM + tx step
        assert_eq!(p.lineage[0].concern, None);
        assert_eq!(p.lineage[1].concern.as_deref(), Some("transactions"));
        // The step message carries the Si that specialized the CMT.
        assert!(p.lineage[1].message.contains("methods=[Bank.transfer]"));
        assert!(p.payload_bytes() > p.final_model_xmi.len());
    }

    #[test]
    fn lineage_models_replay_to_final() {
        let p = lifecycle().ship(ShippingStrategy::FullLineage);
        let last = comet_xmi::import_model(&p.lineage.last().unwrap().model_xmi).unwrap();
        let final_m = comet_xmi::import_model(&p.final_model_xmi).unwrap();
        assert_eq!(last, final_m);
    }
}
