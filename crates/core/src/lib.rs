//! # comet — Generic Concern-Oriented Model Transformations Meet AOP
//!
//! The core crate of **COMET**, a Rust reproduction of Silaghi &
//! Strohmeier's position paper (Middleware 2003 workshops). It implements
//! the paper's primary contribution — the MDA refinement lifecycle in
//! which every concern dimension is handled by a *generic model
//! transformation paired with a generic aspect*, both specialized by one
//! application-specific parameter set `Si`:
//!
//! ```text
//!   GMT_Ci --(Si)--> CMT_Ci     acts upon the model (concern space i)
//!     ⇅ 1–1                     (comet-transform)
//!   GA_Ci  --(Si)--> CA_Ci      acts upon the code (woven aspect)
//!                               (comet-aspectgen / comet-aop)
//! ```
//!
//! [`MdaLifecycle`] drives the whole life cycle: it owns the evolving
//! model, a versioned repository (undo/redo, Section 3), a guided
//! workflow, and the ordered list of applied `(CMT, CA)` pairs; aspect
//! precedence at code level follows the transformation application order
//! at model level, exactly as the paper prescribes. [`Wizard`] provides
//! the "concern-oriented wizard" configuration front-end; shipping
//! strategies answer the paper's packaging question both ways.
//!
//! ## Quickstart
//!
//! ```
//! use comet::{Backend, MdaLifecycle, Wizard};
//! use comet_codegen::BodyProvider;
//! use comet_concerns::transactions;
//! use comet_model::sample::banking_pim;
//! use comet_transform::{ParamSet, ParamValue};
//! use comet_workflow::WorkflowModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workflow = WorkflowModel::new("demo").step("transactions", false);
//! let mut mda = MdaLifecycle::new(banking_pim(), workflow)?;
//! let si = ParamSet::new().with(
//!     "methods",
//!     ParamValue::from(vec!["Bank.transfer".to_owned()]),
//! );
//! mda.apply_concern(&transactions::pair(), si)?;
//! let system = mda.generate(&BodyProvider::default(), Backend::JavaFunctional)?;
//! assert_eq!(system.aspect_sources.len(), 1);
//! assert!(system.woven.find_method("Bank", "transfer__functional").is_some());
//! assert!(system.artifact.contains("transfer__functional"));
//! # Ok(())
//! # }
//! ```

pub mod chaos;
mod lifecycle;
pub mod serve;
mod shipping;
mod wizard;

pub use chaos::{run_banking_chaos, run_banking_chaos_traced, ChaosConfig, ChaosReport, FtOrder};
pub use comet_gen::{Backend, GenCache, GenInput, Generator, GeneratorFactory};
pub use lifecycle::{AppliedConcern, GeneratedSystem, LifecycleError, MdaLifecycle};
pub use serve::{
    run_banking_serve, run_banking_serve_cfg, run_banking_serve_durable,
    run_banking_serve_durable_cfg, serve_interaction_matrix, BankingFactory, BankingSession,
    KillPoint, SERVE_WORKFLOW,
};
pub use shipping::{ShippedPackage, ShippedStep, ShippingStrategy};
pub use wizard::{Question, QuestionKind, Wizard};
