//! The deterministic chaos harness: runs the banking pipeline woven
//! with {distribution, transactions, faulttolerance} under a seeded
//! [`FaultPlan`] and reports how gracefully it degraded.
//!
//! The harness is the shared engine behind the `chaos` test suite and
//! the `comet-cli run --faults` / `pipeline --faults` commands. One run:
//!
//! 1. builds the executable banking PIM (a `Bank` holding two `Account`
//!    refs) and refines it through the three concerns — the FT/tx
//!    application *order* is a parameter, because the paper's §3 claim
//!    (aspect precedence follows transformation order) becomes
//!    observable here: FT applied before transactions wraps *outside*
//!    the transaction advice and retries whole transactions; applied
//!    after, it sits inside and a failed commit must not be retried;
//! 2. generates and weaves the system, installs the fault plan on the
//!    interpreter's middleware, and drives a deterministic workload of
//!    transfers;
//! 3. checks the degradation contract after every call: no hard
//!    interpreter error (typed exceptions only) and the conservation
//!    invariant — the two balances always sum to the initial total, so
//!    the account store never observes a partial transfer.
//!
//! Everything is closed over `(workload, plan seed)`: same config, same
//! [`FaultLog`], byte for byte.

use crate::{LifecycleError, MdaLifecycle};
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, LValue, Stmt};
use comet_concerns::{distribution, faulttolerance, transactions};
use comet_interp::{Interp, InterpError, Value};
use comet_middleware::{BusStats, FaultLog, FaultPlan, MiddlewareConfig, TxStats};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use std::fmt;

/// Which of the two §3 precedence orders to weave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtOrder {
    /// Apply faulttolerance before transactions: FT advice is the outer
    /// layer and retries re-run the *whole* transaction.
    FtOutsideTx,
    /// Apply transactions before faulttolerance: the transaction advice
    /// is outer, so a failed commit propagates without a retry.
    TxOutsideFt,
}

impl FtOrder {
    /// The concern application order (distribution always outermost: it
    /// routes the call to the server before any other layer runs).
    pub fn concerns(self) -> [&'static str; 3] {
        match self {
            FtOrder::FtOutsideTx => ["distribution", "faulttolerance", "transactions"],
            FtOrder::TxOutsideFt => ["distribution", "transactions", "faulttolerance"],
        }
    }
}

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Middleware seed (bus latency stream).
    pub seed: u64,
    /// The fault plan to install (its own seed drives the fault draws).
    pub plan: FaultPlan,
    /// FT/tx precedence order.
    pub order: FtOrder,
    /// Number of transfer calls in the workload.
    pub transfers: u32,
    /// Whether `Bank.transfer` is declared idempotent in `Si` (grants
    /// the retry permission the generic aspect cannot invent).
    pub retry_transfer: bool,
    /// FT `max_attempts` slot.
    pub max_attempts: i64,
    /// FT `backoff_us` slot.
    pub backoff_us: i64,
    /// FT `deadline_us` slot (0 disables).
    pub deadline_us: i64,
    /// FT `breaker_threshold` slot.
    pub breaker_threshold: i64,
    /// FT `breaker_cooldown_us` slot.
    pub breaker_cooldown_us: i64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            plan: FaultPlan::new(42),
            order: FtOrder::FtOutsideTx,
            transfers: 12,
            retry_transfer: true,
            max_attempts: 3,
            backoff_us: 200,
            deadline_us: 0,
            breaker_threshold: 3,
            breaker_cooldown_us: 10_000,
        }
    }
}

/// The outcome of a chaos run (the "degradation summary").
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Transfer calls attempted.
    pub attempted: u32,
    /// Calls that returned normally.
    pub succeeded: u32,
    /// Typed (thrown) failures, in call order.
    pub typed_failures: Vec<String>,
    /// Hard interpreter failures — the degradation contract requires
    /// this to stay empty.
    pub hard_failures: Vec<String>,
    /// Conservation-invariant violations — must stay empty.
    pub invariant_violations: Vec<String>,
    /// Final balance of account `A-1`.
    pub balance_a1: i64,
    /// Final balance of account `A-2`.
    pub balance_a2: i64,
    /// The fault log of the run.
    pub fault_log: FaultLog,
    /// Transaction-manager statistics.
    pub tx: TxStats,
    /// Bus statistics.
    pub bus: BusStats,
    /// Final breaker state of `Bank.transfer`, if the breaker was used.
    pub breaker_state: Option<String>,
    /// Final sim time in µs.
    pub now_us: u64,
}

impl ChaosReport {
    /// True when the run met the graceful-degradation contract.
    pub fn degraded_gracefully(&self) -> bool {
        self.hard_failures.is_empty() && self.invariant_violations.is_empty()
    }

    /// Bridges this report into `reg` record-for-record, so a chaos run
    /// exports through the same Prometheus/JSON pipeline as a serving
    /// run: outcome and platform totals become counters, and every
    /// fault-log entry increments `comet_chaos_fault_events_total`
    /// labelled by its event type.
    pub fn record_metrics(&self, reg: &mut comet_metrics::MetricsRegistry) {
        let total = |reg: &mut comet_metrics::MetricsRegistry, name: &str, v: u64| {
            let h = reg.counter(name, &[]);
            reg.add(h, v);
        };
        total(reg, "comet_chaos_attempted_total", u64::from(self.attempted));
        total(reg, "comet_chaos_succeeded_total", u64::from(self.succeeded));
        total(reg, "comet_chaos_typed_failures_total", self.typed_failures.len() as u64);
        total(reg, "comet_chaos_hard_failures_total", self.hard_failures.len() as u64);
        total(
            reg,
            "comet_chaos_invariant_violations_total",
            self.invariant_violations.len() as u64,
        );
        total(reg, "comet_chaos_tx_committed_total", self.tx.committed);
        total(reg, "comet_chaos_tx_rolled_back_total", self.tx.rolled_back);
        total(reg, "comet_chaos_bus_delivered_total", self.bus.delivered);
        total(reg, "comet_chaos_bus_lost_total", self.bus.lost);
        for record in self.fault_log.records() {
            use comet_middleware::FaultEvent;
            let event = match &record.event {
                FaultEvent::Injected { .. } => "injected",
                FaultEvent::ArmedFired { .. } => "armed_fired",
                FaultEvent::Healed { .. } => "healed",
                FaultEvent::BreakerOpened { .. } => "breaker_opened",
                FaultEvent::BreakerHalfOpen { .. } => "breaker_half_open",
                FaultEvent::BreakerClosed { .. } => "breaker_closed",
            };
            let h = reg.counter("comet_chaos_fault_events_total", &[("event", event)]);
            reg.add(h, 1);
        }
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos run: {}/{} transfers succeeded", self.succeeded, self.attempted)?;
        writeln!(
            f,
            "balances: A-1 = {}, A-2 = {} (sum {})",
            self.balance_a1,
            self.balance_a2,
            self.balance_a1 + self.balance_a2
        )?;
        writeln!(
            f,
            "tx: {} begun, {} committed, {} rolled back",
            self.tx.begun, self.tx.committed, self.tx.rolled_back
        )?;
        writeln!(
            f,
            "bus: {} delivered, {} lost, sim time {}µs",
            self.bus.delivered, self.bus.lost, self.now_us
        )?;
        if let Some(state) = &self.breaker_state {
            writeln!(f, "breaker[Bank.transfer]: {state}")?;
        }
        writeln!(
            f,
            "degradation: {} typed failure(s), {} hard failure(s), {} invariant violation(s)",
            self.typed_failures.len(),
            self.hard_failures.len(),
            self.invariant_violations.len()
        )?;
        for e in &self.typed_failures {
            writeln!(f, "  typed: {e}")?;
        }
        for e in &self.hard_failures {
            writeln!(f, "  HARD: {e}")?;
        }
        for e in &self.invariant_violations {
            writeln!(f, "  INVARIANT: {e}")?;
        }
        writeln!(f, "fault log ({} record(s)):", self.fault_log.len())?;
        for r in self.fault_log.records() {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// The executable banking PIM: `Bank` holds two `Account` references;
/// `transfer(from, to, amount)` debits then credits, `getBalance` reads.
pub fn executable_banking_pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?.attribute("balance", Primitive::Int)
        })
        .expect("valid model")
        .build();
    let account = model.find_class("Account").expect("just added");
    let root = model.root();
    let bank = model.add_class(root, "Bank").expect("valid");
    model.add_attribute(bank, "a1", TypeRef::Element(account)).expect("valid");
    model.add_attribute(bank, "a2", TypeRef::Element(account)).expect("valid");
    let transfer = model.add_operation(bank, "transfer").expect("valid");
    for p in ["from", "to"] {
        model.add_parameter(transfer, p, Primitive::Str.into()).expect("valid");
    }
    model.add_parameter(transfer, "amount", Primitive::Int.into()).expect("valid");
    model.set_return_type(transfer, Primitive::Bool.into()).expect("valid");
    let get_balance = model.add_operation(bank, "getBalance").expect("valid");
    model.add_parameter(get_balance, "number", Primitive::Str.into()).expect("valid");
    model.set_return_type(get_balance, Primitive::Int.into()).expect("valid");
    model
}

fn select_account(var: &str, number_param: &str) -> Vec<Stmt> {
    vec![
        Stmt::local(var, IrType::Object("Account".into()), Expr::this_field("a1")),
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Ne,
                Expr::Field { recv: Box::new(Expr::var(var)), name: "number".into() },
                Expr::var(number_param),
            ),
            then_block: Block::of(vec![Stmt::set_var(var, Expr::this_field("a2"))]),
            else_block: None,
        },
    ]
}

/// The functional bodies for [`executable_banking_pim`].
pub fn banking_bodies() -> BodyProvider {
    let field =
        |obj: &str, name: &str| Expr::Field { recv: Box::new(Expr::var(obj)), name: name.into() };
    let mut transfer = Vec::new();
    transfer.extend(select_account("src", "from"));
    transfer.extend(select_account("dst", "to"));
    transfer.extend([
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, field("src", "balance"), Expr::var("amount")),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("insufficient funds"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("src"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Sub, field("src", "balance"), Expr::var("amount")),
        },
        Stmt::If {
            cond: Expr::binary(IrBinOp::Eq, Expr::var("amount"), Expr::int(13)),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("simulated crash after debit"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("dst"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Add, field("dst", "balance"), Expr::var("amount")),
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    let mut get_balance = select_account("acc", "number");
    get_balance.push(Stmt::ret(field("acc", "balance")));
    BodyProvider::new()
        .provide("Bank::transfer", Block::of(transfer))
        .provide("Bank::getBalance", Block::of(get_balance))
}

fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]))
}

fn tx_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("isolation", ParamValue::from("serializable"))
}

fn ft_si(cfg: &ChaosConfig) -> ParamSet {
    let idempotent: Vec<String> =
        if cfg.retry_transfer { vec!["Bank.transfer".to_owned()] } else { Vec::new() };
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("idempotent", ParamValue::StrList(idempotent))
        .with("max_attempts", ParamValue::Int(cfg.max_attempts))
        .with("backoff_us", ParamValue::Int(cfg.backoff_us))
        .with("deadline_us", ParamValue::Int(cfg.deadline_us))
        .with("breaker_threshold", ParamValue::Int(cfg.breaker_threshold))
        .with("breaker_cooldown_us", ParamValue::Int(cfg.breaker_cooldown_us))
}

/// The deterministic transfer workload: `(from, to, amount)` for call
/// `i`. Calls come in mirrored pairs (A-1→A-2 then A-2→A-1 of the same
/// amount), so a fault-free workload of any length never runs out of
/// funds; amounts avoid the functional crash trigger (13) — chaos comes
/// from the fault plan, not the workload.
pub fn workload(i: u32) -> (&'static str, &'static str, i64) {
    const AMOUNTS: [i64; 4] = [40, 25, 55, 10];
    let amount = AMOUNTS[(i as usize / 2) % AMOUNTS.len()];
    if i.is_multiple_of(2) {
        ("A-1", "A-2", amount)
    } else {
        ("A-2", "A-1", amount)
    }
}

/// Initial balances: `(A-1, A-2)`; the conservation invariant is their
/// sum.
pub const INITIAL_BALANCES: (i64, i64) = (1_000, 50);

/// Runs one chaos scenario end to end.
///
/// # Errors
/// Fails only on lifecycle/setup errors (a concern failing to apply or
/// generate). Workload failures — typed or hard — land in the report.
pub fn run_banking_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, LifecycleError> {
    run_banking_chaos_traced(cfg, &comet_obs::Collector::disabled())
}

/// [`run_banking_chaos`] with an observability collector attached to
/// every layer: the lifecycle (concern/generate spans), the interpreter
/// (intrinsic counters), the middleware (fault events), plus one
/// `runtime` span per `Bank.transfer` call so fault events nest inside
/// the call that triggered them. With a disabled collector this is
/// byte-identical to the untraced run; with an enabled one, same seed +
/// same plan produce the same trace, byte for byte.
///
/// # Errors
/// Same as [`run_banking_chaos`].
pub fn run_banking_chaos_traced(
    cfg: &ChaosConfig,
    obs: &comet_obs::Collector,
) -> Result<ChaosReport, LifecycleError> {
    let mut workflow = WorkflowModel::new("chaos");
    for step in cfg.order.concerns() {
        workflow = workflow.step(step, false);
    }
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow)?;
    mda.set_collector(obs.clone());
    for step in cfg.order.concerns() {
        match step {
            "distribution" => mda.apply_concern(&distribution::pair(), dist_si())?,
            "transactions" => mda.apply_concern(&transactions::pair(), tx_si())?,
            _ => mda.apply_concern(&faulttolerance::pair(), ft_si(cfg))?,
        };
    }
    let system = mda.generate(&banking_bodies(), comet_gen::Backend::JavaFunctional)?;

    let config = MiddlewareConfig { seed: cfg.seed, ..MiddlewareConfig::default() };
    let mut interp = Interp::with_config(system.woven, config);
    interp.set_collector(obs.clone());
    interp.add_node("client");
    interp.add_node("server");
    let bank = interp.create_on("Bank", "server").expect("Bank class generated");
    let a1 = interp.create_on("Account", "server").expect("Account class generated");
    let a2 = interp.create_on("Account", "server").expect("Account class generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field exists");
    interp.set_field(&a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field exists");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field exists");
    interp.set_field(&a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field exists");
    interp.set_field(&bank, "a1", a1.clone()).expect("field exists");
    interp.set_field(&bank, "a2", a2.clone()).expect("field exists");
    // Registers the bank in the naming service (distribution concern).
    interp
        .call(bank.clone(), comet_codegen::marks::DIST_REGISTER_OP, vec![])
        .expect("registerRemote generated by the distribution concern");
    interp.middleware_mut().bus.set_current_node("client").expect("node exists");

    interp.middleware().install_fault_plan(cfg.plan.clone());

    let total = INITIAL_BALANCES.0 + INITIAL_BALANCES.1;
    let balance = |interp: &Interp, acc: &Value| -> i64 {
        match interp.field(acc, "balance") {
            Ok(Value::Int(n)) => n,
            _ => i64::MIN, // surfaces as an invariant violation
        }
    };
    let mut report = ChaosReport {
        attempted: cfg.transfers,
        succeeded: 0,
        typed_failures: Vec::new(),
        hard_failures: Vec::new(),
        invariant_violations: Vec::new(),
        balance_a1: 0,
        balance_a2: 0,
        fault_log: FaultLog::default(),
        tx: TxStats::default(),
        bus: BusStats::default(),
        breaker_state: None,
        now_us: 0,
    };
    for i in 0..cfg.transfers {
        let (from, to, amount) = workload(i);
        let args = vec![Value::from(from), Value::from(to), Value::Int(amount)];
        let span = obs.is_enabled().then(|| {
            let s = obs.begin_span("runtime", "call:Bank.transfer", interp.middleware().now_us());
            obs.span_attr(s, "call_index", &i.to_string());
            s
        });
        let outcome = match interp.call(bank.clone(), "transfer", args) {
            Ok(_) => {
                report.succeeded += 1;
                "ok".to_owned()
            }
            Err(InterpError::Thrown(v)) => {
                let msg = v.as_str().map(str::to_owned).unwrap_or_else(|| format!("{v:?}"));
                report.typed_failures.push(format!("call {i}: {msg}"));
                format!("thrown: {msg}")
            }
            Err(hard) => {
                report.hard_failures.push(format!("call {i}: {hard:?}"));
                format!("hard: {hard:?}")
            }
        };
        if let Some(s) = span {
            obs.span_attr(s, "outcome", &outcome);
            obs.end_span(s, interp.middleware().now_us());
        }
        let (b1, b2) = (balance(&interp, &a1), balance(&interp, &a2));
        if b1 + b2 != total {
            report.invariant_violations.push(format!(
                "call {i}: partial transfer observed (A-1 {b1} + A-2 {b2} != {total})"
            ));
        }
    }
    report.balance_a1 = balance(&interp, &a1);
    report.balance_a2 = balance(&interp, &a2);
    report.fault_log = interp.middleware().fault_log();
    report.tx = interp.middleware().tx.stats();
    report.bus = interp.middleware().bus.stats();
    report.breaker_state =
        interp.middleware().faults.borrow().breaker_state("Bank.transfer").map(str::to_owned);
    report.now_us = interp.middleware().now_us();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_succeeds_everywhere() {
        let report = run_banking_chaos(&ChaosConfig::default()).unwrap();
        assert_eq!(report.succeeded, report.attempted);
        assert!(report.degraded_gracefully());
        assert!(report.fault_log.is_empty());
        assert_eq!(report.balance_a1 + report.balance_a2, 1_050);
        assert_eq!(report.tx.begun, u64::from(report.attempted));
    }

    #[test]
    fn workload_is_deterministic_and_crash_free() {
        for i in 0..64 {
            let (from, to, amount) = workload(i);
            assert_ne!(amount, 13, "workload must not trip the functional crash");
            assert_ne!(from, to);
        }
    }
}
