//! Concern-oriented configuration wizards (Section 3, first bullet):
//! turn a concern pair's parameter schema into a question list, and a
//! map of textual answers back into a validated [`ParamSet`].

use comet_aspectgen::ConcernPair;
use comet_transform::{ParamError, ParamSet, ParamSpec, ParamType, ParamValue};
use std::collections::BTreeMap;

/// What kind of answer a question expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuestionKind {
    /// Free text.
    Text,
    /// An integer.
    Integer,
    /// `yes`/`no` (also accepts `true`/`false`).
    YesNo,
    /// Comma-separated list.
    List,
    /// One of the listed options.
    Choice(Vec<String>),
}

/// One wizard question, derived from a parameter spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The parameter name.
    pub name: String,
    /// Prompt text shown to the developer.
    pub prompt: String,
    /// Expected answer shape.
    pub kind: QuestionKind,
    /// Whether an answer is required.
    pub required: bool,
    /// Default shown when optional.
    pub default: Option<String>,
}

/// The wizard for one concern pair.
#[derive(Debug, Clone)]
pub struct Wizard {
    concern: String,
    specs: Vec<ParamSpec>,
}

impl Wizard {
    /// Builds the wizard from a concern pair's transformation schema
    /// (the aspect accepts the same `Si` by construction).
    pub fn for_pair(pair: &ConcernPair) -> Self {
        Wizard {
            concern: pair.concern().to_owned(),
            specs: pair.transformation().parameter_schema().specs().to_vec(),
        }
    }

    /// The concern being configured.
    pub fn concern(&self) -> &str {
        &self.concern
    }

    /// The question list, in schema order.
    pub fn questions(&self) -> Vec<Question> {
        self.specs
            .iter()
            .map(|spec| Question {
                name: spec.name.clone(),
                prompt: if spec.doc.is_empty() {
                    format!("{} for concern `{}`?", spec.name, self.concern)
                } else {
                    spec.doc.clone()
                },
                kind: match &spec.ty {
                    ParamType::Str => QuestionKind::Text,
                    ParamType::Int => QuestionKind::Integer,
                    ParamType::Bool => QuestionKind::YesNo,
                    ParamType::StrList => QuestionKind::List,
                    ParamType::Choice(options) => QuestionKind::Choice(options.clone()),
                },
                required: spec.required,
                default: spec.default.as_ref().map(|d| d.to_string()),
            })
            .collect()
    }

    /// Converts textual answers into a parameter set. Unanswered optional
    /// questions fall back to schema defaults during specialization.
    ///
    /// # Errors
    /// Reports unparsable answers as [`ParamError::WrongType`].
    pub fn collect(&self, answers: &BTreeMap<String, String>) -> Result<ParamSet, ParamError> {
        let mut set = ParamSet::new();
        for spec in &self.specs {
            let Some(raw) = answers.get(&spec.name) else { continue };
            let value = match &spec.ty {
                ParamType::Str | ParamType::Choice(_) => ParamValue::Str(raw.clone()),
                ParamType::Int => {
                    ParamValue::Int(raw.trim().parse().map_err(|_| ParamError::WrongType {
                        name: spec.name.clone(),
                        expected: "Int".into(),
                        found: raw.clone(),
                    })?)
                }
                ParamType::Bool => match raw.trim().to_lowercase().as_str() {
                    "yes" | "true" | "y" => ParamValue::Bool(true),
                    "no" | "false" | "n" => ParamValue::Bool(false),
                    _ => {
                        return Err(ParamError::WrongType {
                            name: spec.name.clone(),
                            expected: "Bool".into(),
                            found: raw.clone(),
                        })
                    }
                },
                ParamType::StrList => ParamValue::StrList(
                    raw.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                ),
            };
            set = set.with(&spec.name, value);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_concerns::{distribution, transactions};

    #[test]
    fn questions_derived_from_schema() {
        let w = Wizard::for_pair(&transactions::pair());
        assert_eq!(w.concern(), "transactions");
        let qs = w.questions();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].name, "methods");
        assert_eq!(qs[0].kind, QuestionKind::List);
        assert!(qs[0].required);
        match &qs[1].kind {
            QuestionKind::Choice(options) => assert!(options.contains(&"serializable".to_owned())),
            other => panic!("expected choice, got {other:?}"),
        }
        assert_eq!(qs[1].default.as_deref(), Some("read-committed"));
    }

    #[test]
    fn collect_parses_answers_and_specializes() {
        let pair = transactions::pair();
        let w = Wizard::for_pair(&pair);
        let mut answers = BTreeMap::new();
        answers.insert("methods".to_owned(), "Bank.transfer, Account.withdraw".to_owned());
        answers.insert("isolation".to_owned(), "serializable".to_owned());
        let si = w.collect(&answers).unwrap();
        let (cmt, ca) = pair.specialize(si).unwrap();
        assert!(cmt.full_name().contains("Account.withdraw"));
        assert_eq!(ca.advices.len(), 2);
    }

    #[test]
    fn collect_rejects_bad_answers() {
        let pair = distribution::pair();
        let w = Wizard::for_pair(&pair);
        // Feed an unparsable bool into a synthetic bool spec by testing
        // via the transactions schema's absence; here use an Int-free
        // schema: a bad choice value passes collect (it is a Str) and is
        // rejected by specialization instead.
        let mut answers = BTreeMap::new();
        answers.insert("server_class".to_owned(), "Bank".to_owned());
        answers.insert("node".to_owned(), "server".to_owned());
        answers.insert("operations".to_owned(), "transfer".to_owned());
        answers.insert("protocol".to_owned(), "pigeon".to_owned());
        let si = w.collect(&answers).unwrap();
        assert!(pair.specialize(si).is_err());
    }

    #[test]
    fn empty_list_answer_yields_empty_list() {
        let w = Wizard::for_pair(&transactions::pair());
        let mut answers = BTreeMap::new();
        answers.insert("methods".to_owned(), "  ".to_owned());
        let si = w.collect(&answers).unwrap();
        assert_eq!(si.str_list("methods").unwrap().len(), 0);
    }
}
