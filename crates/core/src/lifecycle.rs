//! The MDA lifecycle engine: the paper's Fig. 1 pipeline end to end.

use comet_aop::{Aspect, IncrementalWeaver, WeaveError, Weaver, WovenJoinPoint};
use comet_aspectgen::{AspectBackend, AspectGenError, AspectJBackend, ConcernPair};
use comet_codegen::{
    pretty_print, BodyProvider, FunctionalGenerator, MonolithicGenerator, Program,
};
use comet_gen::{Backend, GenCache, GenInput, GeneratorFactory};
use comet_model::{DirtySet, Model};
use comet_repo::{
    ColorReport, CommitDelta, CommitId, DurableRepository, RecoveryReport, RepoError, Repository,
};
use comet_transform::{
    ApplyReport, ConcreteTransformation, ConditionCache, ParamSet, TransformError,
};
use comet_workflow::{WorkflowBuildError, WorkflowEngine, WorkflowError, WorkflowModel};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::path::Path;

/// Lifecycle failures; each wraps the failing subsystem's error.
#[derive(Debug)]
pub enum LifecycleError {
    /// The workflow forbids the concern at this point.
    Workflow(WorkflowError),
    /// The workflow model itself is malformed (duplicate steps, a
    /// self-constraint, a constraint naming an unplanned concern) —
    /// rejected before an engine is built around it.
    WorkflowModel(WorkflowBuildError),
    /// Specialization of the transformation/aspect pair failed.
    AspectGen(AspectGenError),
    /// Applying the concrete transformation failed (model unchanged).
    Transform(TransformError),
    /// Weaving failed.
    Weave(WeaveError),
    /// Repository failure.
    Repo(RepoError),
    /// Nothing to undo.
    NothingToUndo,
    /// Replaying the remaining steps into a fresh workflow engine
    /// failed during undo — the recorded sequence no longer validates
    /// against the workflow model. The lifecycle state is left exactly
    /// as it was before the undo attempt.
    WorkflowReplay {
        /// The step that failed to replay.
        concern: String,
        /// The underlying workflow violation.
        source: WorkflowError,
    },
    /// Rebuilding a lifecycle from a durable journal failed: the
    /// journal replayed, but its contents cannot be turned back into a
    /// live lifecycle (no visible commit, or a journalled concern the
    /// caller's resolver does not know).
    Recovery(String),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Workflow(e) => write!(f, "workflow: {e}"),
            LifecycleError::WorkflowModel(e) => write!(f, "workflow model: {e}"),
            LifecycleError::AspectGen(e) => write!(f, "specialization: {e}"),
            LifecycleError::Transform(e) => write!(f, "transformation: {e}"),
            LifecycleError::Weave(e) => write!(f, "weaving: {e}"),
            LifecycleError::Repo(e) => write!(f, "repository: {e}"),
            LifecycleError::NothingToUndo => write!(f, "nothing to undo"),
            LifecycleError::WorkflowReplay { concern, source } => {
                write!(f, "workflow replay of `{concern}` failed during undo: {source}")
            }
            LifecycleError::Recovery(detail) => write!(f, "recovery: {detail}"),
        }
    }
}

impl std::error::Error for LifecycleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LifecycleError::Workflow(e) => Some(e),
            LifecycleError::WorkflowModel(e) => Some(e),
            LifecycleError::AspectGen(e) => Some(e),
            LifecycleError::Transform(e) => Some(e),
            LifecycleError::Weave(e) => Some(e),
            LifecycleError::Repo(e) => Some(e),
            LifecycleError::WorkflowReplay { source, .. } => Some(source),
            LifecycleError::NothingToUndo | LifecycleError::Recovery(_) => None,
        }
    }
}

impl From<WorkflowError> for LifecycleError {
    fn from(e: WorkflowError) -> Self {
        LifecycleError::Workflow(e)
    }
}

impl From<WorkflowBuildError> for LifecycleError {
    fn from(e: WorkflowBuildError) -> Self {
        LifecycleError::WorkflowModel(e)
    }
}

impl From<AspectGenError> for LifecycleError {
    fn from(e: AspectGenError) -> Self {
        LifecycleError::AspectGen(e)
    }
}

impl From<TransformError> for LifecycleError {
    fn from(e: TransformError) -> Self {
        LifecycleError::Transform(e)
    }
}

impl From<WeaveError> for LifecycleError {
    fn from(e: WeaveError) -> Self {
        LifecycleError::Weave(e)
    }
}

impl From<RepoError> for LifecycleError {
    fn from(e: RepoError) -> Self {
        LifecycleError::Repo(e)
    }
}

/// One applied refinement step: the concrete transformation, the paired
/// concrete aspect, and what the application changed.
#[derive(Debug, Clone)]
pub struct AppliedConcern {
    /// The concrete model transformation (CMT_Ci).
    pub cmt: ConcreteTransformation,
    /// The concrete aspect (CA_Ci), generated from the same `Si`.
    pub aspect: Aspect,
    /// The model delta of the application.
    pub report: ApplyReport,
}

/// Everything the code-generation phase produces.
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// The functional program (concern-free behaviour).
    pub functional: Program,
    /// The woven program (aspects applied, precedence = application
    /// order).
    pub woven: Program,
    /// Pretty-printed functional source (the code generator's artifact).
    pub functional_source: String,
    /// Per-aspect platform artifacts `(aspect name, source)`.
    pub aspect_sources: Vec<(String, String)>,
    /// Every advice application the weaver performed.
    pub weave_trace: Vec<WovenJoinPoint>,
    /// The backend that rendered [`GeneratedSystem::artifact`].
    pub backend: Backend,
    /// The backend's rendered artifact (possibly served from the
    /// content-addressed generation cache — byte-identical either way).
    pub artifact: String,
}

/// The repository behind a lifecycle: either the plain in-memory
/// versioned store, or the durable log-structured backend that journals
/// every commit and undo before applying it in memory. Both expose the
/// same `Repository` view for reads; writes go through the backend so
/// the durable variant never misses a journal entry.
#[derive(Debug)]
enum RepoBackend {
    Memory(Repository),
    Durable(DurableRepository),
}

impl RepoBackend {
    fn as_repository(&self) -> &Repository {
        match self {
            RepoBackend::Memory(r) => r,
            RepoBackend::Durable(d) => d.repo(),
        }
    }

    fn as_repository_mut(&mut self) -> &mut Repository {
        match self {
            RepoBackend::Memory(r) => r,
            // Unjournaled access: callers use this for tagging,
            // branching via the lifecycle API surface and for arming
            // test faults, not for commits (those go through the
            // backend methods below).
            RepoBackend::Durable(d) => d.repo_mut_unjournaled(),
        }
    }

    fn commit_with_delta(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
        delta: CommitDelta,
    ) -> Result<CommitId, RepoError> {
        match self {
            RepoBackend::Memory(r) => r.commit_with_delta(model, message, concern, delta),
            RepoBackend::Durable(d) => d.commit_with_delta(model, message, concern, delta),
        }
    }

    fn undo(&mut self) -> Option<Result<Model, RepoError>> {
        match self {
            RepoBackend::Memory(r) => r.undo(),
            RepoBackend::Durable(d) => d.undo(),
        }
    }
}

/// The weave half of the lifecycle's incrementality state: an
/// [`IncrementalWeaver`] valid for one aspect list (the fingerprint is
/// the aspect names in precedence order — applying or undoing a concern
/// changes it and forces a rebuild).
#[derive(Debug)]
struct WeaveCacheState {
    fingerprint: Vec<String>,
    weaver: IncrementalWeaver,
}

/// The MDA lifecycle: model + repository + workflow + applied concerns.
///
/// # Incrementality
///
/// The lifecycle threads the change journal's deltas into two caches:
///
/// * **Condition cache** — every CMT application goes through
///   [`ConcreteTransformation::apply_incremental_traced`], so pre- and
///   postconditions whose [`comet_transform::Footprint`] is disjoint
///   from each application's dirty kinds are answered from cache;
/// * **Weave cache** — [`MdaLifecycle::generate`] re-weaves only the
///   classes reachable from the dirty set accumulated since the last
///   generation ([`DirtySet::dirty_classes`]); everything else is
///   spliced from the previous weave. A repeated `generate` at an
///   unchanged revision returns the cached result outright.
///
/// Both caches are dropped on [`MdaLifecycle::undo_last`] (the restored
/// snapshot restarts the revision counter) and the full engines remain
/// the differential oracles in the test suite; results are
/// byte-identical to the non-incremental paths in every case.
#[derive(Debug)]
pub struct MdaLifecycle {
    model: Model,
    repo: RepoBackend,
    workflow: WorkflowEngine,
    applied: Vec<AppliedConcern>,
    obs: comet_obs::Collector,
    conditions: ConditionCache,
    weave_cache: RefCell<Option<WeaveCacheState>>,
    /// Model changes since the weave cache last saw the model; `None`
    /// means "unknown — do a full re-weave".
    dirty_since: RefCell<Option<DirtySet>>,
    /// Weave-cache hits/misses, counted unconditionally (unlike the
    /// `Collector` counters, which exist only when tracing is on) so
    /// serving hosts can bridge them into metrics.
    weave_hits: Cell<u64>,
    weave_misses: Cell<u64>,
    /// The per-lifecycle backend registry every `generate` dispatches
    /// through — one factory per tenant in the serving stack.
    factory: GeneratorFactory,
    /// Content-addressed artifact cache over `(content hash, bodies
    /// fingerprint, backend, concern list)`; its own hit/miss counters
    /// feed [`MdaLifecycle::gen_cache_stats`].
    gen_cache: RefCell<GenCache>,
}

impl MdaLifecycle {
    /// Starts a lifecycle from a PIM, committing it as the initial
    /// version.
    ///
    /// # Errors
    /// Rejects malformed workflow models and propagates repository
    /// failures.
    pub fn new(pim: Model, workflow: WorkflowModel) -> Result<Self, LifecycleError> {
        let engine = WorkflowEngine::try_new(workflow)?;
        let mut repo = Repository::new(format!("{}-models", pim.name()));
        repo.commit(&pim, "initial PIM", None)?;
        Ok(Self::assemble(pim, RepoBackend::Memory(repo), engine, Vec::new()))
    }

    /// Starts a lifecycle whose repository journals every operation to
    /// `dir` (segment store + write-ahead log) before applying it in
    /// memory, committing the PIM as the initial version. A crash at any
    /// point leaves a journal that [`MdaLifecycle::recover`] replays to
    /// the last completed operation.
    ///
    /// # Errors
    /// Fails when the workflow model is malformed, or when `dir`
    /// already holds a journal or cannot be written.
    pub fn new_durable(
        pim: Model,
        workflow: WorkflowModel,
        dir: &Path,
    ) -> Result<Self, LifecycleError> {
        let engine = WorkflowEngine::try_new(workflow)?;
        let mut repo = DurableRepository::create(dir, &format!("{}-models", pim.name()))?;
        repo.commit(&pim, "initial PIM", None)?;
        Ok(Self::assemble(pim, RepoBackend::Durable(repo), engine, Vec::new()))
    }

    /// Rebuilds a lifecycle from the durable journal in `dir`:
    ///
    /// 1. the write-ahead log replays into a repository (a torn tail —
    ///    a crash mid-append — is truncated to the last complete
    ///    record, so the repository lands on the last *committed*
    ///    operation);
    /// 2. the current model is restored from the head snapshot;
    /// 3. the workflow and the applied-concern list are rebuilt from
    ///    the visible history: every visible commit that names a
    ///    concern is re-recorded, and `resolve` maps the concern name
    ///    back to its [`ConcernPair`] and specialisation decisions `Si`
    ///    so the concrete aspect can be regenerated (aspect generation
    ///    is a pure function of the pair and `Si`, so the regenerated
    ///    aspects are identical to the pre-crash ones). Undone steps
    ///    were journalled as undos and replay as such, leaving them out
    ///    of the visible history exactly as a live `undo_last` would.
    ///
    /// Both incrementality caches restart cold; cached results are
    /// byte-identical to full recomputation, so post-recovery behaviour
    /// does not diverge.
    ///
    /// # Errors
    /// Fails when the workflow model is malformed, `dir` has no
    /// journal, the journal has no visible commit, or `resolve` does
    /// not know a journalled concern.
    pub fn recover<F>(
        dir: &Path,
        workflow: WorkflowModel,
        resolve: F,
    ) -> Result<(Self, RecoveryReport), LifecycleError>
    where
        F: Fn(&str) -> Option<(ConcernPair, ParamSet)>,
    {
        let mut engine = WorkflowEngine::try_new(workflow)?;
        let (repo, report) = DurableRepository::open(dir)?;
        let model = match repo.head_model() {
            Some(model) => model?,
            None => {
                return Err(LifecycleError::Recovery(
                    "journal has no visible commit to restore".to_owned(),
                ))
            }
        };
        let mut applied = Vec::new();
        let steps: Vec<(String, CommitDelta)> = repo
            .log()
            .iter()
            .filter_map(|c| c.concern.clone().map(|n| (n, c.delta.clone().unwrap_or_default())))
            .collect();
        for (concern, delta) in steps {
            let (pair, si) = resolve(&concern).ok_or_else(|| {
                LifecycleError::Recovery(format!(
                    "no resolver entry for journalled concern `{concern}`"
                ))
            })?;
            let (cmt, aspect) = pair.specialize(si)?;
            engine.record(&concern)?;
            let report = ApplyReport {
                created: delta.created,
                modified: delta.modified,
                removed: delta.removed,
            };
            applied.push(AppliedConcern { cmt, aspect, report });
        }
        Ok((Self::assemble(model, RepoBackend::Durable(repo), engine, applied), report))
    }

    fn assemble(
        model: Model,
        repo: RepoBackend,
        workflow: WorkflowEngine,
        applied: Vec<AppliedConcern>,
    ) -> Self {
        MdaLifecycle {
            model,
            repo,
            workflow,
            applied,
            obs: comet_obs::Collector::disabled(),
            conditions: ConditionCache::new(),
            weave_cache: RefCell::new(None),
            dirty_since: RefCell::new(Some(DirtySet::default())),
            weave_hits: Cell::new(0),
            weave_misses: Cell::new(0),
            factory: GeneratorFactory::with_standard_backends(),
            gen_cache: RefCell::new(GenCache::new()),
        }
    }

    /// Whether the repository journals to disk.
    pub fn is_durable(&self) -> bool {
        matches!(self.repo, RepoBackend::Durable(_))
    }

    /// Lifetime weave-cache `(hits, misses)` across every `generate`.
    pub fn weave_cache_stats(&self) -> (u64, u64) {
        (self.weave_hits.get(), self.weave_misses.get())
    }

    /// Lifetime generation-cache `(hits, misses)` across every
    /// `generate`, counted unconditionally like the weave-cache stats
    /// so serving hosts can bridge them into metrics.
    pub fn gen_cache_stats(&self) -> (u64, u64) {
        self.gen_cache.borrow().stats()
    }

    /// The backend registry this lifecycle generates through.
    pub fn generator_factory(&self) -> &GeneratorFactory {
        &self.factory
    }

    /// WAL durability barriers issued so far; 0 for in-memory repos.
    pub fn wal_fsyncs(&self) -> u64 {
        match &self.repo {
            RepoBackend::Memory(_) => 0,
            RepoBackend::Durable(d) => d.wal_fsyncs(),
        }
    }

    /// Attaches a trace collector: every subsequent
    /// [`MdaLifecycle::apply_concern`] records a top-level
    /// `concern:<name>` span (so the span order in the trace *is* the
    /// application order — the paper's precedence rule as a checkable
    /// trace property), with the CMT's own span and model-delta events
    /// nested inside, and [`MdaLifecycle::generate`] records the
    /// codegen and weave phases.
    pub fn set_collector(&mut self, obs: comet_obs::Collector) {
        self.obs = obs;
    }

    /// The attached collector (disabled by default).
    pub fn collector(&self) -> &comet_obs::Collector {
        &self.obs
    }

    /// The current model (PIM refined into an increasingly specific PSM).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The model repository (versions, tags, diffs).
    pub fn repository(&self) -> &Repository {
        self.repo.as_repository()
    }

    /// Mutable repository access (tagging, branching, arming test
    /// faults). In durable mode this bypasses the journal — commits and
    /// undos must go through the lifecycle itself.
    pub fn repository_mut(&mut self) -> &mut Repository {
        self.repo.as_repository_mut()
    }

    /// The workflow engine (guidance).
    pub fn workflow(&self) -> &WorkflowEngine {
        &self.workflow
    }

    /// Applied refinement steps, in application order.
    pub fn applied(&self) -> &[AppliedConcern] {
        &self.applied
    }

    /// The concern-oriented refinement step of the paper's Section 2:
    /// checks the workflow, specializes GMT_Ci **and** GA_Ci with one
    /// `Si`, applies the CMT (with pre/postconditions and automatic
    /// coloring), records the step in workflow and repository, and stores
    /// the CA for the code-generation phase.
    ///
    /// The step is **atomic across all three stores** (model,
    /// repository, workflow), staged then committed:
    ///
    /// 1. the workflow records the step up front — its constraint scan
    ///    is the single admission check (no separate `validate_sequence`
    ///    pass), and a violation rejects the step before the model is
    ///    touched;
    /// 2. the CMT applies under a change-journal segment held open
    ///    across the repository commit;
    /// 3. if the transformation *or* the repository fails, the journal
    ///    unwinds the model and the workflow record is compensated —
    ///    nothing observable remains of the step;
    /// 4. only after the repository accepted the new version (committed
    ///    from the journal's delta) is the journal released and the
    ///    step pushed onto `applied`.
    ///
    /// # Errors
    /// Model, repository, and workflow are all unchanged on any error.
    pub fn apply_concern(
        &mut self,
        pair: &ConcernPair,
        si: ParamSet,
    ) -> Result<&AppliedConcern, LifecycleError> {
        let obs = self.obs.clone();
        if !obs.is_enabled() {
            return self.apply_concern_inner(pair, si, &obs);
        }
        let span = obs.begin_span("lifecycle", &format!("concern:{}", pair.concern()), 0);
        obs.span_attr(span, "concern", pair.concern());
        let result = self.apply_concern_inner(pair, si, &obs);
        match &result {
            Ok(step) => {
                obs.span_attr(span, "cmt", &step.cmt.full_name());
                obs.span_attr(span, "si", &step.cmt.params().angle_signature());
                obs.span_attr(span, "outcome", "ok");
            }
            Err(e) => obs.span_attr(span, "outcome", &format!("error: {e}")),
        }
        obs.end_span(span, 0);
        result
    }

    fn apply_concern_inner(
        &mut self,
        pair: &ConcernPair,
        si: ParamSet,
        obs: &comet_obs::Collector,
    ) -> Result<&AppliedConcern, LifecycleError> {
        let (cmt, aspect) = pair.specialize(si)?;
        self.workflow.record(pair.concern())?;
        self.model.begin_journal();
        let report = match cmt.apply_incremental_traced(&mut self.model, obs, &mut self.conditions)
        {
            Ok(report) => report,
            Err(e) => {
                self.model.rollback_journal();
                self.workflow.unrecord(pair.concern());
                return Err(e.into());
            }
        };
        let delta = CommitDelta {
            created: report.created.clone(),
            modified: report.modified.clone(),
            removed: report.removed.clone(),
        };
        if let Err(e) =
            self.repo.commit_with_delta(&self.model, &cmt.full_name(), Some(pair.concern()), delta)
        {
            self.model.rollback_journal();
            // The condition cache saw the now-unwound delta; drop it.
            self.conditions.invalidate_all();
            self.workflow.unrecord(pair.concern());
            return Err(e.into());
        }
        // Fold this step's delta (the whole outer segment) into the
        // dirty set the weave cache consumes at the next `generate`.
        match self.model.journal_dirty() {
            Some(delta) => {
                if let Some(acc) = self.dirty_since.borrow_mut().as_mut() {
                    acc.merge(&delta);
                }
            }
            None => *self.dirty_since.borrow_mut() = None,
        }
        self.model.commit_journal();
        self.applied.push(AppliedConcern { cmt, aspect, report });
        Ok(self.applied.last().expect("just pushed"))
    }

    /// Undoes the most recent refinement step: repository undo, workflow
    /// rewind, aspect removal.
    ///
    /// All fallible work happens before any state is touched: the
    /// shortened workflow is replayed into a scratch engine first, the
    /// repository steps back second (rolled forward again if its
    /// snapshot fails to decode), and only then are model, workflow,
    /// and the `applied` record swapped — so a failed undo never loses
    /// the step it could not undo.
    ///
    /// # Errors
    /// Fails when nothing was applied, the snapshot is corrupt, or the
    /// remaining sequence no longer replays
    /// ([`LifecycleError::WorkflowReplay`]); the lifecycle state is
    /// unchanged on every error.
    pub fn undo_last(&mut self) -> Result<(), LifecycleError> {
        if self.applied.is_empty() {
            return Err(LifecycleError::NothingToUndo);
        }
        // Rebuild the workflow state minus the undone step, before
        // anything is mutated.
        let mut engine = WorkflowEngine::new(self.workflow.model().clone());
        for step in &self.applied[..self.applied.len() - 1] {
            engine.record(step.cmt.concern()).map_err(|source| LifecycleError::WorkflowReplay {
                concern: step.cmt.concern().to_owned(),
                source,
            })?;
        }
        let restored = match self.repo.undo() {
            None => return Err(LifecycleError::NothingToUndo),
            // `Repository::undo` is atomic — the head position does
            // not move on error — so nothing needs compensating here.
            Some(Err(e)) => return Err(LifecycleError::Repo(e)),
            Some(Ok(model)) => model,
        };
        // Commit point: everything fallible is done.
        self.applied.pop();
        self.workflow = engine;
        self.model = restored;
        // The restored snapshot is a fresh model instance (its revision
        // counter restarts), so both incrementality caches are stale.
        // The generation cache only drops its revision memo — entries
        // are content-addressed, so the restored state re-hits the
        // artifacts rendered before the undone step.
        self.conditions.invalidate_all();
        *self.weave_cache.borrow_mut() = None;
        *self.dirty_since.borrow_mut() = Some(DirtySet::default());
        self.gen_cache.borrow_mut().forget_revision();
        Ok(())
    }

    /// The concrete aspects in precedence order (= application order).
    pub fn aspects(&self) -> Vec<Aspect> {
        self.applied.iter().map(|a| a.aspect.clone()).collect()
    }

    /// The paper's code-generation phase: functional code generator for
    /// the functional model **plus** aspect generators for the concerns,
    /// then weaving with precedence = transformation order, then the
    /// chosen `backend` rendering its artifact through the
    /// content-addressed generation cache (an unchanged model is an
    /// O(1) cache hit whose artifact is byte-identical to a cold
    /// render; hits/misses surface as `gen.cache.hit|miss` trace
    /// counters and via [`MdaLifecycle::gen_cache_stats`]).
    ///
    /// # Errors
    /// Propagates weaving failures.
    pub fn generate(
        &self,
        bodies: &BodyProvider,
        backend: Backend,
    ) -> Result<GeneratedSystem, LifecycleError> {
        let obs = &self.obs;
        let phase = obs.begin_span("lifecycle", "generate", 0);
        let fspan = obs.begin_span("codegen", "functional", 0);
        let functional = FunctionalGenerator::new().generate(&self.model, bodies);
        if obs.is_enabled() {
            obs.span_attr(fspan, "classes", &functional.classes.len().to_string());
        }
        obs.end_span(fspan, 0);
        let aspects = self.aspects();
        // Reuse (or rebuild) the incremental weaver for this aspect
        // list, feed it the dirty classes accumulated since the last
        // generation, and splice everything else from the cached weave.
        let fingerprint: Vec<String> = aspects.iter().map(|a| a.name.clone()).collect();
        let mut cache = self.weave_cache.borrow_mut();
        let state = match cache.as_mut() {
            Some(state) if state.fingerprint == fingerprint => state,
            _ => {
                *cache = Some(WeaveCacheState {
                    fingerprint,
                    weaver: IncrementalWeaver::new(Weaver::new(aspects.clone())),
                });
                cache.as_mut().expect("just stored")
            }
        };
        let dirty_classes = {
            let dirty = self.dirty_since.borrow();
            dirty.as_ref().and_then(|d| d.dirty_classes(&self.model))
        };
        let weave = state.weaver.weave_at_traced(
            self.model.revision(),
            &functional,
            dirty_classes.as_ref(),
            obs,
        );
        let (result, stats) = match weave {
            Ok(r) => r,
            Err(e) => {
                if obs.is_enabled() {
                    obs.span_attr(phase, "outcome", &format!("error: {e}"));
                }
                obs.end_span(phase, 0);
                return Err(e.into());
            }
        };
        // The cache now matches the current model: start a fresh delta.
        *self.dirty_since.borrow_mut() = Some(DirtySet::default());
        if stats.hit {
            self.weave_hits.set(self.weave_hits.get() + 1);
        } else {
            self.weave_misses.set(self.weave_misses.get() + 1);
        }
        if obs.is_enabled() {
            obs.incr(if stats.hit { "weave.incremental.hit" } else { "weave.incremental.miss" }, 1);
            obs.incr("weave.incremental.rewoven", stats.rewoven as u64);
            obs.incr("weave.incremental.total", stats.total as u64);
        }
        let rspan = obs.begin_span("codegen", "render:aspects", 0);
        let aspectj = AspectJBackend::new();
        let aspect_sources: Vec<(String, String)> =
            aspects.iter().map(|a| (a.name.clone(), aspectj.render(a))).collect();
        if obs.is_enabled() {
            obs.span_attr(rspan, "aspects", &aspect_sources.len().to_string());
        }
        obs.end_span(rspan, 0);
        // Backend dispatch through the per-lifecycle factory, behind
        // the content-addressed cache: key = (model content hash,
        // bodies fingerprint, backend id, applied concerns in
        // precedence order).
        let generator =
            self.factory.get(backend).expect("standard factory registers every Backend variant");
        let concerns: Vec<String> =
            self.applied.iter().map(|a| a.cmt.concern().to_owned()).collect();
        let input = GenInput {
            model: &self.model,
            functional: &functional,
            woven: &result.program,
            concerns: &concerns,
            bodies,
        };
        let (artifact, cache_hit) = self.gen_cache.borrow_mut().render(generator, &input);
        if obs.is_enabled() {
            obs.incr(if cache_hit { "gen.cache.hit" } else { "gen.cache.miss" }, 1);
        }
        obs.end_span(phase, 0);
        Ok(GeneratedSystem {
            functional_source: pretty_print(&functional),
            functional,
            woven: result.program.clone(),
            aspect_sources,
            weave_trace: result.trace.clone(),
            backend,
            artifact,
        })
    }

    /// The baseline the paper argues against: one monolithic generator
    /// consuming the most-specialized PSM, concern code inlined.
    pub fn generate_monolithic(&self, bodies: &BodyProvider) -> Program {
        MonolithicGenerator::new().generate(&self.model, bodies)
    }

    /// The per-concern "colors" report for the current model.
    pub fn colors(&self) -> ColorReport {
        ColorReport::for_model(&self.model)
    }

    /// Remaining planned concerns (workflow guidance).
    pub fn remaining_concerns(&self) -> Vec<&str> {
        self.workflow.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_concerns::{distribution, security, transactions};
    use comet_model::sample::banking_pim;
    use comet_transform::ParamValue;
    use comet_workflow::WorkflowModel;

    fn fig2_workflow() -> WorkflowModel {
        WorkflowModel::new("fig2")
            .step("distribution", false)
            .step("transactions", false)
            .step("security", false)
    }

    fn dist_si() -> ParamSet {
        ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with("operations", ParamValue::from(vec!["transfer".to_owned()]))
    }

    fn tx_si() -> ParamSet {
        ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
    }

    fn sec_si() -> ParamSet {
        ParamSet::new().with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]))
    }

    fn full_lifecycle() -> MdaLifecycle {
        let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
        mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
        mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        mda.apply_concern(&security::pair(), sec_si()).unwrap();
        mda
    }

    #[test]
    fn three_concern_pipeline_runs() {
        let mda = full_lifecycle();
        assert_eq!(mda.applied().len(), 3);
        assert!(mda.workflow().is_complete());
        assert!(mda.remaining_concerns().is_empty());
        // Repository: initial + three commits.
        assert_eq!(mda.repository().log().len(), 4);
        // Colors: distribution created elements; tx/sec only modified.
        let colors = mda.colors();
        assert!(colors.count("distribution") > 0);
        assert_eq!(colors.covered(), vec!["distribution"], "only creating concerns show as colors");
    }

    #[test]
    fn aspect_precedence_follows_application_order() {
        let mda = full_lifecycle();
        let names: Vec<String> = mda.aspects().iter().map(|a| a.name.clone()).collect();
        assert!(names[0].starts_with("distribution-aspect<"));
        assert!(names[1].starts_with("transactions-aspect<"));
        assert!(names[2].starts_with("security-aspect<"));
    }

    #[test]
    fn generate_weaves_all_aspects() {
        let mda = full_lifecycle();
        let system = mda.generate(&BodyProvider::default(), Backend::JavaFunctional).unwrap();
        assert_eq!(system.aspect_sources.len(), 3);
        assert!(system.functional_source.contains("class Bank"));
        // transfer was advised by all three concerns.
        let advising: Vec<&str> = system
            .weave_trace
            .iter()
            .filter(|jp| jp.method == "transfer")
            .map(|jp| jp.aspect.as_str())
            .collect();
        assert_eq!(advising.len(), 3);
        assert!(comet_codegen::check_program(&system.woven).is_empty());
    }

    #[test]
    fn trace_concern_spans_follow_application_order() {
        let obs = comet_obs::Collector::enabled();
        let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
        mda.set_collector(obs.clone());
        mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
        mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        mda.apply_concern(&security::pair(), sec_si()).unwrap();
        mda.generate(&BodyProvider::default(), Backend::JavaFunctional).unwrap();
        let trace = obs.take();
        // §3: CMT application order = aspect precedence. In the trace
        // that is the top-level span order.
        let roots: Vec<&str> = trace.roots().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            roots,
            ["concern:distribution", "concern:transactions", "concern:security", "generate"]
        );
        for root in trace.roots().into_iter().filter(|s| s.name.starts_with("concern:")) {
            let kids = trace.children(root.id);
            assert!(
                kids.iter().any(|c| c.cat == "transform"),
                "concern span {} nests its CMT application",
                root.name
            );
            assert_eq!(comet_obs::Trace::attr(&root.attrs, "outcome"), Some("ok"));
        }
        // The generate phase nests codegen and the weave pass.
        let generate = trace.roots().into_iter().find(|s| s.name == "generate").unwrap();
        let cats: Vec<&str> = trace.children(generate.id).iter().map(|s| s.cat.as_str()).collect();
        assert_eq!(cats, ["codegen", "weave", "codegen"]);
    }

    #[test]
    fn repeated_generate_hits_the_weave_cache_byte_identically() {
        let obs = comet_obs::Collector::enabled();
        let mut mda = full_lifecycle();
        mda.set_collector(obs.clone());
        let bodies = BodyProvider::default();
        let first = mda.generate(&bodies, Backend::JavaFunctional).unwrap();
        let second = mda.generate(&bodies, Backend::JavaFunctional).unwrap();
        assert_eq!(first.woven, second.woven);
        assert_eq!(first.weave_trace, second.weave_trace);
        let trace = obs.take();
        assert_eq!(trace.counters.get("weave.incremental.miss"), Some(&1));
        assert_eq!(trace.counters.get("weave.incremental.hit"), Some(&1));
        // The hit re-wove nothing; only the first (cold) weave worked.
        let total = trace.counters["weave.incremental.total"];
        assert_eq!(trace.counters["weave.incremental.rewoven"], total / 2);
    }

    #[test]
    fn repeated_generate_hits_the_gen_cache_byte_identically() {
        let obs = comet_obs::Collector::enabled();
        let mut mda = full_lifecycle();
        mda.set_collector(obs.clone());
        let bodies = BodyProvider::default();
        let first = mda.generate(&bodies, Backend::RustSkeleton).unwrap();
        let second = mda.generate(&bodies, Backend::RustSkeleton).unwrap();
        assert_eq!(first.artifact, second.artifact, "hit must be byte-identical to cold render");
        assert_eq!(second.backend, Backend::RustSkeleton);
        assert_eq!(mda.gen_cache_stats(), (1, 1));
        let trace = obs.take();
        assert_eq!(trace.counters.get("gen.cache.miss"), Some(&1));
        assert_eq!(trace.counters.get("gen.cache.hit"), Some(&1));
        // A different backend at the same revision is its own entry.
        mda.generate(&bodies, Backend::Report).unwrap();
        assert_eq!(mda.gen_cache_stats(), (1, 2));
        assert_eq!(mda.generator_factory().len(), Backend::ALL.len());
    }

    #[test]
    fn undo_then_generate_re_hits_content_addressed_artifacts() {
        let bodies = BodyProvider::default();
        let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
        mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
        let before = mda.generate(&bodies, Backend::JavaFunctional).unwrap().artifact;
        mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        mda.generate(&bodies, Backend::JavaFunctional).unwrap();
        mda.undo_last().unwrap();
        // The restored snapshot has the original content, so the entry
        // rendered before the undone step re-hits — byte-identically —
        // even though the revision counter restarted.
        let after = mda.generate(&bodies, Backend::JavaFunctional).unwrap();
        assert_eq!(after.artifact, before);
        assert_eq!(mda.gen_cache_stats(), (1, 2));
    }

    #[test]
    fn incremental_generate_stays_equal_across_apply_and_undo() {
        // Drive the cache through its invalidation paths and check the
        // result against a fresh full weave every time.
        let bodies = BodyProvider::default();
        let oracle = |mda: &MdaLifecycle| {
            let functional = FunctionalGenerator::new().generate(mda.model(), &bodies);
            Weaver::new(mda.aspects()).weave(&functional).unwrap().program
        };
        let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
        mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
        assert_eq!(mda.generate(&bodies, Backend::JavaFunctional).unwrap().woven, oracle(&mda));
        mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        assert_eq!(mda.generate(&bodies, Backend::JavaFunctional).unwrap().woven, oracle(&mda));
        mda.undo_last().unwrap();
        assert_eq!(mda.generate(&bodies, Backend::JavaFunctional).unwrap().woven, oracle(&mda));
        mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        mda.apply_concern(&security::pair(), sec_si()).unwrap();
        assert_eq!(mda.generate(&bodies, Backend::JavaFunctional).unwrap().woven, oracle(&mda));
        // And a repeat at an unchanged model is still the same bytes.
        assert_eq!(mda.generate(&bodies, Backend::JavaFunctional).unwrap().woven, oracle(&mda));
    }

    #[test]
    fn workflow_violation_rejected_and_model_untouched() {
        let workflow =
            WorkflowModel::new("w").step("distribution", false).step("security", false).constraint(
                comet_workflow::OrderConstraint::Before("distribution".into(), "security".into()),
            );
        let mut mda = MdaLifecycle::new(banking_pim(), workflow).unwrap();
        let before = mda.model().clone();
        let err = mda.apply_concern(&security::pair(), sec_si()).unwrap_err();
        assert!(matches!(err, LifecycleError::Workflow(_)));
        assert_eq!(mda.model(), &before);
        assert_eq!(mda.applied().len(), 0);
    }

    #[test]
    fn failed_transformation_leaves_no_trace() {
        let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
        let bad_si =
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.launder".to_owned()]));
        let before = mda.model().clone();
        assert!(mda.apply_concern(&transactions::pair(), bad_si).is_err());
        assert_eq!(mda.model(), &before);
        assert_eq!(mda.repository().log().len(), 1);
        assert!(mda.workflow().applied().is_empty());
    }

    #[test]
    fn undo_last_restores_everything() {
        let mut mda = full_lifecycle();
        mda.undo_last().unwrap();
        assert_eq!(mda.applied().len(), 2);
        assert_eq!(mda.aspects().len(), 2);
        assert_eq!(mda.workflow().applied().len(), 2);
        // Security marks are gone from the model.
        let bank = mda.model().find_class("Bank").unwrap();
        let transfer = mda.model().find_operation(bank, "transfer").unwrap();
        assert!(!mda.model().has_stereotype(transfer, "Secured").unwrap());
        assert!(mda.model().has_stereotype(transfer, "Transactional").unwrap());
        // Undo everything.
        mda.undo_last().unwrap();
        mda.undo_last().unwrap();
        assert!(matches!(mda.undo_last(), Err(LifecycleError::NothingToUndo)));
        assert_eq!(mda.model(), &banking_pim());
    }

    #[test]
    fn error_sources_chain_instead_of_flattening() {
        use std::error::Error;
        let err = LifecycleError::Transform(TransformError::PreconditionFailed {
            transformation: "AddTx".into(),
            condition: "self.isTransactional = false".into(),
        });
        // Display stays the flattened human line...
        assert!(err.to_string().starts_with("transformation: "));
        // ...but source() walks the typed chain.
        let inner = err.source().expect("Transform wraps a source");
        assert!(inner.is::<TransformError>());
        let inner = inner.downcast_ref::<TransformError>().unwrap();
        assert!(matches!(inner, TransformError::PreconditionFailed { .. }));
        assert!(LifecycleError::NothingToUndo.source().is_none());
    }

    #[test]
    fn monolithic_baseline_differs_structurally() {
        let mda = full_lifecycle();
        let bodies = BodyProvider::default();
        let mono = mda.generate_monolithic(&bodies);
        let system = mda.generate(&bodies, Backend::JavaFunctional).unwrap();
        assert_ne!(mono, system.woven);
        // Both contain transactional machinery for Bank.transfer.
        let mono_src = pretty_print(&mono);
        let woven_src = pretty_print(&system.woven);
        assert!(mono_src.contains("tx.begin"));
        assert!(woven_src.contains("tx.begin"));
    }
}
