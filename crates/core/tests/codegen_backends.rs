//! Integration tests for the generator factory and the
//! content-addressed generation cache across the full stack: every
//! backend renders the complete functional element set from a real
//! lifecycle, cached artifacts stay byte-identical to direct renders
//! under arbitrary apply/undo/generate interleavings, and serve runs
//! with backend-weighted `Generate` traffic remain shard-invariant
//! with the gen cache observable in both trace counters and the
//! Prometheus exposition.

use comet::chaos::{banking_bodies, executable_banking_pim};
use comet::{
    run_banking_serve, run_banking_serve_cfg, Backend, GenInput, GeneratorFactory, MdaLifecycle,
};
use comet_serve::{RunConfig, ServeError, WorkloadPlan, WorkloadPlanError};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use proptest::prelude::*;

fn fig2_workflow() -> WorkflowModel {
    WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
}

/// The fig. 2 `(concern, Si)` bindings against the executable PIM.
fn fig2_steps() -> [(&'static str, ParamSet); 3] {
    [
        (
            "distribution",
            ParamSet::new()
                .with("server_class", ParamValue::from("Bank"))
                .with("node", ParamValue::from("server"))
                .with(
                    "operations",
                    ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]),
                ),
        ),
        (
            "transactions",
            ParamSet::new()
                .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
                .with("isolation", ParamValue::from("serializable")),
        ),
        (
            "security",
            ParamSet::new()
                .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()])),
        ),
    ]
}

fn full_lifecycle() -> MdaLifecycle {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), fig2_workflow()).unwrap();
    for (name, si) in fig2_steps() {
        let pair = comet_concerns::by_name(name).expect("standard concern");
        mda.apply_concern(&pair, si).unwrap();
    }
    mda
}

/// Renders `mda`'s current state directly through the backend,
/// bypassing the lifecycle's cache — the oracle every cached artifact
/// must match byte for byte.
fn direct_render(mda: &MdaLifecycle, backend: Backend, system: &comet::GeneratedSystem) -> String {
    let factory = GeneratorFactory::with_standard_backends();
    let generator = factory.get(backend).expect("standard backend");
    let concerns: Vec<String> = mda.applied().iter().map(|a| a.cmt.concern().to_owned()).collect();
    let input = GenInput {
        model: mda.model(),
        functional: &system.functional,
        woven: &system.woven,
        concerns: &concerns,
        bodies: &banking_bodies(),
    };
    generator.generate(&input)
}

#[test]
fn every_backend_renders_the_full_lifecycle_element_set() {
    let mda = full_lifecycle();
    for backend in Backend::ALL {
        let system = mda.generate(&banking_bodies(), backend).unwrap();
        assert_eq!(system.backend, backend);
        for needle in ["Bank", "Account", "transfer", "getBalance"] {
            assert!(
                system.artifact.contains(needle),
                "{backend}: artifact misses functional element `{needle}`"
            );
        }
    }
    // All four backends ran against one lifecycle: four distinct
    // artifacts cached, each a cold miss.
    assert_eq!(mda.gen_cache_stats(), (0, Backend::ALL.len() as u64));
}

#[test]
fn cached_artifacts_match_direct_renders_and_rehit_after_undo() {
    let mda = &mut full_lifecycle();
    let first = mda.generate(&banking_bodies(), Backend::RustSkeleton).unwrap();
    assert_eq!(first.artifact, direct_render(mda, Backend::RustSkeleton, &first));
    // Repeat at an unchanged model: a hit, byte-identical.
    let again = mda.generate(&banking_bodies(), Backend::RustSkeleton).unwrap();
    assert_eq!(first.artifact, again.artifact);
    let (hits, misses) = mda.gen_cache_stats();
    assert_eq!((hits, misses), (1, 1));
    // Undo one concern: different content, different artifact, miss.
    mda.undo_last().unwrap();
    let undone = mda.generate(&banking_bodies(), Backend::RustSkeleton).unwrap();
    assert_ne!(first.artifact, undone.artifact);
    assert_eq!(undone.artifact, direct_render(mda, Backend::RustSkeleton, &undone));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lying-revision guard, end to end: across arbitrary interleavings
    /// of apply / undo / generate, every artifact served (cache hit or
    /// cold render alike) is byte-identical to a direct render of the
    /// lifecycle's current state through a factory with no cache at
    /// all.
    #[test]
    fn cache_served_artifacts_equal_direct_renders(
        ops in prop::collection::vec(0usize..6, 1..14),
    ) {
        let mut mda = MdaLifecycle::new(executable_banking_pim(), fig2_workflow()).unwrap();
        let steps = fig2_steps();
        let mut next_step = 0usize;
        for op in ops {
            match op {
                // Apply the next planned concern, if any remain.
                0 => {
                    if next_step < steps.len() {
                        let (name, si) = &steps[next_step];
                        let pair = comet_concerns::by_name(name).expect("standard concern");
                        mda.apply_concern(&pair, si.clone()).unwrap();
                        next_step += 1;
                    }
                }
                // Undo the most recent application, if any.
                1 => {
                    if next_step > 0 {
                        mda.undo_last().unwrap();
                        next_step -= 1;
                    }
                }
                // Generate with one of the four backends.
                k => {
                    let backend = Backend::ALL[(k - 2) % Backend::ALL.len()];
                    let system = mda.generate(&banking_bodies(), backend).unwrap();
                    let oracle = direct_render(&mda, backend, &system);
                    prop_assert_eq!(&system.artifact, &oracle, "{} diverged from oracle", backend);
                }
            }
        }
    }
}

#[test]
fn backend_weighted_serve_is_shard_invariant_with_observable_gen_cache() {
    let mut plan = WorkloadPlan::new(7);
    plan.mix.generate = 2.0;
    plan.mix.generate_backends = Backend::ALL.iter().map(|b| (b.id().to_owned(), 1.0)).collect();
    let cfg = RunConfig { traced: true, metrics: true };
    let baseline = run_banking_serve_cfg(&plan, 1, None, &cfg).expect("valid plan");
    for shards in [2usize, 4, 8] {
        let other = run_banking_serve_cfg(&plan, shards, None, &cfg).expect("valid plan");
        assert_eq!(baseline.report, other.report, "report diverged at {shards} shards");
        assert_eq!(baseline.trace, other.trace, "trace diverged at {shards} shards");
        assert_eq!(baseline.metrics, other.metrics, "metrics diverged at {shards} shards");
    }
    // The gen cache is live on the serve path and observable twice:
    // trace counters and the bridged Prometheus series agree.
    let trace = baseline.trace.as_ref().expect("traced run");
    let hits = trace.counters.get("gen.cache.hit").copied().unwrap_or(0);
    let misses = trace.counters.get("gen.cache.miss").copied().unwrap_or(0);
    assert!(misses > 0, "no generate ever rendered: {:?}", trace.counters);
    assert!(hits > 0, "steady-state generates never hit the gen cache: {:?}", trace.counters);
    let snap = baseline.metrics.as_ref().expect("metrics on");
    let total = |name: &str| -> u64 {
        snap.counters.iter().filter(|(k, _)| k.name == name).map(|(_, &v)| v).sum()
    };
    assert_eq!(total("comet_serve_gen_cache_hits_total"), hits);
    assert_eq!(total("comet_serve_gen_cache_misses_total"), misses);
    let prom = snap.to_prometheus();
    assert!(prom.contains("comet_serve_gen_cache_hits_total{"), "{prom}");
    // Every registered backend's artifact surfaced in some outcome.
    for backend in Backend::ALL {
        assert!(
            trace.spans.iter().any(|s| {
                comet_obs::Trace::attr(&s.attrs, "outcome")
                    .is_some_and(|o| o.starts_with(&format!("generated:{backend}:")))
            }),
            "weighted mix never exercised `{backend}`"
        );
    }
}

#[test]
fn plans_naming_unknown_backends_are_rejected_at_validation() {
    let mut plan = WorkloadPlan::new(7);
    plan.mix.generate_backends = vec![("fortran-punchcards".to_owned(), 1.0)];
    let err = run_banking_serve(&plan, 1, None, false).unwrap_err();
    match &err {
        ServeError::Plan(WorkloadPlanError::UnknownBackend(b)) => {
            assert_eq!(b, "fortran-punchcards");
        }
        other => panic!("expected UnknownBackend, got {other}"),
    }
    assert_eq!(
        err.to_string(),
        "workload plan: generate mix names unknown backend `fortran-punchcards`"
    );
}
