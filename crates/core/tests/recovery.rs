//! Crash-recovery chaos tests for the durable serving stack: a tenant
//! whose lifecycle dies mid-run (torn write-ahead-log tail and all)
//! replays the journal, recovers to the last committed operation, and
//! the run's report and trace come out byte-identical to an
//! uninterrupted run — at every shard count, under an active fault
//! plan.

use comet::{run_banking_serve, run_banking_serve_durable, KillPoint, MdaLifecycle};
use comet_middleware::FaultPlan;
use comet_model::sample::banking_pim;
use comet_repo::DurableRepository;
use comet_serve::{ServeOutcome, WorkloadPlan};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call (parallel tests, one process).
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "comet-recovery-{}-{}-{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir removable");
    }
    dir
}

/// The weave cache is per-lifecycle and a recovered lifecycle restarts
/// it cold, which shifts the `weave.incremental.*` trace counters — the
/// single piece of trace-observable cache state. A generate-free mix
/// removes it, making full traces comparable; results everywhere else
/// are byte-identical either way.
fn generate_free_plan() -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(7);
    plan.mix.apply += plan.mix.generate;
    plan.mix.generate = 0.0;
    plan
}

fn commit_fault_plan() -> FaultPlan {
    FaultPlan::parse_toml("seed = 7\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n")
        .expect("well-formed plan")
}

fn kill_t01_at(at_request: u64) -> KillPoint {
    KillPoint { tenant: "t01".to_owned(), at_request }
}

fn run_durable(plan: &WorkloadPlan, shards: usize, kill: Option<KillPoint>) -> (ServeOutcome, u64) {
    let dir = tmp("run");
    let out = run_banking_serve_durable(plan, shards, Some(commit_fault_plan()), true, &dir, kill)
        .expect("valid plan");
    std::fs::remove_dir_all(&dir).expect("scratch dir removable");
    out
}

#[test]
fn crashed_tenant_recovers_byte_identically_across_shard_counts() {
    let plan = generate_free_plan();
    let mut baselines = Vec::new();
    for shards in [1usize, 4] {
        let (baseline, recoveries) = run_durable(&plan, shards, None);
        assert_eq!(recoveries, 0, "no kill, no recovery");
        let (killed, recoveries) = run_durable(&plan, shards, Some(kill_t01_at(3)));
        assert_eq!(recoveries, 1, "the kill point fires exactly once");
        assert_eq!(baseline.report, killed.report, "report diverged at {shards} shards");
        assert_eq!(baseline.trace, killed.trace, "trace diverged at {shards} shards");
        baselines.push(baseline);
    }
    // The durable baseline is itself shard-invariant...
    assert_eq!(baselines[0].report, baselines[1].report);
    assert_eq!(baselines[0].trace, baselines[1].trace);
    // ...and identical to the in-memory engine: journalling is free of
    // observable behaviour.
    let in_memory =
        run_banking_serve(&plan, 1, Some(commit_fault_plan()), true).expect("valid plan");
    assert_eq!(in_memory.report, baselines[0].report);
    assert_eq!(in_memory.trace, baselines[0].trace);
}

#[test]
fn recovery_point_sweep_never_perturbs_the_run() {
    // Chaos-style sweep: crash the tenant at several points in its
    // request stream; every recovered run must match the baseline.
    let plan = generate_free_plan();
    let (baseline, _) = run_durable(&plan, 2, None);
    for at_request in [1u64, 4, 8] {
        let (killed, recoveries) = run_durable(&plan, 2, Some(kill_t01_at(at_request)));
        assert_eq!(recoveries, 1, "kill at request {at_request} never fired");
        assert_eq!(baseline.report, killed.report, "report diverged for kill at {at_request}");
        assert_eq!(baseline.trace, killed.trace, "trace diverged for kill at {at_request}");
    }
}

#[test]
fn generate_heavy_runs_recover_with_identical_reports() {
    // With `Generate` in the mix the recovered tenant re-weaves cold
    // where the uninterrupted one hits its cache — visible only in the
    // trace counters. The report (the service-level contract) must
    // still be byte-identical.
    let plan = WorkloadPlan::new(9);
    let (baseline, _) = run_durable(&plan, 4, None);
    let (killed, recoveries) = run_durable(&plan, 4, Some(kill_t01_at(2)));
    assert_eq!(recoveries, 1);
    assert_eq!(baseline.report, killed.report);
}

#[test]
fn served_tenants_leave_fsck_clean_journals_and_resume_across_restarts() {
    let plan = generate_free_plan();
    let dir = tmp("restart");
    let (first, recoveries) =
        run_banking_serve_durable(&plan, 2, None, false, &dir, None).expect("valid plan");
    assert_eq!(recoveries, 0);
    assert!(first.report.completed > 0);
    for tenant in plan.tenant_names() {
        let fsck = DurableRepository::fsck(&dir.join(&tenant)).expect("journal opens");
        assert!(fsck.ok(), "tenant {tenant} journal corrupt after clean run:\n{fsck}");
    }
    // A second run over the same data dir resumes every tenant from its
    // journal instead of starting over, and completes normally.
    let (second, recoveries) =
        run_banking_serve_durable(&plan, 2, None, false, &dir, None).expect("valid plan");
    assert_eq!(recoveries, 0, "resuming from a clean journal is not a crash recovery");
    assert!(second.report.completed > 0);
    for tenant in plan.tenant_names() {
        let fsck = DurableRepository::fsck(&dir.join(&tenant)).expect("journal opens");
        assert!(fsck.ok(), "tenant {tenant} journal corrupt after resumed run:\n{fsck}");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removable");
}

fn fig2_workflow() -> WorkflowModel {
    WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
}

fn test_si(concern: &str) -> ParamSet {
    match concern {
        "distribution" => ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with("operations", ParamValue::from(vec!["transfer".to_owned()])),
        "transactions" => {
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        }
        "security" => ParamSet::new()
            .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()])),
        other => panic!("no test Si for `{other}`"),
    }
}

fn resolver(concern: &str) -> Option<(comet_aspectgen::ConcernPair, ParamSet)> {
    comet_concerns::by_name(concern).map(|pair| (pair, test_si(concern)))
}

#[test]
fn lifecycle_recovers_applied_concerns_and_keeps_refining() {
    let dir = tmp("lifecycle");
    // An in-memory twin drives the same operations as the oracle.
    let mut twin = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    {
        let mut mda = MdaLifecycle::new_durable(banking_pim(), fig2_workflow(), &dir).unwrap();
        for concern in ["distribution", "transactions"] {
            let (pair, si) = resolver(concern).unwrap();
            mda.apply_concern(&pair, si).unwrap();
            let (pair, si) = resolver(concern).unwrap();
            twin.apply_concern(&pair, si).unwrap();
        }
        mda.undo_last().unwrap();
        twin.undo_last().unwrap();
        assert!(mda.is_durable());
        // The lifecycle is dropped here: only the journal survives.
    }
    let (mut mda, report) = MdaLifecycle::recover(&dir, fig2_workflow(), resolver).unwrap();
    assert!(report.clean(), "a clean shutdown leaves nothing to truncate");
    assert_eq!(mda.model(), twin.model());
    assert_eq!(mda.applied().len(), 1);
    assert_eq!(mda.applied()[0].cmt.concern(), "distribution");
    assert_eq!(mda.remaining_concerns(), twin.remaining_concerns());
    assert_eq!(mda.repository().log().len(), twin.repository().log().len());
    assert_eq!(mda.aspects().len(), 1);
    // The recovered lifecycle keeps refining where it left off.
    let (pair, si) = resolver("transactions").unwrap();
    mda.apply_concern(&pair, si).unwrap();
    let (pair, si) = resolver("transactions").unwrap();
    twin.apply_concern(&pair, si).unwrap();
    assert_eq!(mda.model(), twin.model());
    let fsck = DurableRepository::fsck(&dir).expect("journal opens");
    assert!(fsck.ok(), "journal corrupt after recovered refinement:\n{fsck}");
    std::fs::remove_dir_all(&dir).expect("scratch dir removable");
}

#[test]
fn torn_journal_tail_recovers_to_the_last_committed_step() {
    let dir = tmp("torn");
    {
        let mut mda = MdaLifecycle::new_durable(banking_pim(), fig2_workflow(), &dir).unwrap();
        let (pair, si) = resolver("distribution").unwrap();
        mda.apply_concern(&pair, si).unwrap();
    }
    // Crash mid-append: the journal claims a record it never delivered.
    DurableRepository::simulate_torn_tail(&dir).unwrap();
    let (mda, report) = MdaLifecycle::recover(&dir, fig2_workflow(), resolver).unwrap();
    assert!(!report.clean(), "the torn tail must be detected and truncated");
    assert_eq!(mda.applied().len(), 1, "the committed step survives the torn tail");
    assert_eq!(mda.repository().log().len(), 2, "initial PIM + one concern commit");
    std::fs::remove_dir_all(&dir).expect("scratch dir removable");
}
