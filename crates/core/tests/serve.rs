//! Integration tests for `comet-serve` driving real banking sessions:
//! determinism across shard and thread counts, bounded-queue
//! backpressure, graceful per-request fault degradation, and §3
//! precedence of the per-tenant applied concerns.

use comet::{run_banking_serve, SERVE_WORKFLOW};
use comet_middleware::FaultPlan;
use comet_serve::{ServeOutcome, WorkloadPlan};

fn run(plan: &WorkloadPlan, shards: usize, faults: Option<FaultPlan>) -> ServeOutcome {
    run_banking_serve(plan, shards, faults, true).expect("valid plan")
}

fn commit_fault_plan() -> FaultPlan {
    FaultPlan::parse_toml("seed = 7\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n")
        .expect("well-formed plan")
}

#[test]
fn report_and_trace_are_identical_across_shard_counts() {
    let plan = WorkloadPlan::new(7);
    let baseline = run(&plan, 1, None);
    for shards in [2, 4, 8] {
        let other = run(&plan, shards, None);
        assert_eq!(baseline.report, other.report, "report diverged at {shards} shards");
        assert_eq!(
            baseline.report.to_json(),
            other.report.to_json(),
            "json diverged at {shards} shards"
        );
        assert_eq!(baseline.trace, other.trace, "trace diverged at {shards} shards");
    }
}

#[test]
fn report_is_identical_across_worker_thread_counts() {
    let plan = WorkloadPlan::new(11);
    let mut outcomes = Vec::new();
    for threads in [1usize, 2, 4] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds");
        outcomes.push(pool.install(|| run(&plan, 4, None)));
    }
    assert_eq!(outcomes[0].report, outcomes[1].report);
    assert_eq!(outcomes[0].report, outcomes[2].report);
    assert_eq!(outcomes[0].trace, outcomes[1].trace);
    assert_eq!(outcomes[0].trace, outcomes[2].trace);
}

#[test]
fn faulted_runs_stay_deterministic_across_shard_counts() {
    let plan = WorkloadPlan::new(7);
    let a = run(&plan, 1, Some(commit_fault_plan()));
    let b = run(&plan, 4, Some(commit_fault_plan()));
    assert_eq!(a.report, b.report);
    assert_eq!(a.trace, b.trace);
    // The plan actually fired somewhere: the per-tenant fault logs are
    // folded into the report, so a silent no-op plan would show here.
    let records: u64 = a.report.tenants.values().map(|t| t.fault_records).sum();
    assert!(records > 0, "scheduled fault never fired");
}

#[test]
fn faults_degrade_individual_requests_not_the_run() {
    let plan = WorkloadPlan::new(7);
    let clean = run(&plan, 2, None);
    let faulted = run(&plan, 2, Some(commit_fault_plan()));

    // Admission is independent of execution outcomes: the same requests
    // are issued either way, and every admitted request still finishes.
    assert_eq!(clean.report.issued, faulted.report.issued);
    assert_eq!(
        faulted.report.completed,
        faulted.report.ok + faulted.report.failed,
        "completed must split exactly into ok + failed"
    );
    assert!(
        faulted.report.failed >= clean.report.failed,
        "injected faults should only add failures ({} < {})",
        faulted.report.failed,
        clean.report.failed
    );
    // No tenant is poisoned: everyone keeps completing requests.
    for (tenant, stats) in &faulted.report.tenants {
        assert!(stats.completed > 0, "tenant {tenant} stopped serving");
    }
}

#[test]
fn bounded_queues_reject_with_overloaded_but_conserve_requests() {
    let mut plan = WorkloadPlan::new(3);
    plan.clients = 6;
    plan.limits.queue_depth = 1;
    plan.service.think_us = 10; // hammer the queue
    let outcome = run(&plan, 2, None);
    let r = &outcome.report;
    assert!(r.rejected > 0, "queue_depth=1 under 6 clients must shed load");
    assert_eq!(
        r.issued,
        r.completed + r.rejected + r.deadline_dropped,
        "every issued request is either completed, rejected, or shed"
    );
    assert_eq!(r.completed, r.ok + r.failed);
    // Rejection is per-request and recoverable: rejected clients back
    // off and retry, so tenants still make forward progress.
    for (tenant, stats) in &r.tenants {
        assert!(stats.completed > 0, "tenant {tenant} starved");
    }
}

#[test]
fn deadlines_shed_stale_requests() {
    let mut plan = WorkloadPlan::new(5);
    plan.clients = 6;
    plan.limits.deadline_us = 200;
    plan.service.think_us = 10;
    let outcome = run(&plan, 1, None);
    let r = &outcome.report;
    assert!(r.deadline_dropped > 0, "tight deadline under load must shed requests");
    assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
}

#[test]
fn applied_concerns_follow_section3_precedence_per_tenant() {
    let mut plan = WorkloadPlan::new(13);
    plan.requests = 24; // enough applies to walk the whole workflow
    plan.mix.apply = 0.6;
    plan.mix.undo = 0.0;
    let outcome = run(&plan, 4, None);
    for (tenant, stats) in &outcome.report.tenants {
        assert!(
            !stats.applied.is_empty(),
            "tenant {tenant} applied nothing under an apply-heavy mix"
        );
        // Application order = aspect precedence (§3): the applied list
        // must be a prefix of the serving workflow.
        assert_eq!(
            stats.applied.as_slice(),
            &SERVE_WORKFLOW[..stats.applied.len()],
            "tenant {tenant} applied concerns out of workflow order"
        );
    }
}

#[test]
fn traces_nest_requests_under_tenant_tagged_spans() {
    let plan = WorkloadPlan::new(7);
    let outcome = run(&plan, 2, None);
    let trace = outcome.trace.expect("traced run yields a trace");
    let request_spans: Vec<_> =
        trace.spans.iter().filter(|s| s.cat == "serve" && s.name == "serve.request").collect();
    assert_eq!(request_spans.len() as u64, outcome.report.completed);
    let tenant_names = plan.tenant_names();
    for span in &request_spans {
        let tenant = span
            .attrs
            .iter()
            .find(|(k, _)| k == "tenant")
            .map(|(_, v)| v.clone())
            .expect("request span tagged with its tenant");
        assert!(tenant_names.contains(&tenant), "unknown tenant {tenant}");
        assert!(span.attrs.iter().any(|(k, _)| k == "outcome"), "span missing outcome");
    }
    // Lifecycle spans from the sessions nest inside the serve spans:
    // the tenant's concern applications are visible in the same trace.
    assert!(
        trace.spans.iter().any(|s| s.name.starts_with("concern:")),
        "concern spans missing from the serve trace"
    );
}

#[test]
fn steady_state_generates_hit_the_per_tenant_weave_cache() {
    // Once a tenant's workflow is exhausted the workload keeps issuing
    // `Generate` at an unchanged model revision, so the per-tenant
    // incremental weave cache must convert those into full hits — and
    // the cached path must not perturb cross-shard determinism (checked
    // exhaustively by `report_and_trace_are_identical_across_shard_counts`).
    let plan = WorkloadPlan::new(7);
    let outcome = run(&plan, 2, None);
    let trace = outcome.trace.expect("traced run yields a trace");
    let hits = trace.counters.get("weave.incremental.hit").copied().unwrap_or(0);
    let misses = trace.counters.get("weave.incremental.miss").copied().unwrap_or(0);
    assert!(hits > 0, "steady-state generates never hit the weave cache: {:?}", trace.counters);
    // Every generate is classified exactly once.
    let generates: u64 =
        trace.spans.iter().filter(|s| s.cat == "lifecycle" && s.name == "generate").count() as u64;
    assert_eq!(hits + misses, generates, "hit/miss classification lost generates");
}
