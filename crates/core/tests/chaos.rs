//! Chaos property suite: the banking pipeline woven with
//! {distribution, transactions, faulttolerance} must degrade gracefully
//! under seeded fault plans — typed errors only, the balance sum
//! conserved, and identical fault logs for identical seeds. The suite
//! also pins the paper's §3 precedence claim to observable behavior:
//! FT applied before transactions retries whole transactions; applied
//! after, a failed commit must *not* be retried.
//!
//! Pinned-seed cases run in the default suite; the wide randomized
//! sweep is `#[ignore]`d and run by the dedicated CI chaos job.

use comet::{run_banking_chaos, ChaosConfig, FtOrder};
use comet_middleware::{FaultKind, FaultOp, FaultPlan};

/// Seeds pinned in CI: the chaos job runs exactly these.
const PINNED_SEEDS: [u64; 3] = [7, 1_234, 987_654_321];

/// A representative mixed plan: transient commit faults, occasional bus
/// transients and latency spikes.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_probability(FaultOp::TxCommit, 0.25)
        .with_probability(FaultOp::BusSend, 0.05)
        .with_probability(FaultOp::NamingLookup, 0.05)
        .with_latency_spike(0.2, 2_000)
}

fn chaos_config(seed: u64, order: FtOrder) -> ChaosConfig {
    ChaosConfig { seed, plan: mixed_plan(seed), order, transfers: 24, ..ChaosConfig::default() }
}

#[test]
fn pinned_seeds_degrade_gracefully_in_both_orders() {
    for seed in PINNED_SEEDS {
        for order in [FtOrder::FtOutsideTx, FtOrder::TxOutsideFt] {
            let report = run_banking_chaos(&chaos_config(seed, order)).unwrap();
            assert!(
                report.degraded_gracefully(),
                "seed {seed} order {order:?} violated the degradation contract:\n{report}"
            );
            assert_eq!(
                report.balance_a1 + report.balance_a2,
                1_050,
                "seed {seed} order {order:?} lost money:\n{report}"
            );
            // The mixed plan has a 25% commit-fault rate over 24
            // transfers; a run where nothing fired would mean the plan
            // is not actually installed.
            assert!(
                !report.fault_log.is_empty(),
                "seed {seed} order {order:?} injected nothing:\n{report}"
            );
        }
    }
}

#[test]
fn same_seed_same_fault_log_and_report() {
    for seed in PINNED_SEEDS {
        let a = run_banking_chaos(&chaos_config(seed, FtOrder::FtOutsideTx)).unwrap();
        let b = run_banking_chaos(&chaos_config(seed, FtOrder::FtOutsideTx)).unwrap();
        assert_eq!(a.fault_log, b.fault_log, "fault log diverged for seed {seed}");
        assert_eq!(a, b, "report diverged for seed {seed}");
    }
}

#[test]
fn different_seeds_draw_different_faults() {
    let a = run_banking_chaos(&chaos_config(7, FtOrder::FtOutsideTx)).unwrap();
    let b = run_banking_chaos(&chaos_config(1_234, FtOrder::FtOutsideTx)).unwrap();
    assert_ne!(a.fault_log, b.fault_log, "distinct seeds produced identical fault streams");
}

/// The §3 distinguisher: one transient fault scheduled at the very
/// first commit attempt.
fn commit_fault_config(order: FtOrder) -> ChaosConfig {
    ChaosConfig {
        seed: 11,
        plan: FaultPlan::new(11).at(FaultOp::TxCommit, 1, FaultKind::Transient),
        order,
        transfers: 4,
        ..ChaosConfig::default()
    }
}

#[test]
fn ft_outside_tx_retries_the_whole_transaction() {
    let report = run_banking_chaos(&commit_fault_config(FtOrder::FtOutsideTx)).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // The faulted commit rolls back; the retry runs a *fresh*
    // transaction, so every call still succeeds and one extra
    // transaction was begun.
    assert_eq!(report.succeeded, report.attempted, "{report}");
    assert_eq!(report.tx.begun, u64::from(report.attempted) + 1, "{report}");
    assert_eq!(report.tx.rolled_back, 1, "{report}");
    assert_eq!(report.tx.committed, u64::from(report.attempted), "{report}");
    assert_eq!(report.fault_log.injected_at(FaultOp::TxCommit), 1, "{report}");
}

#[test]
fn tx_outside_ft_must_not_retry_a_failed_commit() {
    let report = run_banking_chaos(&commit_fault_config(FtOrder::TxOutsideFt)).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // The commit sits outside the retry loop: the fault aborts the
    // first call and no extra transaction is begun.
    assert_eq!(report.succeeded, report.attempted - 1, "{report}");
    assert_eq!(report.tx.begun, u64::from(report.attempted), "{report}");
    assert_eq!(report.tx.rolled_back, 1, "{report}");
    assert_eq!(report.tx.committed, u64::from(report.attempted) - 1, "{report}");
    assert_eq!(report.typed_failures.len(), 1, "{report}");
    assert!(report.typed_failures[0].contains("transaction aborted"), "{report}");
}

#[test]
fn breaker_opens_after_threshold_and_fails_fast() {
    let cfg = ChaosConfig {
        seed: 5,
        plan: FaultPlan::new(5)
            .at(FaultOp::TxCommit, 1, FaultKind::Transient)
            .at(FaultOp::TxCommit, 2, FaultKind::Transient)
            .at(FaultOp::TxCommit, 3, FaultKind::Transient),
        order: FtOrder::FtOutsideTx,
        transfers: 6,
        retry_transfer: false, // max_attempts 1: every fault is a breaker strike
        breaker_threshold: 3,
        breaker_cooldown_us: 60_000_000, // stays open for the rest of the run
        ..ChaosConfig::default()
    };
    let report = run_banking_chaos(&cfg).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    assert_eq!(report.succeeded, 0, "{report}");
    assert_eq!(report.fault_log.breaker_opens(), 1, "{report}");
    assert_eq!(report.breaker_state.as_deref(), Some("open"), "{report}");
    // First three calls fail on the injected commit faults, the rest
    // are rejected by the open breaker without reaching the middleware.
    assert_eq!(report.tx.begun, 3, "{report}");
    let circuit_open = report.typed_failures.iter().filter(|e| e.contains("circuit open")).count();
    assert_eq!(circuit_open, 3, "{report}");
}

#[test]
fn partitioned_server_fails_typed_and_conserves_balances() {
    let cfg = ChaosConfig {
        seed: 3,
        plan: FaultPlan::new(3).at(
            FaultOp::BusSend,
            1,
            FaultKind::Partition { node: "server".to_owned(), for_us: 3_600_000_000 },
        ),
        order: FtOrder::FtOutsideTx,
        transfers: 5,
        ..ChaosConfig::default()
    };
    let report = run_banking_chaos(&cfg).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // Nothing reaches the server: no transactions, no transfers, no
    // money moved.
    assert_eq!(report.succeeded, 0, "{report}");
    assert_eq!(report.tx.begun, 0, "{report}");
    assert_eq!(report.balance_a1, 1_000, "{report}");
    assert_eq!(report.balance_a2, 50, "{report}");
    assert!(
        report.typed_failures.iter().all(|e| e.contains("partitioned")),
        "expected only partition errors:\n{report}"
    );
}

#[test]
fn latency_spikes_slow_the_run_but_nothing_fails() {
    let base = run_banking_chaos(&ChaosConfig::default()).unwrap();
    let cfg = ChaosConfig {
        plan: FaultPlan::new(42).with_latency_spike(1.0, 5_000),
        ..ChaosConfig::default()
    };
    let slow = run_banking_chaos(&cfg).unwrap();
    assert!(slow.degraded_gracefully(), "{slow}");
    assert_eq!(slow.succeeded, slow.attempted, "{slow}");
    assert!(
        slow.now_us > base.now_us,
        "spikes must cost sim time: {} vs {}",
        slow.now_us,
        base.now_us
    );
    assert!(!slow.fault_log.is_empty(), "{slow}");
}

/// The wide sweep CI runs with `--ignored`: 100 random seeds through a
/// mixed plan in both precedence orders.
#[test]
#[ignore = "wide seed sweep; run explicitly or in the CI chaos job"]
fn wide_seed_sweep_never_degrades_ungracefully() {
    for seed in 0..100u64 {
        for order in [FtOrder::FtOutsideTx, FtOrder::TxOutsideFt] {
            let report = run_banking_chaos(&chaos_config(seed, order)).unwrap();
            assert!(
                report.degraded_gracefully(),
                "seed {seed} order {order:?} violated the degradation contract:\n{report}"
            );
            assert_eq!(
                report.balance_a1 + report.balance_a2,
                1_050,
                "seed {seed} order {order:?} lost money:\n{report}"
            );
        }
    }
}
