//! Chaos property suite: the banking pipeline woven with
//! {distribution, transactions, faulttolerance} must degrade gracefully
//! under seeded fault plans — typed errors only, the balance sum
//! conserved, and identical fault logs for identical seeds. The suite
//! also pins the paper's §3 precedence claim to observable behavior:
//! FT applied before transactions retries whole transactions; applied
//! after, a failed commit must *not* be retried.
//!
//! Pinned-seed cases run in the default suite; the wide randomized
//! sweep is `#[ignore]`d and run by the dedicated CI chaos job.

use comet::{run_banking_chaos, run_banking_chaos_traced, ChaosConfig, FtOrder};
use comet_middleware::{FaultKind, FaultOp, FaultPlan};
use comet_obs::{Collector, Trace};
use proptest::prelude::*;

/// Seeds pinned in CI: the chaos job runs exactly these.
const PINNED_SEEDS: [u64; 3] = [7, 1_234, 987_654_321];

/// A representative mixed plan: transient commit faults, occasional bus
/// transients and latency spikes.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_probability(FaultOp::TxCommit, 0.25)
        .with_probability(FaultOp::BusSend, 0.05)
        .with_probability(FaultOp::NamingLookup, 0.05)
        .with_latency_spike(0.2, 2_000)
}

fn chaos_config(seed: u64, order: FtOrder) -> ChaosConfig {
    ChaosConfig { seed, plan: mixed_plan(seed), order, transfers: 24, ..ChaosConfig::default() }
}

#[test]
fn pinned_seeds_degrade_gracefully_in_both_orders() {
    for seed in PINNED_SEEDS {
        for order in [FtOrder::FtOutsideTx, FtOrder::TxOutsideFt] {
            let report = run_banking_chaos(&chaos_config(seed, order)).unwrap();
            assert!(
                report.degraded_gracefully(),
                "seed {seed} order {order:?} violated the degradation contract:\n{report}"
            );
            assert_eq!(
                report.balance_a1 + report.balance_a2,
                1_050,
                "seed {seed} order {order:?} lost money:\n{report}"
            );
            // The mixed plan has a 25% commit-fault rate over 24
            // transfers; a run where nothing fired would mean the plan
            // is not actually installed.
            assert!(
                !report.fault_log.is_empty(),
                "seed {seed} order {order:?} injected nothing:\n{report}"
            );
        }
    }
}

#[test]
fn same_seed_same_fault_log_and_report() {
    for seed in PINNED_SEEDS {
        let a = run_banking_chaos(&chaos_config(seed, FtOrder::FtOutsideTx)).unwrap();
        let b = run_banking_chaos(&chaos_config(seed, FtOrder::FtOutsideTx)).unwrap();
        assert_eq!(a.fault_log, b.fault_log, "fault log diverged for seed {seed}");
        assert_eq!(a, b, "report diverged for seed {seed}");
    }
}

#[test]
fn different_seeds_draw_different_faults() {
    let a = run_banking_chaos(&chaos_config(7, FtOrder::FtOutsideTx)).unwrap();
    let b = run_banking_chaos(&chaos_config(1_234, FtOrder::FtOutsideTx)).unwrap();
    assert_ne!(a.fault_log, b.fault_log, "distinct seeds produced identical fault streams");
}

/// The §3 distinguisher: one transient fault scheduled at the very
/// first commit attempt.
fn commit_fault_config(order: FtOrder) -> ChaosConfig {
    ChaosConfig {
        seed: 11,
        plan: FaultPlan::new(11).at(FaultOp::TxCommit, 1, FaultKind::Transient),
        order,
        transfers: 4,
        ..ChaosConfig::default()
    }
}

#[test]
fn ft_outside_tx_retries_the_whole_transaction() {
    let report = run_banking_chaos(&commit_fault_config(FtOrder::FtOutsideTx)).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // The faulted commit rolls back; the retry runs a *fresh*
    // transaction, so every call still succeeds and one extra
    // transaction was begun.
    assert_eq!(report.succeeded, report.attempted, "{report}");
    assert_eq!(report.tx.begun, u64::from(report.attempted) + 1, "{report}");
    assert_eq!(report.tx.rolled_back, 1, "{report}");
    assert_eq!(report.tx.committed, u64::from(report.attempted), "{report}");
    assert_eq!(report.fault_log.injected_at(FaultOp::TxCommit), 1, "{report}");
}

#[test]
fn tx_outside_ft_must_not_retry_a_failed_commit() {
    let report = run_banking_chaos(&commit_fault_config(FtOrder::TxOutsideFt)).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // The commit sits outside the retry loop: the fault aborts the
    // first call and no extra transaction is begun.
    assert_eq!(report.succeeded, report.attempted - 1, "{report}");
    assert_eq!(report.tx.begun, u64::from(report.attempted), "{report}");
    assert_eq!(report.tx.rolled_back, 1, "{report}");
    assert_eq!(report.tx.committed, u64::from(report.attempted) - 1, "{report}");
    assert_eq!(report.typed_failures.len(), 1, "{report}");
    assert!(report.typed_failures[0].contains("transaction aborted"), "{report}");
}

#[test]
fn breaker_opens_after_threshold_and_fails_fast() {
    let cfg = ChaosConfig {
        seed: 5,
        plan: FaultPlan::new(5)
            .at(FaultOp::TxCommit, 1, FaultKind::Transient)
            .at(FaultOp::TxCommit, 2, FaultKind::Transient)
            .at(FaultOp::TxCommit, 3, FaultKind::Transient),
        order: FtOrder::FtOutsideTx,
        transfers: 6,
        retry_transfer: false, // max_attempts 1: every fault is a breaker strike
        breaker_threshold: 3,
        breaker_cooldown_us: 60_000_000, // stays open for the rest of the run
        ..ChaosConfig::default()
    };
    let report = run_banking_chaos(&cfg).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    assert_eq!(report.succeeded, 0, "{report}");
    assert_eq!(report.fault_log.breaker_opens(), 1, "{report}");
    assert_eq!(report.breaker_state.as_deref(), Some("open"), "{report}");
    // First three calls fail on the injected commit faults, the rest
    // are rejected by the open breaker without reaching the middleware.
    assert_eq!(report.tx.begun, 3, "{report}");
    let circuit_open = report.typed_failures.iter().filter(|e| e.contains("circuit open")).count();
    assert_eq!(circuit_open, 3, "{report}");
}

#[test]
fn partitioned_server_fails_typed_and_conserves_balances() {
    let cfg = ChaosConfig {
        seed: 3,
        plan: FaultPlan::new(3).at(
            FaultOp::BusSend,
            1,
            FaultKind::Partition { node: "server".to_owned(), for_us: 3_600_000_000 },
        ),
        order: FtOrder::FtOutsideTx,
        transfers: 5,
        ..ChaosConfig::default()
    };
    let report = run_banking_chaos(&cfg).unwrap();
    assert!(report.degraded_gracefully(), "{report}");
    // Nothing reaches the server: no transactions, no transfers, no
    // money moved.
    assert_eq!(report.succeeded, 0, "{report}");
    assert_eq!(report.tx.begun, 0, "{report}");
    assert_eq!(report.balance_a1, 1_000, "{report}");
    assert_eq!(report.balance_a2, 50, "{report}");
    assert!(
        report.typed_failures.iter().all(|e| e.contains("partitioned")),
        "expected only partition errors:\n{report}"
    );
}

#[test]
fn latency_spikes_slow_the_run_but_nothing_fails() {
    let base = run_banking_chaos(&ChaosConfig::default()).unwrap();
    let cfg = ChaosConfig {
        plan: FaultPlan::new(42).with_latency_spike(1.0, 5_000),
        ..ChaosConfig::default()
    };
    let slow = run_banking_chaos(&cfg).unwrap();
    assert!(slow.degraded_gracefully(), "{slow}");
    assert_eq!(slow.succeeded, slow.attempted, "{slow}");
    assert!(
        slow.now_us > base.now_us,
        "spikes must cost sim time: {} vs {}",
        slow.now_us,
        base.now_us
    );
    assert!(!slow.fault_log.is_empty(), "{slow}");
}

fn traced(cfg: &ChaosConfig) -> (comet::ChaosReport, Trace) {
    let obs = Collector::enabled();
    let report = run_banking_chaos_traced(cfg, &obs).unwrap();
    (report, obs.take())
}

#[test]
fn same_seed_same_trace_byte_for_byte() {
    for seed in PINNED_SEEDS {
        let cfg = chaos_config(seed, FtOrder::FtOutsideTx);
        let (ra, ta) = traced(&cfg);
        let (rb, tb) = traced(&cfg);
        assert_eq!(ra, rb, "report diverged for seed {seed}");
        assert!(!ta.is_empty(), "trace empty for seed {seed}");
        assert_eq!(
            ta.to_chrome_json(),
            tb.to_chrome_json(),
            "trace diverged for seed {seed} despite identical config"
        );
    }
}

#[test]
fn disabled_collector_leaves_run_and_trace_untouched() {
    let cfg = chaos_config(7, FtOrder::FtOutsideTx);
    let plain = run_banking_chaos(&cfg).unwrap();
    let obs = Collector::disabled();
    let silent = run_banking_chaos_traced(&cfg, &obs).unwrap();
    assert_eq!(plain, silent, "a disabled collector must not perturb the run");
    assert!(obs.take().is_empty(), "a disabled collector must record nothing");
}

#[test]
fn every_fault_log_record_appears_in_the_trace() {
    let cfg = chaos_config(7, FtOrder::FtOutsideTx);
    let (report, trace) = traced(&cfg);
    assert!(!report.fault_log.is_empty(), "{report}");
    let fault_events: Vec<_> = trace.events.iter().filter(|e| e.cat == "fault").collect();
    assert_eq!(
        fault_events.len(),
        report.fault_log.len(),
        "every FaultLog record must bridge to exactly one trace event"
    );
    for (i, (event, record)) in fault_events.iter().zip(report.fault_log.records()).enumerate() {
        assert_eq!(
            Trace::attr(&event.attrs, "log_seq"),
            Some(i.to_string().as_str()),
            "fault event {i} lost its log position"
        );
        assert_eq!(event.at_us, record.at_us, "fault event {i} drifted in sim time");
        // Injection happens while a transfer call is on the stack, so
        // the event's span-ancestor chain passes through a runtime span.
        let mut span = event.span;
        let mut in_call = false;
        while let Some(id) = span {
            let s = &trace.spans[id as usize];
            in_call |= s.cat == "runtime";
            span = s.parent;
        }
        assert!(in_call, "fault event {i} is not nested inside a call span");
    }
}

#[test]
fn golden_text_tree_for_pinned_seed_seven() {
    let cfg = ChaosConfig {
        seed: 7,
        plan: mixed_plan(7),
        order: FtOrder::FtOutsideTx,
        transfers: 6,
        ..ChaosConfig::default()
    };
    let (_, trace) = traced(&cfg);
    let tree = trace.to_text_tree();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chaos_seed7_tree.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &tree).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        tree, golden,
        "seed-7 trace tree drifted from the golden; if the change is intended, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p comet --test chaos"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// §3 as a trace property: for any precedence order and workload
    /// length, the top-level concern spans appear in exactly the
    /// applied-concern order.
    #[test]
    fn concern_span_order_is_application_order(
        ft_outside in any::<bool>(),
        transfers in 1u32..6,
        seed in any::<u8>(),
    ) {
        let order = if ft_outside { FtOrder::FtOutsideTx } else { FtOrder::TxOutsideFt };
        let cfg = ChaosConfig {
            seed: u64::from(seed),
            plan: mixed_plan(u64::from(seed)),
            order,
            transfers,
            ..ChaosConfig::default()
        };
        let (_, trace) = traced(&cfg);
        let concern_roots: Vec<&str> = trace
            .roots()
            .into_iter()
            .filter(|s| s.cat == "lifecycle" && s.name.starts_with("concern:"))
            .map(|s| &s.name["concern:".len()..])
            .collect();
        prop_assert_eq!(concern_roots, order.concerns().to_vec());
    }
}

/// The wide sweep CI runs with `--ignored`: 100 random seeds through a
/// mixed plan in both precedence orders.
#[test]
#[ignore = "wide seed sweep; run explicitly or in the CI chaos job"]
fn wide_seed_sweep_never_degrades_ungracefully() {
    for seed in 0..100u64 {
        for order in [FtOrder::FtOutsideTx, FtOrder::TxOutsideFt] {
            let report = run_banking_chaos(&chaos_config(seed, order)).unwrap();
            assert!(
                report.degraded_gracefully(),
                "seed {seed} order {order:?} violated the degradation contract:\n{report}"
            );
            assert_eq!(
                report.balance_a1 + report.balance_a2,
                1_050,
                "seed {seed} order {order:?} lost money:\n{report}"
            );
        }
    }
}
