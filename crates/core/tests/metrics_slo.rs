//! Integration tests for the serve-time telemetry pipeline over real
//! banking sessions: byte-identical metrics snapshots and SLO verdicts
//! across shard counts, record-for-record bridging of engine counters
//! (fault injections, weave-cache hits, WAL fsyncs), and tail-based
//! trace sampling that keeps every faulted request's span tree.

use comet::{run_banking_serve_cfg, run_banking_serve_durable_cfg};
use comet_middleware::FaultPlan;
use comet_serve::{RunConfig, SampleMode, ServeOutcome, SloPolicy, WorkloadPlan};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call (parallel tests, one process).
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "comet-metrics-{}-{}-{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir removable");
    }
    dir
}

fn run(
    plan: &WorkloadPlan,
    shards: usize,
    faults: Option<FaultPlan>,
    cfg: &RunConfig,
) -> ServeOutcome {
    run_banking_serve_cfg(plan, shards, faults, cfg).expect("valid plan")
}

fn commit_fault_plan() -> FaultPlan {
    FaultPlan::parse_toml("seed = 7\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n")
        .expect("well-formed plan")
}

fn slo_plan(seed: u64) -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(seed);
    plan.slo = Some(SloPolicy { target_us: 60_000, ..SloPolicy::default() });
    plan
}

#[test]
fn metrics_and_slo_verdicts_are_byte_identical_across_shard_counts() {
    let plan = slo_plan(7);
    let cfg = RunConfig { traced: false, metrics: true };
    let baseline = run(&plan, 1, Some(commit_fault_plan()), &cfg);
    let base_snap = baseline.metrics.as_ref().expect("metrics on");
    let base_prom = base_snap.to_prometheus();
    assert!(base_prom.contains("comet_serve_requests_total{"), "{base_prom}");
    for shards in [2usize, 4, 8] {
        let other = run(&plan, shards, Some(commit_fault_plan()), &cfg);
        let snap = other.metrics.as_ref().expect("metrics on");
        assert_eq!(base_snap, snap, "snapshot diverged at {shards} shards");
        assert_eq!(base_prom, snap.to_prometheus(), "exposition diverged at {shards} shards");
        assert_eq!(base_snap.to_json(), snap.to_json(), "json diverged at {shards} shards");
        assert_eq!(baseline.report.slo, other.report.slo, "verdicts diverged at {shards} shards");
    }
    assert_eq!(baseline.report.slo.len(), plan.tenants, "one verdict per tenant");
}

#[test]
fn fault_injection_counters_bridge_the_fault_log_record_for_record() {
    let plan = slo_plan(7);
    let cfg = RunConfig { traced: false, metrics: true };
    let outcome = run(&plan, 2, Some(commit_fault_plan()), &cfg);
    let snap = outcome.metrics.as_ref().expect("metrics on");
    let fault_records: u64 = outcome.report.tenants.values().map(|t| t.fault_records).sum();
    assert!(fault_records > 0, "scheduled fault never fired");
    let bridged: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.name == "comet_serve_fault_injections_total")
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(bridged, fault_records, "fault-log bridging must be record-for-record");
}

#[test]
fn weave_cache_and_failure_counters_land_in_the_snapshot() {
    let plan = slo_plan(7);
    let cfg = RunConfig { traced: false, metrics: true };
    let outcome = run(&plan, 2, None, &cfg);
    let snap = outcome.metrics.as_ref().expect("metrics on");
    let total = |name: &str| -> u64 {
        snap.counters.iter().filter(|(k, _)| k.name == name).map(|(_, &v)| v).sum()
    };
    // Steady-state generates hit the per-tenant weave cache; both sides
    // of the split are bridged from the engine.
    assert!(total("comet_serve_weave_cache_hits_total") > 0, "no weave-cache hits bridged");
    assert!(total("comet_serve_weave_cache_misses_total") > 0, "no cold weaves bridged");
    // In-memory sessions never fsync.
    assert_eq!(total("comet_serve_wal_fsyncs_total"), 0);
    // Per-kind request counters reconcile with the report.
    assert_eq!(total("comet_serve_requests_total"), outcome.report.completed);
}

#[test]
fn durable_runs_count_wal_fsyncs() {
    let plan = slo_plan(7);
    let cfg = RunConfig { traced: false, metrics: true };
    let dir = tmp("fsyncs");
    let (outcome, recoveries) =
        run_banking_serve_durable_cfg(&plan, 2, None, &cfg, &dir, None).expect("valid plan");
    assert_eq!(recoveries, 0);
    let snap = outcome.metrics.as_ref().expect("metrics on");
    let fsyncs: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.name == "comet_serve_wal_fsyncs_total")
        .map(|(_, &v)| v)
        .sum();
    assert!(fsyncs > 0, "journalled tenants must issue durability barriers");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tail_on_error_keeps_every_faulted_request_and_stays_deterministic() {
    let mut plan = slo_plan(7);
    plan.sampling = SampleMode::TailOnError;
    let cfg = RunConfig { traced: true, metrics: true };
    let sampled = run(&plan, 2, Some(commit_fault_plan()), &cfg);
    let trace = sampled.trace.as_ref().expect("traced run");
    // Every failed request keeps its span tree under tail sampling.
    let errored = trace
        .spans
        .iter()
        .filter(|s| s.name == "serve.request")
        .filter(|s| {
            comet_obs::Trace::attr(&s.attrs, "outcome").is_some_and(|o| o.starts_with("err"))
        })
        .count() as u64;
    assert!(sampled.report.failed > 0, "fault plan produced no failures");
    assert_eq!(errored, sampled.report.failed, "a faulted request lost its span tree");
    // ...while the boring traffic is sampled out.
    plan.sampling = SampleMode::Always;
    let full = run(&plan, 2, Some(commit_fault_plan()), &cfg);
    assert!(
        trace.spans.len() < full.trace.as_ref().unwrap().spans.len(),
        "tail sampling kept everything"
    );
    // Sampling decisions are per-tenant-deterministic: shard count
    // cannot change which spans survive.
    plan.sampling = SampleMode::TailOnError;
    let again = run(&plan, 8, Some(commit_fault_plan()), &cfg);
    assert_eq!(sampled.trace, again.trace);
    // And the report itself is untouched by sampling.
    assert_eq!(sampled.report, full.report);
}

#[test]
fn chaos_reports_bridge_into_the_same_exposition_pipeline() {
    let report = comet::run_banking_chaos(&comet::ChaosConfig::default()).expect("chaos runs");
    let mut reg = comet_metrics::MetricsRegistry::enabled();
    report.record_metrics(&mut reg);
    let prom = reg.snapshot().to_prometheus();
    assert!(prom.contains("comet_chaos_attempted_total 12"), "{prom}");
    assert!(prom.contains("comet_chaos_tx_committed_total"), "{prom}");
    // Same report, same exposition — the bridge is a pure function.
    let mut reg2 = comet_metrics::MetricsRegistry::enabled();
    report.record_metrics(&mut reg2);
    assert_eq!(prom, reg2.snapshot().to_prometheus());
}
