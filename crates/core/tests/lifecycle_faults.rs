//! Fault injection for the MDA lifecycle's atomicity contract: after
//! *any* induced failure inside `apply_concern` or `undo_last`, the
//! three stores must still agree — `model == repo HEAD`, and the
//! workflow's applied sequence matches the lifecycle's `applied` list.
//!
//! Failure points exercised:
//! * the transformation (pre-body: workflow constraint; in-body:
//!   postcondition / custom error),
//! * the repository commit (post-body — the failing-repository double,
//!   armed through the unified `FaultHook` trait at `repo.commit`),
//! * the repository undo (`FaultHook` point `repo.undo`), and
//! * workflow replay during undo (a constraint-violating workflow
//!   double built from a `MutuallyExclusive` plan).

use comet::{LifecycleError, MdaLifecycle};
use comet_concerns::{distribution, security, transactions};
use comet_middleware::FaultHook;
use comet_model::sample::banking_pim;
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

fn fig2_workflow() -> WorkflowModel {
    WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
}

fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned()]))
}

fn tx_si() -> ParamSet {
    ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
}

fn sec_si() -> ParamSet {
    ParamSet::new().with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]))
}

/// The atomicity invariant: model, repository, and workflow agree.
fn assert_consistent(mda: &MdaLifecycle) {
    let head = mda
        .repository()
        .head_model()
        .expect("lifecycle always has an initial commit")
        .expect("snapshot decodes");
    assert_eq!(mda.model(), &head, "model diverged from repo HEAD");
    let from_workflow: Vec<&str> = mda.workflow().applied().iter().map(String::as_str).collect();
    let from_applied: Vec<&str> = mda.applied().iter().map(|a| a.cmt.concern()).collect();
    assert_eq!(from_workflow, from_applied, "workflow desynced from applied steps");
    // One repo commit per applied step plus the initial PIM.
    assert_eq!(mda.repository().log().len(), mda.applied().len() + 1);
}

#[test]
fn repo_commit_failure_unwinds_model_and_workflow() {
    let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    let before = mda.model().clone();

    mda.repository_mut().arm_fault(comet_repo::FAULT_POINT_COMMIT).unwrap();
    let err = mda.apply_concern(&transactions::pair(), tx_si()).unwrap_err();
    assert!(matches!(err, LifecycleError::Repo(_)), "unexpected error: {err}");

    assert_eq!(mda.model(), &before, "model must be journal-unwound on commit failure");
    assert_eq!(mda.applied().len(), 1);
    assert_eq!(mda.workflow().applied(), &["distribution".to_owned()]);
    assert!(!mda.model().journal_active(), "journal leaked");
    assert_consistent(&mda);

    // The lifecycle is still fully usable: the same step now succeeds.
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    assert_consistent(&mda);
}

#[test]
fn transform_failure_unwinds_workflow_record() {
    let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    let before = mda.model().clone();

    // `Bank.launder` does not exist: the transformation body fails
    // after the workflow already staged its record.
    let bad = ParamSet::new().with("methods", ParamValue::from(vec!["Bank.launder".to_owned()]));
    let err = mda.apply_concern(&transactions::pair(), bad).unwrap_err();
    assert!(matches!(err, LifecycleError::Transform(_)), "unexpected error: {err}");

    assert_eq!(mda.model(), &before);
    assert_eq!(mda.workflow().applied(), &["distribution".to_owned()]);
    assert_consistent(&mda);
    // `transactions` was unrecorded, so it is still allowed next.
    assert!(mda.workflow().allowed_next().contains(&"transactions"));
}

#[test]
fn workflow_violation_rejects_before_any_mutation() {
    let workflow = fig2_workflow().constraint(comet_workflow::OrderConstraint::Before(
        "distribution".into(),
        "security".into(),
    ));
    let mut mda = MdaLifecycle::new(banking_pim(), workflow).unwrap();
    let before = mda.model().clone();
    let err = mda.apply_concern(&security::pair(), sec_si()).unwrap_err();
    assert!(matches!(err, LifecycleError::Workflow(_)));
    assert_eq!(mda.model(), &before);
    assert!(mda.workflow().applied().is_empty());
    assert_consistent(&mda);
}

#[test]
fn undo_failure_keeps_the_step_record() {
    let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    let before = mda.model().clone();

    mda.repository_mut().arm_fault(comet_repo::FAULT_POINT_UNDO).unwrap();
    let err = mda.undo_last().unwrap_err();
    assert!(matches!(err, LifecycleError::Repo(_)), "unexpected error: {err}");

    // The failed undo lost nothing: the step record, workflow state and
    // model are all exactly as before the attempt.
    assert_eq!(mda.applied().len(), 2);
    assert_eq!(mda.workflow().applied(), &["distribution".to_owned(), "transactions".to_owned()]);
    assert_eq!(mda.model(), &before);
    assert_consistent(&mda);

    // And the next undo (no fault) succeeds.
    mda.undo_last().unwrap();
    assert_eq!(mda.applied().len(), 1);
    assert_consistent(&mda);
}

#[test]
fn undo_replay_failure_is_typed_not_a_panic() {
    // A constraint-violating workflow double: logging and transactions
    // are mutually exclusive, but the engine records logging first and
    // transactions is applied via a plan without the constraint... that
    // cannot happen through the public API, so instead we exercise the
    // replay guard directly: a plan where undoing the *last* step makes
    // the remaining prefix invalid is impossible by construction
    // (prefixes of valid sequences stay valid for this constraint
    // language). What CAN desync is the repository — covered above — so
    // here we assert the panic path is gone: undo on an empty lifecycle
    // and a double-undo both return typed errors.
    let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    assert!(matches!(mda.undo_last(), Err(LifecycleError::NothingToUndo)));
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.undo_last().unwrap();
    assert!(matches!(mda.undo_last(), Err(LifecycleError::NothingToUndo)));
    assert_consistent(&mda);
    assert_eq!(mda.model(), &banking_pim());
}

#[test]
fn interleaved_faults_never_desync() {
    // A small soak: walk the full three-concern pipeline injecting a
    // commit failure before every step and an undo failure before every
    // undo, checking the invariant after every operation.
    type SiFn = fn() -> ParamSet;
    let steps: [(&str, SiFn); 3] =
        [("distribution", dist_si), ("transactions", tx_si), ("security", sec_si)];
    let mut mda = MdaLifecycle::new(banking_pim(), fig2_workflow()).unwrap();
    for (name, si) in steps {
        let pair = match name {
            "distribution" => distribution::pair(),
            "transactions" => transactions::pair(),
            _ => security::pair(),
        };
        mda.repository_mut().arm_fault(comet_repo::FAULT_POINT_COMMIT).unwrap();
        assert!(mda.apply_concern(&pair, si()).is_err());
        assert_consistent(&mda);
        mda.apply_concern(&pair, si()).unwrap();
        assert_consistent(&mda);
    }
    assert_eq!(mda.applied().len(), 3);
    while !mda.applied().is_empty() {
        mda.repository_mut().arm_fault(comet_repo::FAULT_POINT_UNDO).unwrap();
        assert!(mda.undo_last().is_err());
        assert_consistent(&mda);
        mda.undo_last().unwrap();
        assert_consistent(&mda);
    }
    assert_eq!(mda.model(), &banking_pim());
}
