//! Integration tests for the critical-pair admission gate: a workload
//! plan whose `[workflow]` section trips a `Conflicts` cell of the
//! interaction matrix gets typed `ServeError::Conflict` rejections
//! *before* any model mutation, while request accounting, §3 precedence
//! of the applied concerns, and shard-count report invariance all hold.

use comet::{run_banking_serve, serve_interaction_matrix};
use comet_interaction::Verdict;
use comet_serve::{ServeError, ServeOutcome, WorkloadPlan, WorkloadPlanError};

/// An apply-heavy plan over a custom serving workflow.
fn plan_with_workflow(seed: u64, steps: &[&str]) -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(seed);
    plan.requests = 24;
    plan.mix.apply = 0.6;
    plan.mix.undo = 0.0;
    plan.workflow = steps.iter().map(|s| (*s).to_owned()).collect();
    plan
}

fn run(plan: &WorkloadPlan, shards: usize) -> ServeOutcome {
    run_banking_serve(plan, shards, None, false).expect("plan passes admission analysis")
}

#[test]
fn conflicting_workflow_is_rejected_at_admission_not_silently_skipped() {
    // concurrency × faulttolerance is the standard matrix's `Conflicts`
    // cell («Synchronized» × «Retryable» on `Bank.getBalance`).
    let plan = plan_with_workflow(13, &["concurrency", "faulttolerance"]);
    let outcome = run(&plan, 2);
    let r = &outcome.report;
    assert!(r.conflicts > 0, "the conflicting step never hit the gate");
    // Typed rejections are completed-but-failed requests, so the global
    // accounting invariants are untouched.
    assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
    assert_eq!(r.completed, r.ok + r.failed);
    assert!(r.conflicts <= r.failed, "conflicts must be a subset of failed");
    assert_eq!(
        r.conflicts,
        r.tenants.values().map(|t| t.conflicts).sum::<u64>(),
        "aggregate conflicts must equal the per-tenant sum"
    );
    // The gate fires before any model mutation: no tenant ever holds
    // both halves of the conflicting pair, and sessions keep serving.
    for (tenant, stats) in &r.tenants {
        assert!(
            !(stats.applied.iter().any(|c| c == "concurrency")
                && stats.applied.iter().any(|c| c == "faulttolerance")),
            "tenant {tenant} applied both halves of a Conflicts pair: {:?}",
            stats.applied
        );
        assert!(stats.completed > 0, "tenant {tenant} stopped serving after a rejection");
    }
}

#[test]
fn conflicting_runs_stay_deterministic_across_shard_counts() {
    let plan = plan_with_workflow(13, &["concurrency", "faulttolerance"]);
    let a = run(&plan, 1);
    let b = run(&plan, 4);
    assert!(a.report.conflicts > 0, "gate inactive — the invariance check would be vacuous");
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn conflict_free_workflow_reports_byte_identical_across_shard_counts() {
    // Every pair here is `Commutes` or `OrderSensitive` in the serving
    // matrix — no gate activity, plain §3 precedence serving.
    let steps = &["distribution", "transactions", "security", "logging"];
    let matrix =
        serve_interaction_matrix(&steps.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
            .expect("serving bindings analyse cleanly");
    for (i, a) in steps.iter().enumerate() {
        for b in &steps[i + 1..] {
            assert!(
                !matches!(matrix.verdict(a, b), Some(Verdict::Conflicts { .. })),
                "`{a}` × `{b}` unexpectedly conflicts"
            );
        }
    }
    let plan = plan_with_workflow(7, steps);
    let one = run(&plan, 1);
    let four = run(&plan, 4);
    assert_eq!(one.report.conflicts, 0, "conflict-free workflow tripped the gate");
    assert_eq!(one.report, four.report);
    assert_eq!(one.report.to_json(), four.report.to_json());
}

#[test]
fn default_workflow_never_trips_the_gate() {
    let mut plan = WorkloadPlan::new(13);
    plan.requests = 24;
    plan.mix.apply = 0.6;
    plan.mix.undo = 0.0;
    let outcome = run(&plan, 2);
    assert_eq!(outcome.report.conflicts, 0, "the default workflow must serve conflict-free");
}

#[test]
fn unknown_workflow_concern_is_a_typed_plan_error() {
    let plan = plan_with_workflow(7, &["transactions", "nosuchconcern"]);
    let err = run_banking_serve(&plan, 1, None, false).expect_err("unknown concern must not serve");
    match err {
        ServeError::Plan(WorkloadPlanError::UnknownConcern(c)) => {
            assert_eq!(c, "nosuchconcern");
        }
        other => panic!("expected Plan(UnknownConcern), got {other}"),
    }
}

#[test]
fn applied_orders_satisfy_every_matrix_required_constraint() {
    // `OrderSensitive` cells become auto-derived `Before` constraints
    // on the derived serving workflow, so whatever each tenant manages
    // to apply must respect every required pair the matrix emits for
    // this plan's steps.
    let steps = &["transactions", "distribution", "security", "logging"];
    let matrix =
        serve_interaction_matrix(&steps.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
            .expect("serving bindings analyse cleanly");
    let required = matrix.required_orders();
    assert!(!required.is_empty(), "no OrderSensitive cell — the check would be vacuous");
    let plan = plan_with_workflow(13, steps);
    let outcome = run(&plan, 2);
    for (tenant, stats) in &outcome.report.tenants {
        for (first, second) in &required {
            let pos = |name: &str| stats.applied.iter().position(|c| c == name);
            if let (Some(i), Some(j)) = (pos(first), pos(second)) {
                assert!(
                    i < j,
                    "tenant {tenant} applied `{second}` before `{first}` \
                     despite the matrix-required order: {:?}",
                    stats.applied
                );
            }
        }
    }
    assert!(
        outcome.report.tenants.values().any(|t| t.applied.len() >= 2),
        "no tenant applied enough concerns to exercise the constraints"
    );
}
