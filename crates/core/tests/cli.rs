//! Integration tests driving the `comet-cli` binary end to end over
//! temporary XMI files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_comet-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("comet-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn new_inspect_apply_roundtrip() {
    let pim = temp_path("pim.xmi");
    let psm = temp_path("psm.xmi");
    let aspect = temp_path("tx.aj");

    let out = cli().args(["new", pim.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote sample PIM"));

    let out = cli()
        .args([
            "apply",
            pim.to_str().unwrap(),
            "transactions",
            "methods=Bank.transfer",
            "isolation=serializable",
            "-o",
            psm.to_str().unwrap(),
            "--aspect-out",
            aspect.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied transactions<"));
    assert!(stdout.contains("modified 1"));

    // The refined model inspects cleanly and shows the mark.
    let out = cli().args(["inspect", psm.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("well-formed: yes"));
    assert!(stdout.contains("transfer() «Transactional»"));

    // The aspect artifact was emitted.
    let artifact = std::fs::read_to_string(&aspect).unwrap();
    assert!(artifact.contains("pointcut pc0(): execution(Bank.transfer);"));
    assert!(artifact.contains("tx.begin"));

    for p in [pim, psm, aspect] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn apply_dry_run_reports_without_writing() {
    let pim = temp_path("dry-pim.xmi");
    cli().args(["new", pim.to_str().unwrap()]).output().unwrap();
    let pristine = std::fs::read_to_string(&pim).unwrap();

    let out = cli()
        .args([
            "apply",
            pim.to_str().unwrap(),
            "transactions",
            "methods=Bank.transfer",
            "--dry-run",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("would apply transactions<"));
    assert!(stdout.contains("dry run: model unchanged"));
    // The input file is byte-identical: nothing was written.
    assert_eq!(std::fs::read_to_string(&pim).unwrap(), pristine);

    let _ = std::fs::remove_file(pim);
}

#[test]
fn concerns_lists_the_standard_library() {
    let out = cli().arg("concerns").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for concern in
        ["distribution", "transactions", "security", "logging", "concurrency", "persistence"]
    {
        assert!(stdout.contains(concern), "missing {concern}");
    }
    assert!(stdout.contains("(required)"));
}

#[test]
fn run_fault_free_reports_all_successes() {
    let out = cli().args(["run", "--seed", "9", "--transfers", "6"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos run: 6/6 transfers succeeded"), "{stdout}");
    assert!(stdout.contains("(sum 1050)"), "{stdout}");
    assert!(stdout.contains("fault log (0 record(s))"), "{stdout}");
}

#[test]
fn run_with_plan_prints_fault_log_and_degradation_summary() {
    let plan = temp_path("plan.toml");
    std::fs::write(&plan, "seed = 7\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n").unwrap();

    // FT outside tx (default order): the faulted commit is retried and
    // every transfer still succeeds; the run is graceful → exit 0.
    let out = cli()
        .args(["run", "--faults", plan.to_str().unwrap(), "--transfers", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos run: 4/4 transfers succeeded"), "{stdout}");
    assert!(stdout.contains("5 begun, 4 committed, 1 rolled back"), "{stdout}");
    assert!(stdout.contains("inject tx.commit: transient"), "{stdout}");

    // The opposite order must not retry the failed commit.
    let out = cli()
        .args([
            "run",
            "--faults",
            plan.to_str().unwrap(),
            "--order",
            "tx-outside-ft",
            "--transfers",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos run: 3/4 transfers succeeded"), "{stdout}");
    assert!(stdout.contains("typed: call 0: transaction aborted"), "{stdout}");

    // --seed overrides the plan seed; identical seeds reproduce the run.
    let a =
        cli().args(["run", "--faults", plan.to_str().unwrap(), "--seed", "123"]).output().unwrap();
    let b =
        cli().args(["run", "--faults", plan.to_str().unwrap(), "--seed", "123"]).output().unwrap();
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce the identical report");

    let _ = std::fs::remove_file(plan);
}

#[test]
fn pipeline_with_faults_appends_chaos_run() {
    let plan = temp_path("pipeline-plan.toml");
    std::fs::write(&plan, "seed = 5\n\n[latency]\nprobability = 1.0\nspike_us = 3000\n").unwrap();
    let out = cli().args(["pipeline", "--faults", plan.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("generated"), "{stdout}");
    assert!(stdout.contains("--- chaos run ---"), "{stdout}");
    assert!(stdout.contains("inject bus.send: latency 3000"), "{stdout}");
    assert!(stdout.contains("12/12 transfers succeeded"), "{stdout}");
    let _ = std::fs::remove_file(plan);
}

#[test]
fn run_rejects_bad_fault_arguments() {
    let out = cli().args(["run", "--faults", "/nonexistent/plan.toml"]).output().unwrap();
    assert!(!out.status.success());

    let plan = temp_path("bad-plan.toml");
    std::fs::write(&plan, "[probabilities]\n\"fs.read\" = 0.5\n").unwrap();
    let out = cli().args(["run", "--faults", plan.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown operation"));
    let _ = std::fs::remove_file(plan);

    let out = cli().args(["run", "--order", "sideways"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--order"));
}

#[test]
fn run_trace_is_deterministic_and_drives_provenance() {
    let plan = temp_path("trace-plan.toml");
    std::fs::write(&plan, "seed = 7\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n").unwrap();
    let trace_a = temp_path("trace-a.json");
    let trace_b = temp_path("trace-b.json");
    for trace in [&trace_a, &trace_b] {
        let out = cli()
            .args([
                "run",
                "--faults",
                plan.to_str().unwrap(),
                "--seed",
                "7",
                "--transfers",
                "4",
                "--trace",
                trace.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("wrote trace to"));
    }
    let a = std::fs::read_to_string(&trace_a).unwrap();
    let b = std::fs::read_to_string(&trace_b).unwrap();
    assert_eq!(a, b, "same seed + same plan must write byte-identical traces");
    // Chrome trace-event shape: the Perfetto loader's minimum contract.
    assert!(a.starts_with("{\"displayTimeUnit\""), "{}", &a[..80.min(a.len())]);
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("\"name\":\"concern:distribution\""));
    assert!(a.contains("\"name\":\"fault.injected\""));

    // The trace answers provenance queries end to end.
    let out = cli()
        .args(["provenance", "Bank.transfer", "--trace", trace_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("provenance: Bank.transfer"), "{stdout}");
    assert!(stdout.contains("concern transactions"), "{stdout}");
    assert!(stdout.contains("at execution(Bank.transfer)"), "{stdout}");
    assert!(stdout.contains("call Bank.transfer"), "{stdout}");

    // A query nothing touched reports cleanly instead of erroring.
    let out = cli()
        .args(["provenance", "Nonexistent.widget", "--trace", trace_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no provenance for"));

    // provenance without --trace is an error.
    let out = cli().args(["provenance", "Bank.transfer"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));

    for p in [plan, trace_a, trace_b] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn pipeline_trace_covers_the_whole_pipeline() {
    let trace = temp_path("pipeline-trace.json");
    let out = cli()
        .args(["pipeline", "--seed", "7", "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&trace).unwrap();
    // Concern spans in application order (§3 precedence), then codegen,
    // weave, and the chaos run's runtime spans.
    let order = ["concern:distribution", "concern:transactions", "concern:security"];
    let positions: Vec<usize> =
        order.iter().map(|n| json.find(&format!("\"name\":\"{n}\"")).expect(n)).collect();
    assert!(positions.windows(2).all(|w| w[0] < w[1]), "concern spans out of order");
    for name in ["\"generate\"", "\"weave\"", "\"weave.advice\"", "\"call:Bank.transfer\""] {
        assert!(json.contains(name), "trace missing {name}");
    }
    let _ = std::fs::remove_file(trace);
}

#[test]
fn metrics_reports_in_text_and_json() {
    let out = cli().arg("metrics").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("methods="), "{stdout}");
    assert!(stdout.contains("net:"), "{stdout}");

    let out = cli().args(["metrics", "--json"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"tangling_ratio\""), "{stdout}");
    assert!(stdout.contains("\"concerns\""), "{stdout}");

    let out = cli().args(["metrics", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn usage_errors_exit_two_with_usage_on_stderr() {
    // Unknown subcommand: exit 2, the error plus the full usage text on
    // stderr, nothing on stdout.
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command `frobnicate`"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
    assert!(out.stdout.is_empty());

    // Bad flags are usage errors too.
    let out = cli().args(["serve", "--shards", "zero"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards"));

    let out = cli().args(["metrics", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Runtime failures keep exit 1, distinct from usage errors.
    let out = cli().args(["inspect", "/nonexistent/m.xmi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    // --help and bare invocation print usage to stdout and exit 0.
    for args in [&["--help"][..], &["help"][..], &[][..]] {
        let out = cli().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"), "{args:?}");
    }
}

#[test]
fn serve_is_deterministic_across_shard_counts() {
    let base = ["serve", "--seed", "7"];
    let one = cli().args(base).args(["--shards", "1"]).output().unwrap();
    assert!(one.status.success(), "{}", String::from_utf8_lossy(&one.stderr));
    let four = cli().args(base).args(["--shards", "4"]).output().unwrap();
    assert!(four.status.success(), "{}", String::from_utf8_lossy(&four.stderr));
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&four.stdout),
        "serve stdout must be byte-identical across shard counts"
    );
    let stdout = String::from_utf8_lossy(&one.stdout);
    assert!(stdout.contains("serve:"), "{stdout}");
    assert!(stdout.contains("latency p50"), "{stdout}");

    // JSON mode carries the same determinism and the report keys.
    let a = cli().args(["serve", "--seed", "7", "--shards", "1", "--json"]).output().unwrap();
    let b = cli().args(["serve", "--seed", "7", "--shards", "4", "--json"]).output().unwrap();
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout);
    let json = String::from_utf8_lossy(&a.stdout);
    for key in ["\"issued\"", "\"p50_us\"", "\"tenants\"", "\"outcome_hash\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn serve_accepts_workload_and_fault_plans_and_writes_traces() {
    let workload = temp_path("serve-workload.toml");
    std::fs::write(&workload, "seed = 9\ntenants = 2\nclients = 2\nrequests = 6\n").unwrap();
    let faults = temp_path("serve-faults.toml");
    std::fs::write(&faults, "seed = 9\n\n[schedule]\n\"tx.commit@1\" = \"transient\"\n").unwrap();
    let trace = temp_path("serve-trace.json");

    let out = cli()
        .args([
            "serve",
            "--workload",
            workload.to_str().unwrap(),
            "--shards",
            "2",
            "--faults",
            faults.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t00"), "{stdout}");
    assert!(stdout.contains("t01"), "{stdout}");
    assert!(stdout.contains("wrote trace to"), "{stdout}");
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("serve.request"));

    // A malformed workload plan is a runtime failure (exit 1).
    std::fs::write(&workload, "tenants = 0\n").unwrap();
    let out = cli().args(["serve", "--workload", workload.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    for p in [workload, faults, trace] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn serve_writes_prometheus_metrics_identically_across_shard_counts() {
    let prom_one = temp_path("serve-1.prom");
    let prom_four = temp_path("serve-4.prom");
    let base = ["serve", "--seed", "7"];
    let one = cli()
        .args(base)
        .args(["--shards", "1", "--metrics", prom_one.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(one.status.success(), "{}", String::from_utf8_lossy(&one.stderr));
    assert!(String::from_utf8_lossy(&one.stdout).contains("wrote metrics to"));
    let four = cli()
        .args(base)
        .args(["--shards", "4", "--metrics", prom_four.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(four.status.success(), "{}", String::from_utf8_lossy(&four.stderr));
    let a = std::fs::read_to_string(&prom_one).unwrap();
    let b = std::fs::read_to_string(&prom_four).unwrap();
    assert_eq!(a, b, "Prometheus exposition must be byte-identical across shard counts");
    assert!(a.contains("# TYPE comet_serve_requests_total counter"), "{a}");
    assert!(a.contains("comet_serve_requests_total{"), "{a}");
    assert!(a.contains("comet_serve_latency_us_bucket{"), "{a}");

    // A .json path switches the exporter; the document parses.
    let json_path = temp_path("serve-metrics.json");
    let out = cli()
        .args(base)
        .args(["--shards", "2", "--metrics", json_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&json_path).unwrap();
    assert!(comet_obs::JsonValue::parse(&doc).is_ok(), "{doc}");
    assert!(doc.contains("comet_serve_requests_total"));

    for p in [prom_one, prom_four, json_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn serve_slo_gate_passes_and_fails_on_burn_rate() {
    // --slo without an [slo] section is a usage error.
    let out = cli().args(["serve", "--seed", "7", "--slo"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[slo]"));

    // A generous target passes and prints per-tenant verdicts.
    let workload = temp_path("serve-slo.toml");
    std::fs::write(
        &workload,
        "seed = 9\ntenants = 2\nclients = 2\nrequests = 6\n\n[slo]\ntarget_us = 10000000\n",
    )
    .unwrap();
    let out =
        cli().args(["serve", "--workload", workload.to_str().unwrap(), "--slo"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("slo t00:"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");

    // An impossible target breaches and exits non-zero.
    std::fs::write(
        &workload,
        "seed = 9\ntenants = 2\nclients = 2\nrequests = 6\n\n[slo]\ntarget_us = 1\n",
    )
    .unwrap();
    let out =
        cli().args(["serve", "--workload", workload.to_str().unwrap(), "--slo"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("BREACH"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("SLO breached"));

    let _ = std::fs::remove_file(workload);
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Unknown concern.
    let pim = temp_path("err-pim.xmi");
    cli().args(["new", pim.to_str().unwrap()]).output().unwrap();
    let out = cli().args(["apply", pim.to_str().unwrap(), "astrology"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown concern"));

    // Failing precondition (method does not exist).
    let out = cli()
        .args(["apply", pim.to_str().unwrap(), "transactions", "methods=Bank.launder"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(pim);

    // Missing file.
    let out = cli().args(["inspect", "/nonexistent/m.xmi"]).output().unwrap();
    assert!(!out.status.success());

    // Help exits zero.
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
