//! Fluent builders for assembling models with less ceremony than the raw
//! `Model::add_*` API. Used heavily by examples, tests and the sample
//! model factory.

use crate::error::Result;
use crate::id::ElementId;
use crate::kinds::{Primitive, TypeRef};
use crate::model::Model;

/// Fluent builder that owns a [`Model`] under construction.
///
/// ```
/// use comet_model::{ModelBuilder, Primitive};
///
/// # fn main() -> Result<(), comet_model::ModelError> {
/// let model = ModelBuilder::new("shop")
///     .class("Order", |c| {
///         c.attribute("total", Primitive::Int)?
///             .operation("checkout", |o| o.parameter("fast", Primitive::Bool))
///     })?
///     .build();
/// assert!(model.find_class("Order").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelBuilder {
    model: Model,
    current_package: ElementId,
}

impl ModelBuilder {
    /// Starts building a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        let model = Model::new(name);
        let root = model.root();
        ModelBuilder { model, current_package: root }
    }

    /// Wraps an existing model for further building, rooted at its root.
    pub fn from_model(model: Model) -> Self {
        let root = model.root();
        ModelBuilder { model, current_package: root }
    }

    /// Adds a nested package and makes it current for subsequent calls.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn package(mut self, name: &str) -> Result<Self> {
        self.current_package = self.model.add_package(self.current_package, name)?;
        Ok(self)
    }

    /// Adds a class to the current package and configures it via the
    /// closure.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model or closure.
    pub fn class<F>(mut self, name: &str, f: F) -> Result<Self>
    where
        F: FnOnce(ClassBuilder<'_>) -> Result<ClassBuilder<'_>>,
    {
        let id = self.model.add_class(self.current_package, name)?;
        f(ClassBuilder { model: &mut self.model, class: id })?;
        Ok(self)
    }

    /// Adds an empty class to the current package.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn empty_class(mut self, name: &str) -> Result<Self> {
        self.model.add_class(self.current_package, name)?;
        Ok(self)
    }

    /// Adds a generalization `child -> parent` by class simple names.
    ///
    /// # Errors
    /// Fails when either class is missing or the edge would form a cycle.
    pub fn generalization(mut self, child: &str, parent: &str) -> Result<Self> {
        let c = self
            .model
            .find_class(child)
            .ok_or_else(|| crate::ModelError::InvalidName(child.to_owned()))?;
        let p = self
            .model
            .find_class(parent)
            .ok_or_else(|| crate::ModelError::InvalidName(parent.to_owned()))?;
        self.model.add_generalization(c, p)?;
        Ok(self)
    }

    /// Finishes building and returns the model.
    pub fn build(self) -> Model {
        self.model
    }
}

/// Builder scoped to one class; returned to the closure of
/// [`ModelBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    model: &'a mut Model,
    class: ElementId,
}

impl<'a> ClassBuilder<'a> {
    /// The id of the class being built.
    pub fn id(&self) -> ElementId {
        self.class
    }

    /// Adds an attribute of a primitive type.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn attribute(self, name: &str, ty: Primitive) -> Result<Self> {
        self.model.add_attribute(self.class, name, ty.into())?;
        Ok(self)
    }

    /// Adds an attribute referencing another classifier by id.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn reference(self, name: &str, target: ElementId) -> Result<Self> {
        self.model.add_attribute(self.class, name, TypeRef::Element(target))?;
        Ok(self)
    }

    /// Adds an operation configured via the closure.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model or closure.
    pub fn operation<F>(self, name: &str, f: F) -> Result<Self>
    where
        F: FnOnce(OperationBuilder<'_>) -> Result<OperationBuilder<'_>>,
    {
        let op = self.model.add_operation(self.class, name)?;
        f(OperationBuilder { model: self.model, operation: op })?;
        Ok(self)
    }

    /// Adds a parameterless `Void` operation.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn simple_operation(self, name: &str) -> Result<Self> {
        self.model.add_operation(self.class, name)?;
        Ok(self)
    }

    /// Applies a stereotype to the class.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn stereotype(self, name: &str) -> Result<Self> {
        self.model.apply_stereotype(self.class, name)?;
        Ok(self)
    }
}

/// Builder scoped to one operation.
#[derive(Debug)]
pub struct OperationBuilder<'a> {
    model: &'a mut Model,
    operation: ElementId,
}

impl<'a> OperationBuilder<'a> {
    /// The id of the operation being built.
    pub fn id(&self) -> ElementId {
        self.operation
    }

    /// Adds an input parameter of a primitive type.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn parameter(self, name: &str, ty: Primitive) -> Result<Self> {
        self.model.add_parameter(self.operation, name, ty.into())?;
        Ok(self)
    }

    /// Adds an input parameter referencing a classifier.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn reference_parameter(self, name: &str, target: ElementId) -> Result<Self> {
        self.model.add_parameter(self.operation, name, TypeRef::Element(target))?;
        Ok(self)
    }

    /// Sets the return type to a primitive.
    ///
    /// # Errors
    /// Propagates [`crate::ModelError`] from the underlying model.
    pub fn returns(self, ty: Primitive) -> Result<Self> {
        self.model.set_return_type(self.operation, ty.into())?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_shape() {
        let m = ModelBuilder::new("shop")
            .class("Order", |c| {
                c.attribute("total", Primitive::Int)?
                    .operation("checkout", |o| {
                        o.parameter("fast", Primitive::Bool)?.returns(Primitive::Bool)
                    })?
                    .stereotype("Entity")
            })
            .unwrap()
            .empty_class("Customer")
            .unwrap()
            .generalization("Order", "Customer")
            .unwrap()
            .build();

        let order = m.find_class("Order").unwrap();
        let customer = m.find_class("Customer").unwrap();
        assert!(m.has_stereotype(order, "Entity").unwrap());
        assert_eq!(m.attributes_of(order).len(), 1);
        let op = m.find_operation(order, "checkout").unwrap();
        assert_eq!(m.parameters_of(op).len(), 1);
        assert!(m.is_kind_of(order, customer));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn nested_packages_scope_subsequent_classes() {
        let m = ModelBuilder::new("app")
            .package("domain")
            .unwrap()
            .empty_class("Thing")
            .unwrap()
            .build();
        assert!(m.find_by_qualified_name("app::domain::Thing").is_some());
    }

    #[test]
    fn generalization_by_unknown_name_fails() {
        let r = ModelBuilder::new("app").generalization("A", "B");
        assert!(r.is_err());
    }
}
