use std::fmt;

/// Stable identity of a model element within one [`Model`](crate::Model).
///
/// Ids are allocated by the owning model from a monotonically increasing
/// counter and are never reused, so an id uniquely identifies one element
/// for the whole life of a model, across undo/redo and diffing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ElementId(u64);

impl ElementId {
    /// Creates an id from its raw numeric value.
    ///
    /// Only deserializers (XMI import, repository snapshots) should need
    /// this; normal code receives ids from `Model::add_*` methods.
    pub fn from_raw(raw: u64) -> Self {
        ElementId(raw)
    }

    /// Returns the raw numeric value of this id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        let id = ElementId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ElementId::from_raw(1) < ElementId::from_raw(2));
        assert_eq!(ElementId::default(), ElementId::from_raw(0));
    }
}
