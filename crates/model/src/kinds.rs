//! Payload types for the different element kinds plus the small value
//! vocabulary shared by all of them (visibility, multiplicity, type
//! references, tagged values).

use crate::id::ElementId;
use std::fmt;

/// UML visibility of a feature or classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// Visible everywhere (`+`).
    #[default]
    Public,
    /// Visible to subclasses (`#`).
    Protected,
    /// Visible within the owning package (`~`).
    Package,
    /// Visible only to the owning classifier (`-`).
    Private,
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Visibility::Public => "+",
            Visibility::Protected => "#",
            Visibility::Package => "~",
            Visibility::Private => "-",
        };
        f.write_str(s)
    }
}

/// Built-in primitive types of the metamodel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Real,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Absence of a value (operation return type only).
    Void,
}

impl Primitive {
    /// The canonical model-level name of this primitive.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Int => "Integer",
            Primitive::Real => "Real",
            Primitive::Bool => "Boolean",
            Primitive::Str => "String",
            Primitive::Void => "Void",
        }
    }

    /// Parses a canonical primitive name, the inverse of [`Primitive::name`].
    pub fn parse(name: &str) -> Option<Primitive> {
        match name {
            "Integer" => Some(Primitive::Int),
            "Real" => Some(Primitive::Real),
            "Boolean" => Some(Primitive::Bool),
            "String" => Some(Primitive::Str),
            "Void" => Some(Primitive::Void),
            _ => None,
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A reference to a type usable by attributes, parameters and operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// One of the built-in primitives.
    Primitive(Primitive),
    /// A classifier (class, interface, enumeration, data type) in the
    /// same model.
    Element(ElementId),
}

impl TypeRef {
    /// Convenience constructor for the `Void` primitive.
    pub fn void() -> TypeRef {
        TypeRef::Primitive(Primitive::Void)
    }

    /// Returns the referenced element id if this is an element reference.
    pub fn element(self) -> Option<ElementId> {
        match self {
            TypeRef::Element(id) => Some(id),
            TypeRef::Primitive(_) => None,
        }
    }
}

impl From<Primitive> for TypeRef {
    fn from(p: Primitive) -> Self {
        TypeRef::Primitive(p)
    }
}

/// UML multiplicity (`lower..upper`, `upper = None` meaning `*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Multiplicity {
    /// Minimum number of values.
    pub lower: u32,
    /// Maximum number of values; `None` is unbounded (`*`).
    pub upper: Option<u32>,
}

impl Multiplicity {
    /// Exactly one (`1..1`).
    pub fn one() -> Self {
        Multiplicity { lower: 1, upper: Some(1) }
    }

    /// Zero or one (`0..1`).
    pub fn optional() -> Self {
        Multiplicity { lower: 0, upper: Some(1) }
    }

    /// Zero or more (`0..*`).
    pub fn many() -> Self {
        Multiplicity { lower: 0, upper: None }
    }

    /// Returns true when `lower <= upper` (or upper unbounded).
    pub fn is_valid(self) -> bool {
        self.upper.is_none_or(|u| self.lower <= u)
    }
}

impl Default for Multiplicity {
    fn default() -> Self {
        Multiplicity::one()
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.upper {
            Some(u) if u == self.lower => write!(f, "{}", u),
            Some(u) => write!(f, "{}..{}", self.lower, u),
            None => write!(f, "{}..*", self.lower),
        }
    }
}

/// Value of a tagged value attached to a model element.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// String payload.
    Str(String),
    /// Integer payload.
    Int(i64),
    /// Boolean payload.
    Bool(bool),
    /// Real payload.
    Real(f64),
    /// Homogeneous-ish list payload.
    List(Vec<TagValue>),
}

impl TagValue {
    /// Returns the string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TagValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TagValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TagValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload, if any.
    pub fn as_list(&self) -> Option<&[TagValue]> {
        match self {
            TagValue::List(l) => Some(l),
            _ => None,
        }
    }
}

impl From<&str> for TagValue {
    fn from(s: &str) -> Self {
        TagValue::Str(s.to_owned())
    }
}

impl From<String> for TagValue {
    fn from(s: String) -> Self {
        TagValue::Str(s)
    }
}

impl From<i64> for TagValue {
    fn from(i: i64) -> Self {
        TagValue::Int(i)
    }
}

impl From<bool> for TagValue {
    fn from(b: bool) -> Self {
        TagValue::Bool(b)
    }
}

impl fmt::Display for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagValue::Str(s) => write!(f, "{s}"),
            TagValue::Int(i) => write!(f, "{i}"),
            TagValue::Bool(b) => write!(f, "{b}"),
            TagValue::Real(r) => write!(f, "{r}"),
            TagValue::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Direction of an operation parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Input parameter.
    #[default]
    In,
    /// Output parameter.
    Out,
    /// Input/output parameter.
    InOut,
    /// The distinguished return "parameter".
    Return,
}

/// Aggregation kind of an association end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregationKind {
    /// Plain association end.
    #[default]
    None,
    /// Shared aggregation (open diamond).
    Shared,
    /// Composite aggregation (filled diamond).
    Composite,
}

/// Payload of a package element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackageData {}

/// Payload of a class element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassData {
    /// Abstract classes cannot be instantiated.
    pub is_abstract: bool,
    /// Active classes own their thread of control (UML 1.4 `isActive`).
    pub is_active: bool,
}

/// Payload of an interface element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InterfaceData {}

/// Payload of a data-type element (user-defined value type).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataTypeData {}

/// Payload of an enumeration element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnumerationData {
    /// Ordered enumeration literals.
    pub literals: Vec<String>,
}

/// Payload of an attribute element.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeData {
    /// Declared type.
    pub ty: TypeRef,
    /// Multiplicity of the attribute slot.
    pub multiplicity: Multiplicity,
    /// Class-scoped (static) attribute.
    pub is_static: bool,
    /// Read-only (frozen) attribute.
    pub is_read_only: bool,
    /// Optional default value rendered as text.
    pub default: Option<String>,
}

impl Default for AttributeData {
    fn default() -> Self {
        AttributeData {
            ty: TypeRef::Primitive(Primitive::Str),
            multiplicity: Multiplicity::one(),
            is_static: false,
            is_read_only: false,
            default: None,
        }
    }
}

/// Payload of an operation element. Parameters are child elements.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationData {
    /// Return type of the operation.
    pub return_type: TypeRef,
    /// Class-scoped (static) operation.
    pub is_static: bool,
    /// Abstract operation (no body at model level).
    pub is_abstract: bool,
    /// Query operations do not modify state.
    pub is_query: bool,
}

impl Default for OperationData {
    fn default() -> Self {
        OperationData {
            return_type: TypeRef::void(),
            is_static: false,
            is_abstract: false,
            is_query: false,
        }
    }
}

/// Payload of a parameter element (child of an operation).
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterData {
    /// Declared type.
    pub ty: TypeRef,
    /// Parameter direction.
    pub direction: Direction,
}

impl Default for ParameterData {
    fn default() -> Self {
        ParameterData { ty: TypeRef::Primitive(Primitive::Str), direction: Direction::In }
    }
}

/// One end of a binary association.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationEnd {
    /// Role name of this end (may be empty).
    pub role: String,
    /// The classifier this end attaches to.
    pub class: ElementId,
    /// Multiplicity at this end.
    pub multiplicity: Multiplicity,
    /// Whether the opposite classifier can navigate to this end.
    pub navigable: bool,
    /// Aggregation kind at this end.
    pub aggregation: AggregationKind,
}

impl AssociationEnd {
    /// Creates a navigable, non-aggregated end with multiplicity `1`.
    pub fn new(role: impl Into<String>, class: ElementId) -> Self {
        AssociationEnd {
            role: role.into(),
            class,
            multiplicity: Multiplicity::one(),
            navigable: true,
            aggregation: AggregationKind::None,
        }
    }
}

/// Payload of a binary association element.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationData {
    /// The two association ends.
    pub ends: [AssociationEnd; 2],
}

/// Payload of a generalization (inheritance) element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizationData {
    /// The more specific classifier.
    pub child: ElementId,
    /// The more general classifier.
    pub parent: ElementId,
}

/// Payload of a dependency element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DependencyData {
    /// The dependent element.
    pub client: ElementId,
    /// The element being depended upon.
    pub supplier: ElementId,
}

/// Payload of a constraint element (body is OCL-like text).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintData {
    /// Constrained element.
    pub constrained: ElementId,
    /// Constraint body, an expression in the `comet-ocl` language.
    pub body: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_display_and_validity() {
        assert_eq!(Multiplicity::one().to_string(), "1");
        assert_eq!(Multiplicity::optional().to_string(), "0..1");
        assert_eq!(Multiplicity::many().to_string(), "0..*");
        assert!(Multiplicity::one().is_valid());
        assert!(!Multiplicity { lower: 3, upper: Some(2) }.is_valid());
    }

    #[test]
    fn primitive_name_round_trip() {
        for p in [Primitive::Int, Primitive::Real, Primitive::Bool, Primitive::Str, Primitive::Void]
        {
            assert_eq!(Primitive::parse(p.name()), Some(p));
        }
        assert_eq!(Primitive::parse("Gadget"), None);
    }

    #[test]
    fn tag_value_accessors() {
        assert_eq!(TagValue::from("x").as_str(), Some("x"));
        assert_eq!(TagValue::from(7i64).as_int(), Some(7));
        assert_eq!(TagValue::from(true).as_bool(), Some(true));
        assert_eq!(TagValue::Int(1).as_str(), None);
        let l = TagValue::List(vec![TagValue::Int(1), TagValue::Int(2)]);
        assert_eq!(l.as_list().unwrap().len(), 2);
        assert_eq!(l.to_string(), "[1, 2]");
    }

    #[test]
    fn visibility_glyphs() {
        assert_eq!(Visibility::Public.to_string(), "+");
        assert_eq!(Visibility::Private.to_string(), "-");
        assert_eq!(Visibility::Protected.to_string(), "#");
        assert_eq!(Visibility::Package.to_string(), "~");
    }

    #[test]
    fn type_ref_helpers() {
        let id = ElementId::from_raw(5);
        assert_eq!(TypeRef::Element(id).element(), Some(id));
        assert_eq!(TypeRef::void().element(), None);
        assert_eq!(TypeRef::from(Primitive::Int), TypeRef::Primitive(Primitive::Int));
    }
}
