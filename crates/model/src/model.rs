//! The [`Model`]: an arena of elements with ownership, plus the mutation
//! API used by transformations.

use crate::element::{Element, ElementCore, ElementKind};
use crate::error::{ModelError, Result};
use crate::id::ElementId;
use crate::index::IndexCache;
use crate::journal::{Journal, JournalOp, JournalSummary};
use crate::kinds::*;
use crate::CONCERN_TAG;
use std::collections::BTreeMap;

/// A model: a named, deterministic arena of [`Element`]s rooted at a
/// package.
///
/// All structural mutation goes through `add_*` / [`Model::remove_element`]
/// so the arena can maintain its invariants: every element except the root
/// has an owner that exists, ids are never reused, and sibling names are
/// unique per kind (for named elements).
///
/// Queries are answered from a lazily built, generation-tagged
/// [`ModelIndex`](crate::index::ModelIndex); every mutation choke point
/// bumps the generation, invalidating the cached index (see `index.rs`
/// for the invalidation rules). The cache is derived data: it is ignored
/// by `PartialEq` and reset — not copied — by `Clone`.
///
/// The same choke points feed an optional change [`Journal`] (see
/// `journal.rs`): between [`Model::begin_journal`] and
/// [`Model::commit_journal`] every mutation records an inverse
/// operation, and [`Model::rollback_journal`] unwinds the segment in
/// O(delta). Like the cache, the journal is transient bookkeeping:
/// ignored by `PartialEq`, not carried over by `Clone`.
#[derive(Debug)]
pub struct Model {
    name: String,
    elements: BTreeMap<ElementId, Element>,
    next_id: u64,
    root: ElementId,
    cache: IndexCache,
    journal: Option<Journal>,
}

impl Clone for Model {
    fn clone(&self) -> Self {
        Model {
            name: self.name.clone(),
            elements: self.elements.clone(),
            next_id: self.next_id,
            root: self.root,
            cache: IndexCache::default(),
            journal: None,
        }
    }
}

impl PartialEq for Model {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.elements == other.elements
            && self.next_id == other.next_id
            && self.root == other.root
    }
}

impl Model {
    /// Creates an empty model whose root package carries the model name.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let root = ElementId::from_raw(0);
        let mut elements = BTreeMap::new();
        elements.insert(
            root,
            Element::new(
                root,
                ElementCore::new(name.clone(), None),
                ElementKind::Package(PackageData::default()),
            ),
        );
        Model { name, elements, next_id: 1, root, cache: IndexCache::default(), journal: None }
    }

    /// The model name (same as the root package name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model and its root package.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.cache.invalidate();
        let name = name.into();
        if let Some(j) = &mut self.journal {
            if j.wants_mutate(self.root) {
                if let Some(root) = self.elements.get(&self.root) {
                    j.record(JournalOp::Mutate { id: self.root, before: Box::new(root.clone()) });
                }
            }
            j.record(JournalOp::SetName { prev: self.name.clone() });
        }
        self.name = name.clone();
        let root = self.root;
        if let Some(e) = self.elements.get_mut(&root) {
            e.core_mut().name = name;
        }
    }

    /// The root package id.
    pub fn root(&self) -> ElementId {
        self.root
    }

    /// Number of elements, root included.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// A model always contains at least the root package.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all elements in deterministic (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &Element> {
        self.elements.values()
    }

    /// Returns true when the id resolves to an element of this model.
    pub fn contains(&self, id: ElementId) -> bool {
        self.elements.contains_key(&id)
    }

    /// Resolves an element.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownElement`] when the id does not resolve.
    pub fn element(&self, id: ElementId) -> Result<&Element> {
        self.elements.get(&id).ok_or(ModelError::UnknownElement(id))
    }

    /// Resolves an element mutably.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownElement`] when the id does not resolve.
    pub fn element_mut(&mut self, id: ElementId) -> Result<&mut Element> {
        // Handing out `&mut Element` may change anything the index
        // covers (name, stereotypes, endpoints), so invalidate
        // conservatively. The journal snapshots the pre-image just as
        // conservatively; the commit-time summary filters out borrows
        // that never wrote.
        self.cache.invalidate();
        let e = self.elements.get_mut(&id).ok_or(ModelError::UnknownElement(id))?;
        if let Some(j) = &mut self.journal {
            // First borrow per segment snapshots; repeats cost a set
            // lookup instead of an element clone.
            if j.wants_mutate(id) {
                j.record(JournalOp::Mutate { id, before: Box::new(e.clone()) });
            }
        }
        Ok(e)
    }

    fn alloc(&mut self) -> ElementId {
        // Every element-creating path funnels through here, making it a
        // mutation choke point for index invalidation and journaling.
        self.cache.invalidate();
        let id = ElementId::from_raw(self.next_id);
        if let Some(j) = &mut self.journal {
            j.record(JournalOp::Create { id, prev_next_id: self.next_id });
        }
        self.next_id += 1;
        id
    }

    /// Shared access to the index cache (for `index.rs`).
    pub(crate) fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// The current mutation generation; bumped by every mutation choke
    /// point. Exposed for tests and cache diagnostics.
    pub fn generation(&self) -> u64 {
        self.cache.generation()
    }

    /// The model revision: a monotone counter that changes whenever the
    /// model *may* have changed (built on the same generation counter
    /// that invalidates the [`ModelIndex`](crate) cache). Two reads of
    /// the same revision on the same model instance are guaranteed to
    /// observe identical content, which makes the revision a sound key
    /// for derived-artifact caches (incremental weaving, condition
    /// verdicts). The counter is *per instance*: clones and snapshot
    /// restores reset it, so caches keyed by revision must be dropped
    /// when the model object itself is replaced.
    pub fn revision(&self) -> u64 {
        self.cache.generation()
    }

    fn check_name(name: &str) -> Result<()> {
        if name.trim().is_empty() || name.contains("::") {
            return Err(ModelError::InvalidName(name.to_owned()));
        }
        Ok(())
    }

    fn check_duplicate(&self, owner: ElementId, kind_name: &str, name: &str) -> Result<()> {
        let clash = self.elements.values().any(|e| {
            e.owner() == Some(owner) && e.kind().kind_name() == kind_name && e.name() == name
        });
        if clash {
            Err(ModelError::DuplicateName { owner, name: name.to_owned() })
        } else {
            Ok(())
        }
    }

    fn insert(
        &mut self,
        owner: ElementId,
        name: &str,
        kind: ElementKind,
        allowed_owner: fn(&ElementKind) -> bool,
    ) -> Result<ElementId> {
        Self::check_name(name)?;
        let owner_kind = {
            let o = self.element(owner)?;
            if !allowed_owner(o.kind()) {
                return Err(ModelError::InvalidOwner {
                    owner,
                    owner_kind: o.kind().kind_name(),
                    child_kind: kind.kind_name(),
                });
            }
            o.kind().kind_name()
        };
        let _ = owner_kind;
        self.check_duplicate(owner, kind.kind_name(), name)?;
        let id = self.alloc();
        self.elements.insert(id, Element::new(id, ElementCore::new(name, Some(owner)), kind));
        Ok(id)
    }

    /// Adds a package under `owner` (which must be a package).
    ///
    /// # Errors
    /// Fails on unknown owner, non-package owner, invalid or duplicate name.
    pub fn add_package(&mut self, owner: ElementId, name: &str) -> Result<ElementId> {
        self.insert(owner, name, ElementKind::Package(PackageData::default()), |k| {
            matches!(k, ElementKind::Package(_))
        })
    }

    /// Adds a class under a package.
    ///
    /// # Errors
    /// Fails on unknown owner, non-package owner, invalid or duplicate name.
    pub fn add_class(&mut self, owner: ElementId, name: &str) -> Result<ElementId> {
        self.insert(owner, name, ElementKind::Class(ClassData::default()), |k| {
            matches!(k, ElementKind::Package(_))
        })
    }

    /// Adds an interface under a package.
    ///
    /// # Errors
    /// Fails on unknown owner, non-package owner, invalid or duplicate name.
    pub fn add_interface(&mut self, owner: ElementId, name: &str) -> Result<ElementId> {
        self.insert(owner, name, ElementKind::Interface(InterfaceData::default()), |k| {
            matches!(k, ElementKind::Package(_))
        })
    }

    /// Adds a user-defined data type under a package.
    ///
    /// # Errors
    /// Fails on unknown owner, non-package owner, invalid or duplicate name.
    pub fn add_data_type(&mut self, owner: ElementId, name: &str) -> Result<ElementId> {
        self.insert(owner, name, ElementKind::DataType(DataTypeData::default()), |k| {
            matches!(k, ElementKind::Package(_))
        })
    }

    /// Adds an enumeration with the given literals under a package.
    ///
    /// # Errors
    /// Fails on unknown owner, non-package owner, invalid or duplicate name.
    pub fn add_enumeration(
        &mut self,
        owner: ElementId,
        name: &str,
        literals: Vec<String>,
    ) -> Result<ElementId> {
        self.insert(owner, name, ElementKind::Enumeration(EnumerationData { literals }), |k| {
            matches!(k, ElementKind::Package(_))
        })
    }

    /// Adds an attribute to a classifier.
    ///
    /// # Errors
    /// Fails on unknown owner, non-classifier owner, invalid or duplicate
    /// name, or a dangling type reference.
    pub fn add_attribute(
        &mut self,
        classifier: ElementId,
        name: &str,
        ty: TypeRef,
    ) -> Result<ElementId> {
        self.check_type_ref(ty)?;
        self.insert(
            classifier,
            name,
            ElementKind::Attribute(AttributeData { ty, ..AttributeData::default() }),
            ElementKind::is_classifier,
        )
    }

    /// Adds an operation (return type `Void`) to a classifier.
    ///
    /// # Errors
    /// Fails on unknown owner, non-classifier owner, invalid or duplicate
    /// name.
    pub fn add_operation(&mut self, classifier: ElementId, name: &str) -> Result<ElementId> {
        self.insert(
            classifier,
            name,
            ElementKind::Operation(OperationData::default()),
            ElementKind::is_classifier,
        )
    }

    /// Adds an input parameter to an operation.
    ///
    /// # Errors
    /// Fails on unknown owner, non-operation owner, invalid or duplicate
    /// name, or a dangling type reference.
    pub fn add_parameter(
        &mut self,
        operation: ElementId,
        name: &str,
        ty: TypeRef,
    ) -> Result<ElementId> {
        self.check_type_ref(ty)?;
        self.insert(
            operation,
            name,
            ElementKind::Parameter(ParameterData { ty, direction: Direction::In }),
            |k| matches!(k, ElementKind::Operation(_)),
        )
    }

    /// Sets the return type of an operation.
    ///
    /// # Errors
    /// Fails on unknown id, non-operation element, or dangling type.
    pub fn set_return_type(&mut self, operation: ElementId, ty: TypeRef) -> Result<()> {
        self.check_type_ref(ty)?;
        let e = self.element_mut(operation)?;
        match e.as_operation_mut() {
            Some(op) => {
                op.return_type = ty;
                Ok(())
            }
            None => Err(ModelError::InvalidEndpoint { endpoint: operation, expected: "operation" }),
        }
    }

    fn check_type_ref(&self, ty: TypeRef) -> Result<()> {
        if let TypeRef::Element(id) = ty {
            let e = self.element(id)?;
            if !e.is_classifier() {
                return Err(ModelError::InvalidEndpoint { endpoint: id, expected: "classifier" });
            }
        }
        Ok(())
    }

    fn check_classifier(&self, id: ElementId) -> Result<()> {
        let e = self.element(id)?;
        if !e.is_classifier() {
            return Err(ModelError::InvalidEndpoint { endpoint: id, expected: "classifier" });
        }
        Ok(())
    }

    /// Adds a binary association between two classifiers, owned by a
    /// package. The association name may be empty.
    ///
    /// # Errors
    /// Fails on unknown owner/endpoints or non-classifier endpoints.
    pub fn add_association(
        &mut self,
        owner: ElementId,
        name: &str,
        first: AssociationEnd,
        second: AssociationEnd,
    ) -> Result<ElementId> {
        self.check_classifier(first.class)?;
        self.check_classifier(second.class)?;
        let o = self.element(owner)?;
        if !matches!(o.kind(), ElementKind::Package(_)) {
            return Err(ModelError::InvalidOwner {
                owner,
                owner_kind: o.kind().kind_name(),
                child_kind: "Association",
            });
        }
        let id = self.alloc();
        self.elements.insert(
            id,
            Element::new(
                id,
                ElementCore::new(name, Some(owner)),
                ElementKind::Association(AssociationData { ends: [first, second] }),
            ),
        );
        Ok(id)
    }

    /// Adds a generalization making `child` a specialization of `parent`.
    /// The relationship element is owned by the child's owner.
    ///
    /// # Errors
    /// Fails on unknown/non-classifier endpoints or if the edge would close
    /// an inheritance cycle.
    pub fn add_generalization(&mut self, child: ElementId, parent: ElementId) -> Result<ElementId> {
        self.check_classifier(child)?;
        self.check_classifier(parent)?;
        // Scan variant on purpose: during bulk construction the index is
        // invalidated by every `add_*`, so an indexed cycle check would
        // rebuild the whole index per edge.
        if child == parent || self.ancestors_of_scan(parent).contains(&child) {
            return Err(ModelError::InheritanceCycle(child));
        }
        let owner = self.element(child)?.owner().unwrap_or(self.root);
        let id = self.alloc();
        self.elements.insert(
            id,
            Element::new(
                id,
                ElementCore::new("", Some(owner)),
                ElementKind::Generalization(GeneralizationData { child, parent }),
            ),
        );
        Ok(id)
    }

    /// Adds a dependency from `client` to `supplier`, owned by the root.
    ///
    /// # Errors
    /// Fails when either endpoint is unknown.
    pub fn add_dependency(&mut self, client: ElementId, supplier: ElementId) -> Result<ElementId> {
        self.element(client)?;
        self.element(supplier)?;
        let id = self.alloc();
        let root = self.root;
        self.elements.insert(
            id,
            Element::new(
                id,
                ElementCore::new("", Some(root)),
                ElementKind::Dependency(DependencyData { client, supplier }),
            ),
        );
        Ok(id)
    }

    /// Attaches a named constraint with an OCL-like `body` to an element.
    /// The constraint is owned by the constrained element.
    ///
    /// # Errors
    /// Fails when the constrained element is unknown or the name invalid.
    pub fn add_constraint(
        &mut self,
        constrained: ElementId,
        name: &str,
        body: impl Into<String>,
    ) -> Result<ElementId> {
        Self::check_name(name)?;
        self.element(constrained)?;
        let id = self.alloc();
        self.elements.insert(
            id,
            Element::new(
                id,
                ElementCore::new(name, Some(constrained)),
                ElementKind::Constraint(ConstraintData { constrained, body: body.into() }),
            ),
        );
        Ok(id)
    }

    /// Removes an element and its transitively owned children, plus any
    /// relationship elements (associations, generalizations, dependencies,
    /// constraints) with a dangling endpoint afterwards. Returns all
    /// removed ids.
    ///
    /// # Errors
    /// Fails on the root package or an unknown id.
    pub fn remove_element(&mut self, id: ElementId) -> Result<Vec<ElementId>> {
        if id == self.root {
            return Err(ModelError::RootImmutable);
        }
        self.element(id)?;
        self.cache.invalidate();
        // Collect the owned subtree.
        let mut doomed = vec![id];
        let mut frontier = vec![id];
        while let Some(cur) = frontier.pop() {
            for e in self.elements.values() {
                if e.owner() == Some(cur) && !doomed.contains(&e.id()) {
                    doomed.push(e.id());
                    frontier.push(e.id());
                }
            }
        }
        // Cascade: relationships that reference doomed elements die too.
        loop {
            let mut grew = false;
            let snapshot: Vec<ElementId> = self.elements.keys().copied().collect();
            for eid in snapshot {
                if doomed.contains(&eid) {
                    continue;
                }
                let dangling = {
                    let e = &self.elements[&eid];
                    match e.kind() {
                        ElementKind::Association(a) => {
                            doomed.contains(&a.ends[0].class) || doomed.contains(&a.ends[1].class)
                        }
                        ElementKind::Generalization(g) => {
                            doomed.contains(&g.child) || doomed.contains(&g.parent)
                        }
                        ElementKind::Dependency(d) => {
                            doomed.contains(&d.client) || doomed.contains(&d.supplier)
                        }
                        ElementKind::Constraint(c) => doomed.contains(&c.constrained),
                        _ => false,
                    }
                };
                if dangling {
                    doomed.push(eid);
                    // The removed relationship may itself own children.
                    let mut frontier = vec![eid];
                    while let Some(cur) = frontier.pop() {
                        for e in self.elements.values() {
                            if e.owner() == Some(cur) && !doomed.contains(&e.id()) {
                                doomed.push(e.id());
                                frontier.push(e.id());
                            }
                        }
                    }
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if let Some(j) = &mut self.journal {
            let before: Vec<Element> =
                doomed.iter().filter_map(|d| self.elements.get(d).cloned()).collect();
            j.record(JournalOp::Remove { before });
        }
        for d in &doomed {
            self.elements.remove(d);
        }
        doomed.sort();
        Ok(doomed)
    }

    /// Direct children (owned elements) of `id`, in id order.
    pub fn children(&self, id: ElementId) -> Vec<ElementId> {
        self.elements.values().filter(|e| e.owner() == Some(id)).map(Element::id).collect()
    }

    /// Fully qualified name, segments joined with `::`, starting at the
    /// root package.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn qualified_name(&self, id: ElementId) -> Result<String> {
        let mut segments = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let e = self.element(c)?;
            segments.push(e.name().to_owned());
            cur = e.owner();
        }
        segments.reverse();
        Ok(segments.join("::"))
    }

    /// Applies a stereotype to an element.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn apply_stereotype(&mut self, id: ElementId, stereotype: &str) -> Result<()> {
        self.element_mut(id)?.core_mut().apply_stereotype(stereotype);
        Ok(())
    }

    /// Returns true when the element carries the stereotype.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn has_stereotype(&self, id: ElementId, stereotype: &str) -> Result<bool> {
        Ok(self.element(id)?.core().has_stereotype(stereotype))
    }

    /// Sets a tagged value on an element.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn set_tag(&mut self, id: ElementId, key: &str, value: impl Into<TagValue>) -> Result<()> {
        self.element_mut(id)?.core_mut().set_tag(key, value);
        Ok(())
    }

    /// Records that `concern` introduced the element (the paper's "color").
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn mark_concern(&mut self, id: ElementId, concern: &str) -> Result<()> {
        self.set_tag(id, CONCERN_TAG, concern)
    }

    /// The concern recorded as having introduced this element, if any.
    pub fn concern_of(&self, id: ElementId) -> Option<&str> {
        self.elements.get(&id)?.core().tag(CONCERN_TAG)?.as_str()
    }

    /// All elements introduced by the given concern, in id order.
    pub fn elements_of_concern(&self, concern: &str) -> Vec<ElementId> {
        self.elements
            .values()
            .filter(|e| e.core().tag(CONCERN_TAG).and_then(TagValue::as_str) == Some(concern))
            .map(Element::id)
            .collect()
    }

    /// Starts (or nests) a change journal segment: until the matching
    /// [`Model::commit_journal`] or [`Model::rollback_journal`], every
    /// mutation records an inverse operation. Segments nest via
    /// savepoints; a nested commit folds its ops into the enclosing
    /// segment so an outer rollback still unwinds them.
    pub fn begin_journal(&mut self) {
        match &mut self.journal {
            Some(j) => j.push_savepoint(),
            None => self.journal = Some(Journal::new()),
        }
    }

    /// True while any journal segment is open.
    pub fn journal_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Open journal segments (0 when no journal is active).
    pub fn journal_depth(&self) -> usize {
        self.journal.as_ref().map(Journal::depth).unwrap_or(0)
    }

    /// Elements created since the innermost open segment began and
    /// still present, in id order. Empty when no journal is active.
    ///
    /// This is what lets the transformation engine color exactly the
    /// elements a body created without diffing against a snapshot.
    pub fn journal_created(&self) -> Vec<ElementId> {
        let Some(j) = &self.journal else { return Vec::new() };
        let mut ids: Vec<ElementId> = j
            .created_since_savepoint()
            .into_iter()
            .filter(|id| self.elements.contains_key(id))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The dirty set of the innermost *open* segment: what a commit
    /// right now would report, as a [`DirtySet`](crate::DirtySet).
    /// Returns `None` when no journal is active. Unlike
    /// [`Model::commit_journal`] this does not close the segment, so a
    /// caller can judge an in-flight delta (e.g. check postconditions
    /// incrementally) and still roll back.
    pub fn journal_dirty(&self) -> Option<crate::DirtySet> {
        let j = self.journal.as_ref()?;
        Some(crate::DirtySet::from_summary(&j.summarize_open(&self.elements)))
    }

    /// Closes the innermost journal segment, keeping its effects, and
    /// returns what the segment changed (derived from the recorded ops,
    /// no model sweep). Returns `None` when no journal is active.
    pub fn commit_journal(&mut self) -> Option<JournalSummary> {
        let j = self.journal.as_mut()?;
        let (summary, finished) = j.commit(&self.elements);
        if finished {
            self.journal = None;
        }
        Some(summary)
    }

    /// Unwinds the innermost journal segment by replaying inverse
    /// operations newest-first, restoring the model to the state at the
    /// matching [`Model::begin_journal`]. Returns the number of ops
    /// undone, or `None` when no journal is active.
    pub fn rollback_journal(&mut self) -> Option<usize> {
        self.cache.invalidate();
        let j = self.journal.as_mut()?;
        let (undone, finished) = j.rollback(&mut self.elements, &mut self.next_id, &mut self.name);
        if finished {
            self.journal = None;
        }
        Some(undone)
    }

    /// All distinct concerns recorded anywhere in the model ("association
    /// list between colors and concerns", Section 3), sorted.
    pub fn concerns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .elements
            .values()
            .filter_map(|e| e.core().tag(CONCERN_TAG).and_then(TagValue::as_str))
            .map(str::to_owned)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl Model {
    /// Reassembles a model from raw parts (deserializers only: XMI
    /// import, repository snapshots). The element list must contain a
    /// root package whose id is `root` with no owner; ids must be unique.
    /// The result is validated before being returned.
    ///
    /// # Errors
    /// Returns the well-formedness violations when the parts do not form
    /// a valid model.
    pub fn from_parts(
        name: impl Into<String>,
        root: ElementId,
        elements: Vec<Element>,
    ) -> std::result::Result<Model, Vec<crate::validate::Violation>> {
        let mut map = BTreeMap::new();
        let mut max_id = 0u64;
        for e in elements {
            max_id = max_id.max(e.id().raw());
            map.insert(e.id(), e);
        }
        let model = Model {
            name: name.into(),
            elements: map,
            next_id: max_id + 1,
            root,
            cache: IndexCache::default(),
            journal: None,
        };
        let root_ok = model
            .elements
            .get(&root)
            .map(|e| matches!(e.kind(), ElementKind::Package(_)) && e.owner().is_none())
            .unwrap_or(false);
        if !root_ok {
            return Err(vec![crate::validate::Violation {
                element: root,
                kind: crate::validate::ViolationKind::DanglingOwner,
                detail: "root must be an ownerless package".into(),
            }]);
        }
        model.validate()?;
        Ok(model)
    }
}

impl Default for Model {
    fn default() -> Self {
        Model::new("model")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_created_and_immutable() {
        let mut m = Model::new("m");
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.element(m.root()).unwrap().name(), "m");
        assert_eq!(m.remove_element(m.root()).unwrap_err(), ModelError::RootImmutable);
    }

    #[test]
    fn add_class_and_features() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "Account").unwrap();
        let a = m.add_attribute(c, "balance", Primitive::Int.into()).unwrap();
        let o = m.add_operation(c, "deposit").unwrap();
        let p = m.add_parameter(o, "amount", Primitive::Int.into()).unwrap();
        m.set_return_type(o, Primitive::Bool.into()).unwrap();
        assert_eq!(m.qualified_name(p).unwrap(), "m::Account::deposit::amount");
        assert_eq!(
            m.element(a).unwrap().as_attribute().unwrap().ty,
            TypeRef::Primitive(Primitive::Int)
        );
        assert_eq!(
            m.element(o).unwrap().as_operation().unwrap().return_type,
            TypeRef::Primitive(Primitive::Bool)
        );
    }

    #[test]
    fn duplicate_sibling_names_rejected_per_kind() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        let err = m.add_attribute(c, "x", Primitive::Int.into()).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName { .. }));
        // Same name, different kind is fine (an operation `x`).
        m.add_operation(c, "x").unwrap();
    }

    #[test]
    fn invalid_owners_rejected() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let a = m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        assert!(matches!(m.add_class(c, "B"), Err(ModelError::InvalidOwner { .. })));
        assert!(m.add_attribute(a, "y", Primitive::Int.into()).is_err());
        assert!(matches!(m.add_package(c, "p"), Err(ModelError::InvalidOwner { .. })));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut m = Model::new("m");
        assert!(matches!(m.add_class(m.root(), ""), Err(ModelError::InvalidName(_))));
        assert!(matches!(m.add_class(m.root(), "  "), Err(ModelError::InvalidName(_))));
        assert!(matches!(m.add_class(m.root(), "a::b"), Err(ModelError::InvalidName(_))));
    }

    #[test]
    fn generalization_cycle_detected() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        let c = m.add_class(m.root(), "C").unwrap();
        m.add_generalization(b, a).unwrap();
        m.add_generalization(c, b).unwrap();
        assert!(matches!(m.add_generalization(a, c), Err(ModelError::InheritanceCycle(_))));
        assert!(matches!(m.add_generalization(a, a), Err(ModelError::InheritanceCycle(_))));
    }

    #[test]
    fn remove_cascades_to_children_and_relationships() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        let op = m.add_operation(a, "f").unwrap();
        let _p = m.add_parameter(op, "x", Primitive::Int.into()).unwrap();
        let g = m.add_generalization(b, a).unwrap();
        let assoc = m
            .add_association(
                m.root(),
                "ab",
                AssociationEnd::new("a", a),
                AssociationEnd::new("b", b),
            )
            .unwrap();
        let con = m.add_constraint(a, "inv", "true").unwrap();
        let removed = m.remove_element(a).unwrap();
        for id in [a, op, g, assoc, con] {
            assert!(removed.contains(&id), "{id} should be removed");
            assert!(!m.contains(id));
        }
        assert!(m.contains(b));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn concern_colors() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.mark_concern(a, "distribution").unwrap();
        m.mark_concern(b, "security").unwrap();
        assert_eq!(m.concern_of(a), Some("distribution"));
        assert_eq!(m.elements_of_concern("security"), vec![b]);
        assert_eq!(m.concerns(), vec!["distribution".to_owned(), "security".to_owned()]);
    }

    #[test]
    fn association_requires_classifier_ends() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let op = m.add_operation(a, "f").unwrap();
        let err = m
            .add_association(
                m.root(),
                "x",
                AssociationEnd::new("a", a),
                AssociationEnd::new("o", op),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidEndpoint { .. }));
    }

    #[test]
    fn set_name_renames_root() {
        let mut m = Model::new("m");
        m.set_name("renamed");
        assert_eq!(m.name(), "renamed");
        assert_eq!(m.element(m.root()).unwrap().name(), "renamed");
    }

    #[test]
    fn journal_rollback_restores_all_mutation_kinds() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.add_generalization(b, a).unwrap();
        let snapshot = m.clone();

        m.begin_journal();
        let c = m.add_class(m.root(), "C").unwrap();
        m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        m.apply_stereotype(a, "Touched").unwrap();
        m.element_mut(b).unwrap().core_mut().name = "Renamed".into();
        m.remove_element(a).unwrap(); // cascades into the generalization
        m.set_name("other");
        assert_ne!(m, snapshot);
        let undone = m.rollback_journal().unwrap();
        assert!(undone > 0);
        assert!(!m.journal_active());
        assert_eq!(m, snapshot, "rollback must restore the exact state");
        // Id allocation watermark is restored too: the next add reuses
        // the id the rolled-back `C` briefly held.
        let c2 = m.add_class(m.root(), "C").unwrap();
        assert_eq!(c2, c);
    }

    #[test]
    fn journal_commit_summarizes_delta() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.begin_journal();
        let c = m.add_class(m.root(), "C").unwrap();
        m.apply_stereotype(a, "Touched").unwrap();
        // Read-only mutable borrow: must not be reported as modified.
        let _ = m.element_mut(b).unwrap();
        m.remove_element(b).unwrap();
        let summary = m.commit_journal().unwrap();
        assert_eq!(summary.created, vec![c]);
        assert_eq!(summary.modified, vec![a]);
        assert_eq!(summary.removed, vec![b]);
        assert_eq!(summary.touched(), 3);
        assert!(!m.journal_active());
        // Effects persist after commit.
        assert!(m.contains(c));
        assert!(!m.contains(b));
    }

    #[test]
    fn journal_created_then_removed_cancels_out() {
        let mut m = Model::new("m");
        m.begin_journal();
        let c = m.add_class(m.root(), "Ghost").unwrap();
        m.remove_element(c).unwrap();
        let summary = m.commit_journal().unwrap();
        assert!(summary.is_empty(), "create+remove inside one segment is a no-op: {summary:?}");
    }

    #[test]
    fn nested_journal_segments() {
        let mut m = Model::new("m");
        let outer_snapshot = m.clone();
        m.begin_journal();
        let a = m.add_class(m.root(), "A").unwrap();
        m.begin_journal();
        assert_eq!(m.journal_depth(), 2);
        m.add_class(m.root(), "B").unwrap();
        // Inner rollback drops B but keeps A.
        m.rollback_journal().unwrap();
        assert!(m.contains(a));
        assert_eq!(m.find_class("B"), None);
        // Nested commit folds into the outer segment...
        m.begin_journal();
        let c = m.add_class(m.root(), "C").unwrap();
        assert_eq!(m.journal_created(), vec![c]);
        let inner = m.commit_journal().unwrap();
        assert_eq!(inner.created, vec![c]);
        assert!(m.journal_active());
        // ...so the outer rollback unwinds both A and C.
        m.rollback_journal().unwrap();
        assert_eq!(m, outer_snapshot);
    }

    #[test]
    fn clone_round_trip_preserves_model() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        m.mark_concern(c, "tx").unwrap();
        // Round-trip through a lossless in-memory representation: clone is
        // trivially equal; persisted equality is covered in the repo crate
        // via its binary codec. Here we assert PartialEq + Clone behave.
        let copy = m.clone();
        assert_eq!(m, copy);
    }
}
