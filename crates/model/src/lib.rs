//! # comet-model — UML-like metamodel for COMET
//!
//! This crate implements the modeling substrate assumed by the paper
//! *Generic Concern-Oriented Model Transformations Meet AOP* (Silaghi &
//! Strohmeier, 2003): a UML-class-diagram-flavoured metamodel with
//! packages, classes, interfaces, attributes, operations, associations,
//! generalizations, enumerations, stereotypes, tagged values, and
//! attached constraints.
//!
//! Models are element arenas addressed by [`ElementId`]; iteration order
//! is deterministic (a `BTreeMap` keyed by id). All model data is
//! plain owned data (`Clone` + `PartialEq`) so the repository crate can snapshot, hash and
//! diff models structurally.
//!
//! ## Example
//!
//! ```
//! use comet_model::{Model, Primitive, TypeRef, Visibility};
//!
//! let mut m = Model::new("bank");
//! let pkg = m.root();
//! let account = m.add_class(pkg, "Account").unwrap();
//! let balance = m
//!     .add_attribute(account, "balance", TypeRef::Primitive(Primitive::Int))
//!     .unwrap();
//! m.element_mut(balance).unwrap().core_mut().visibility = Visibility::Private;
//! let op = m.add_operation(account, "deposit").unwrap();
//! m.add_parameter(op, "amount", TypeRef::Primitive(Primitive::Int)).unwrap();
//! assert_eq!(m.qualified_name(account).unwrap(), "bank::Account");
//! assert!(m.validate().is_ok());
//! ```

mod builder;
mod dirty;
mod element;
mod error;
mod id;
mod index;
mod journal;
mod kinds;
mod model;
mod query;
pub mod sample;
mod validate;
mod visitor;

pub use builder::{ClassBuilder, ModelBuilder, OperationBuilder};
pub use dirty::DirtySet;
pub use element::{Element, ElementCore, ElementKind};
pub use error::{ModelError, Result};
pub use id::ElementId;
pub use journal::{JournalSummary, RemovedElement};
pub use kinds::{
    AggregationKind, AssociationData, AssociationEnd, AttributeData, ClassData, ConstraintData,
    DataTypeData, DependencyData, Direction, EnumerationData, GeneralizationData, InterfaceData,
    Multiplicity, OperationData, PackageData, ParameterData, Primitive, TagValue, TypeRef,
    Visibility,
};
pub use model::Model;
pub use validate::{Violation, ViolationKind};
pub use visitor::{walk, Visitor};

/// Tag key under which an element records the concern that introduced it.
///
/// This is the "color" of Section 3 of the paper: visual tools should be
/// able to demarcate model parts added by different concrete
/// transformations. [`Model::mark_concern`] and [`Model::concern_of`] read
/// and write this tag.
pub const CONCERN_TAG: &str = "comet.concern";
