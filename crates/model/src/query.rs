//! Read-only navigation and lookup helpers over a [`Model`].
//!
//! Each query comes in two flavours: the public method, answered from
//! the memoized [`ModelIndex`](crate::index::ModelIndex) (built lazily,
//! invalidated on mutation — see `index.rs`), and a `*_scan` twin
//! preserving the original full-arena scan. The scans are the
//! differential oracles for the property tests in
//! `tests/index_properties.rs` and the "before" baseline for the
//! `e6_repository` benchmarks; new code should always use the indexed
//! form.

use crate::element::{Element, ElementKind};
use crate::id::ElementId;
use crate::index::kind_of;
use crate::model::Model;

impl Model {
    /// All classes, in id order.
    pub fn classes(&self) -> Vec<ElementId> {
        self.elements_of_kind("Class")
    }

    /// Full-scan reference for [`Model::classes`].
    pub fn classes_scan(&self) -> Vec<ElementId> {
        self.elements_of_kind_scan("Class")
    }

    /// All interfaces, in id order.
    pub fn interfaces(&self) -> Vec<ElementId> {
        self.elements_of_kind("Interface")
    }

    /// Full-scan reference for [`Model::interfaces`].
    pub fn interfaces_scan(&self) -> Vec<ElementId> {
        self.elements_of_kind_scan("Interface")
    }

    /// All packages including the root, in id order.
    pub fn packages(&self) -> Vec<ElementId> {
        self.elements_of_kind("Package")
    }

    /// Full-scan reference for [`Model::packages`].
    pub fn packages_scan(&self) -> Vec<ElementId> {
        self.elements_of_kind_scan("Package")
    }

    /// All associations, in id order.
    pub fn associations(&self) -> Vec<ElementId> {
        self.elements_of_kind("Association")
    }

    /// Full-scan reference for [`Model::associations`].
    pub fn associations_scan(&self) -> Vec<ElementId> {
        self.elements_of_kind_scan("Association")
    }

    /// All elements of the given kind name (`"Class"`, `"Operation"`,
    /// ...), in id order. This is what OCL `T.allInstances()` resolves
    /// through.
    pub fn elements_of_kind(&self, kind_name: &str) -> Vec<ElementId> {
        self.index().by_kind.get(kind_name).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::elements_of_kind`].
    pub fn elements_of_kind_scan(&self, kind_name: &str) -> Vec<ElementId> {
        self.iter().filter(|e| e.kind().kind_name() == kind_name).map(Element::id).collect()
    }

    /// All classifiers (classes, interfaces, data types, enumerations).
    pub fn classifiers(&self) -> Vec<ElementId> {
        self.index().classifiers.clone()
    }

    /// Full-scan reference for [`Model::classifiers`].
    pub fn classifiers_scan(&self) -> Vec<ElementId> {
        self.iter().filter(|e| e.is_classifier()).map(Element::id).collect()
    }

    /// Attributes owned by a classifier, in declaration (id) order.
    pub fn attributes_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().attributes.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::attributes_of`].
    pub fn attributes_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter(|e| {
                e.owner() == Some(classifier) && matches!(e.kind(), ElementKind::Attribute(_))
            })
            .map(Element::id)
            .collect()
    }

    /// Operations owned by a classifier, in declaration (id) order.
    pub fn operations_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().operations.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::operations_of`].
    pub fn operations_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter(|e| {
                e.owner() == Some(classifier) && matches!(e.kind(), ElementKind::Operation(_))
            })
            .map(Element::id)
            .collect()
    }

    /// Parameters of an operation, in declaration (id) order.
    pub fn parameters_of(&self, operation: ElementId) -> Vec<ElementId> {
        self.index().parameters.get(&operation).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::parameters_of`].
    pub fn parameters_of_scan(&self, operation: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter(|e| {
                e.owner() == Some(operation) && matches!(e.kind(), ElementKind::Parameter(_))
            })
            .map(Element::id)
            .collect()
    }

    /// Constraints attached to an element, in id order.
    pub fn constraints_on(&self, element: ElementId) -> Vec<ElementId> {
        self.index().constraints_on.get(&element).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::constraints_on`].
    pub fn constraints_on_scan(&self, element: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter(|e| match e.kind() {
                ElementKind::Constraint(c) => c.constrained == element,
                _ => false,
            })
            .map(Element::id)
            .collect()
    }

    /// Direct parents (generalization targets) of a classifier.
    pub fn parents_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().parents.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::parents_of`].
    pub fn parents_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter_map(|e| match e.kind() {
                ElementKind::Generalization(g) if g.child == classifier => Some(g.parent),
                _ => None,
            })
            .collect()
    }

    /// Direct children (generalization sources) of a classifier.
    pub fn specializations_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().specializations.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::specializations_of`].
    pub fn specializations_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter_map(|e| match e.kind() {
                ElementKind::Generalization(g) if g.parent == classifier => Some(g.child),
                _ => None,
            })
            .collect()
    }

    /// Transitive generalization ancestors, deduplicated, excluding the
    /// classifier itself.
    pub fn ancestors_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().ancestors.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::ancestors_of`]. Also used by the
    /// generalization-cycle check in `add_generalization`, where the
    /// index is guaranteed stale.
    pub fn ancestors_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut frontier = self.parents_of_scan(classifier);
        while let Some(p) = frontier.pop() {
            if !out.contains(&p) {
                out.push(p);
                frontier.extend(self.parents_of_scan(p));
            }
        }
        out
    }

    /// Returns true when `child` equals or transitively specializes
    /// `ancestor`.
    pub fn is_kind_of(&self, child: ElementId, ancestor: ElementId) -> bool {
        child == ancestor || self.ancestors_of(child).contains(&ancestor)
    }

    /// Full-scan reference for [`Model::is_kind_of`].
    pub fn is_kind_of_scan(&self, child: ElementId, ancestor: ElementId) -> bool {
        child == ancestor || self.ancestors_of_scan(child).contains(&ancestor)
    }

    /// Finds the first classifier with the given simple name (id order).
    pub fn find_classifier(&self, name: &str) -> Option<ElementId> {
        self.index().classifier_by_name.get(name).copied()
    }

    /// Full-scan reference for [`Model::find_classifier`].
    pub fn find_classifier_scan(&self, name: &str) -> Option<ElementId> {
        self.iter().find(|e| e.is_classifier() && e.name() == name).map(Element::id)
    }

    /// Finds a class by simple name.
    pub fn find_class(&self, name: &str) -> Option<ElementId> {
        self.index().class_by_name.get(name).copied()
    }

    /// Full-scan reference for [`Model::find_class`].
    pub fn find_class_scan(&self, name: &str) -> Option<ElementId> {
        self.iter()
            .find(|e| matches!(e.kind(), ElementKind::Class(_)) && e.name() == name)
            .map(Element::id)
    }

    /// Finds an operation `name` on classifier `classifier`.
    pub fn find_operation(&self, classifier: ElementId, name: &str) -> Option<ElementId> {
        self.index()
            .operations
            .get(&classifier)?
            .iter()
            .copied()
            .find(|&op| crate::index::name_of(self, op) == name)
    }

    /// Full-scan reference for [`Model::find_operation`].
    pub fn find_operation_scan(&self, classifier: ElementId, name: &str) -> Option<ElementId> {
        self.operations_of_scan(classifier)
            .into_iter()
            .find(|&op| self.element(op).map(|e| e.name() == name).unwrap_or(false))
    }

    /// Finds an attribute `name` on classifier `classifier`.
    pub fn find_attribute(&self, classifier: ElementId, name: &str) -> Option<ElementId> {
        self.index()
            .attributes
            .get(&classifier)?
            .iter()
            .copied()
            .find(|&a| crate::index::name_of(self, a) == name)
    }

    /// Full-scan reference for [`Model::find_attribute`].
    pub fn find_attribute_scan(&self, classifier: ElementId, name: &str) -> Option<ElementId> {
        self.attributes_of_scan(classifier)
            .into_iter()
            .find(|&a| self.element(a).map(|e| e.name() == name).unwrap_or(false))
    }

    /// Resolves a `::`-separated qualified name starting at the root
    /// package. The first segment must be the root (model) name.
    pub fn find_by_qualified_name(&self, qname: &str) -> Option<ElementId> {
        let ix = self.index();
        let mut segments = qname.split("::");
        let first = segments.next()?;
        if first != self.name() {
            return None;
        }
        let mut cur = self.root();
        for seg in segments {
            // Greedy per-segment resolution, exactly like the scan: the
            // first (lowest-id) child with the segment name wins.
            cur = *ix.child_by_name.get(&cur)?.get(seg)?;
        }
        Some(cur)
    }

    /// Full-scan reference for [`Model::find_by_qualified_name`].
    pub fn find_by_qualified_name_scan(&self, qname: &str) -> Option<ElementId> {
        let mut segments = qname.split("::");
        let first = segments.next()?;
        if first != self.name() {
            return None;
        }
        let mut cur = self.root();
        for seg in segments {
            cur = self
                .children(cur)
                .into_iter()
                .find(|&c| self.element(c).map(|e| e.name() == seg).unwrap_or(false))?;
        }
        Some(cur)
    }

    /// All elements carrying the given stereotype, in id order.
    pub fn stereotyped(&self, stereotype: &str) -> Vec<ElementId> {
        self.index().stereotyped.get(stereotype).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::stereotyped`].
    pub fn stereotyped_scan(&self, stereotype: &str) -> Vec<ElementId> {
        self.iter().filter(|e| e.core().has_stereotype(stereotype)).map(Element::id).collect()
    }

    /// Associations with at least one end attached to `classifier`.
    pub fn associations_of(&self, classifier: ElementId) -> Vec<ElementId> {
        self.index().associations_of.get(&classifier).cloned().unwrap_or_default()
    }

    /// Full-scan reference for [`Model::associations_of`].
    pub fn associations_of_scan(&self, classifier: ElementId) -> Vec<ElementId> {
        self.iter()
            .filter(|e| match e.kind() {
                ElementKind::Association(a) => {
                    a.ends[0].class == classifier || a.ends[1].class == classifier
                }
                _ => false,
            })
            .map(Element::id)
            .collect()
    }

    /// Indexed children lookup (same contract as [`Model::children`],
    /// which remains a scan in `model.rs` because mutators use it).
    pub fn children_indexed(&self, id: ElementId) -> Vec<ElementId> {
        self.index().children.get(&id).cloned().unwrap_or_default()
    }

    /// All data types, in id order (indexed).
    pub fn data_types(&self) -> Vec<ElementId> {
        self.elements_of_kind("DataType")
    }

    /// All enumerations, in id order (indexed).
    pub fn enumerations(&self) -> Vec<ElementId> {
        self.elements_of_kind("Enumeration")
    }

    /// The kind name of an indexed element (diagnostic helper).
    pub fn kind_name_of(&self, id: ElementId) -> Option<&'static str> {
        self.element(id).ok().map(|e| kind_of(self, e.id()).kind_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{AssociationEnd, Primitive};

    fn diamond() -> (Model, ElementId, ElementId, ElementId, ElementId) {
        // D -> B -> A, D -> C -> A
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        let c = m.add_class(m.root(), "C").unwrap();
        let d = m.add_class(m.root(), "D").unwrap();
        m.add_generalization(b, a).unwrap();
        m.add_generalization(c, a).unwrap();
        m.add_generalization(d, b).unwrap();
        m.add_generalization(d, c).unwrap();
        (m, a, b, c, d)
    }

    #[test]
    fn ancestors_deduplicate_diamond() {
        let (m, a, b, c, d) = diamond();
        let anc = m.ancestors_of(d);
        assert_eq!(anc.len(), 3);
        for x in [a, b, c] {
            assert!(anc.contains(&x));
        }
        assert!(m.is_kind_of(d, a));
        assert!(m.is_kind_of(d, d));
        assert!(!m.is_kind_of(a, d));
        assert_eq!(anc, m.ancestors_of_scan(d), "index must match the scan order");
    }

    #[test]
    fn specializations_inverse_of_parents() {
        let (m, a, b, c, _d) = diamond();
        let spec = m.specializations_of(a);
        assert!(spec.contains(&b) && spec.contains(&c));
        assert_eq!(m.parents_of(b), vec![a]);
    }

    #[test]
    fn qualified_name_lookup() {
        let mut m = Model::new("bank");
        let p = m.add_package(m.root(), "core").unwrap();
        let c = m.add_class(p, "Account").unwrap();
        let o = m.add_operation(c, "deposit").unwrap();
        assert_eq!(m.find_by_qualified_name("bank::core::Account::deposit"), Some(o));
        assert_eq!(m.find_by_qualified_name("bank::core::Missing"), None);
        assert_eq!(m.find_by_qualified_name("other::core"), None);
        assert_eq!(m.find_by_qualified_name("bank"), Some(m.root()));
    }

    #[test]
    fn feature_queries_ordered_by_insertion() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let x = m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        let y = m.add_attribute(c, "y", Primitive::Int.into()).unwrap();
        let f = m.add_operation(c, "f").unwrap();
        assert_eq!(m.attributes_of(c), vec![x, y]);
        assert_eq!(m.operations_of(c), vec![f]);
        assert_eq!(m.find_attribute(c, "y"), Some(y));
        assert_eq!(m.find_operation(c, "f"), Some(f));
        assert_eq!(m.find_operation(c, "g"), None);
    }

    #[test]
    fn stereotyped_and_associations_of() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.apply_stereotype(a, "Remote").unwrap();
        let assoc = m
            .add_association(m.root(), "", AssociationEnd::new("a", a), AssociationEnd::new("b", b))
            .unwrap();
        assert_eq!(m.stereotyped("Remote"), vec![a]);
        assert_eq!(m.associations_of(a), vec![assoc]);
        assert_eq!(m.associations_of(b), vec![assoc]);
        assert_eq!(m.associations(), vec![assoc]);
    }

    #[test]
    fn indexed_queries_track_mutations() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        assert_eq!(m.classes(), vec![a]);
        let b = m.add_class(m.root(), "B").unwrap();
        assert_eq!(m.classes(), vec![a, b], "index must see the new class");
        m.remove_element(a).unwrap();
        assert_eq!(m.classes(), vec![b], "index must forget removed classes");
        m.apply_stereotype(b, "Remote").unwrap();
        assert_eq!(m.stereotyped("Remote"), vec![b]);
        assert_eq!(m.classes(), m.classes_scan());
        assert_eq!(m.children_indexed(m.root()), m.children(m.root()));
    }
}
