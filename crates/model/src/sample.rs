//! Factory functions for the models used throughout the workspace: the
//! banking PIM that plays the role of the paper's running example, an
//! auction PIM, and a synthetic model generator for scaling benchmarks.

use crate::builder::ModelBuilder;
use crate::id::ElementId;
use crate::kinds::{AssociationEnd, Multiplicity, Primitive};
use crate::model::Model;

/// Builds the banking platform-independent model used as the paper's
/// running example substrate: `Account`, `Customer`, `Bank` with a
/// `transfer` operation that the transactions concern later wraps, and a
/// `getBalance` query the security concern later guards.
///
/// # Panics
/// Never panics; construction uses only statically valid names.
pub fn banking_pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?
                .attribute("balance", Primitive::Int)?
                .operation("deposit", |o| o.parameter("amount", Primitive::Int))?
                .operation("withdraw", |o| {
                    o.parameter("amount", Primitive::Int)?.returns(Primitive::Bool)
                })?
                .operation("getBalance", |o| o.returns(Primitive::Int))
        })
        .expect("valid banking model")
        .class("Customer", |c| {
            c.attribute("name", Primitive::Str)?.attribute("vip", Primitive::Bool)
        })
        .expect("valid banking model")
        .class("Bank", |c| {
            c.attribute("name", Primitive::Str)?
                .operation("transfer", |o| {
                    o.parameter("from", Primitive::Str)?
                        .parameter("to", Primitive::Str)?
                        .parameter("amount", Primitive::Int)?
                        .returns(Primitive::Bool)
                })?
                .operation("openAccount", |o| {
                    o.parameter("number", Primitive::Str)?.returns(Primitive::Bool)
                })?
                .operation("audit", |o| o.returns(Primitive::Str))
        })
        .expect("valid banking model")
        .build();

    let account = model.find_class("Account").expect("Account exists");
    let customer = model.find_class("Customer").expect("Customer exists");
    let mut owner_end = AssociationEnd::new("owner", customer);
    owner_end.multiplicity = Multiplicity::one();
    let mut accounts_end = AssociationEnd::new("accounts", account);
    accounts_end.multiplicity = Multiplicity::many();
    model
        .add_association(model.root(), "ownership", owner_end, accounts_end)
        .expect("valid association");
    model
        .add_constraint(account, "nonNegativeBalance", "self.balance >= 0")
        .expect("valid constraint");
    model
}

/// Builds an auction-house PIM used by the distribution-heavy example:
/// `AuctionHouse` (remote service), `Auction`, `Bidder`.
pub fn auction_pim() -> Model {
    let mut model = ModelBuilder::new("auction")
        .class("AuctionHouse", |c| {
            c.attribute("name", Primitive::Str)?
                .operation("openAuction", |o| {
                    o.parameter("item", Primitive::Str)?
                        .parameter("reserve", Primitive::Int)?
                        .returns(Primitive::Int)
                })?
                .operation("placeBid", |o| {
                    o.parameter("auctionId", Primitive::Int)?
                        .parameter("bidder", Primitive::Str)?
                        .parameter("amount", Primitive::Int)?
                        .returns(Primitive::Bool)
                })?
                .operation("close", |o| {
                    o.parameter("auctionId", Primitive::Int)?.returns(Primitive::Str)
                })
        })
        .expect("valid auction model")
        .class("Auction", |c| {
            c.attribute("item", Primitive::Str)?
                .attribute("highestBid", Primitive::Int)?
                .attribute("highestBidder", Primitive::Str)?
                .attribute("open", Primitive::Bool)
        })
        .expect("valid auction model")
        .class("Bidder", |c| {
            c.attribute("name", Primitive::Str)?.attribute("budget", Primitive::Int)
        })
        .expect("valid auction model")
        .build();

    let house = model.find_class("AuctionHouse").expect("exists");
    let auction = model.find_class("Auction").expect("exists");
    let mut auctions_end = AssociationEnd::new("auctions", auction);
    auctions_end.multiplicity = Multiplicity::many();
    model
        .add_association(model.root(), "hosts", AssociationEnd::new("house", house), auctions_end)
        .expect("valid association");
    model
}

/// Deterministically generates a synthetic model with `classes` classes,
/// each carrying `attrs_per_class` integer attributes and
/// `ops_per_class` operations with two parameters, plus a generalization
/// chain every 10 classes. Used by scaling benchmarks (E6, E7, E10).
pub fn synthetic(classes: usize, attrs_per_class: usize, ops_per_class: usize) -> Model {
    let mut m = Model::new("synthetic");
    let root = m.root();
    let mut prev: Option<ElementId> = None;
    for i in 0..classes {
        let c = m.add_class(root, &format!("C{i}")).expect("unique names");
        for a in 0..attrs_per_class {
            m.add_attribute(c, &format!("a{a}"), Primitive::Int.into()).expect("unique");
        }
        for o in 0..ops_per_class {
            let op = m.add_operation(c, &format!("op{o}")).expect("unique");
            m.add_parameter(op, "x", Primitive::Int.into()).expect("unique");
            m.add_parameter(op, "y", Primitive::Str.into()).expect("unique");
            m.set_return_type(op, Primitive::Int.into()).expect("operation exists");
        }
        if i % 10 != 0 {
            if let Some(p) = prev {
                m.add_generalization(c, p).expect("acyclic by construction");
            }
        }
        prev = Some(c);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banking_pim_is_well_formed() {
        let m = banking_pim();
        assert!(m.validate().is_ok());
        let bank = m.find_class("Bank").unwrap();
        assert!(m.find_operation(bank, "transfer").is_some());
        let account = m.find_class("Account").unwrap();
        assert_eq!(m.constraints_on(account).len(), 1);
    }

    #[test]
    fn auction_pim_is_well_formed() {
        let m = auction_pim();
        assert!(m.validate().is_ok());
        assert!(m.find_class("AuctionHouse").is_some());
        assert_eq!(m.associations().len(), 1);
    }

    #[test]
    fn synthetic_scales_and_validates() {
        let m = synthetic(25, 3, 2);
        assert!(m.validate().is_ok());
        assert_eq!(m.classes().len(), 25);
        let c0 = m.find_class("C0").unwrap();
        assert_eq!(m.attributes_of(c0).len(), 3);
        assert_eq!(m.operations_of(c0).len(), 2);
    }

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(synthetic(10, 2, 2), synthetic(10, 2, 2));
    }
}
