//! Model elements: a common core (name, owner, stereotypes, tagged
//! values) plus a kind-specific payload.

use crate::id::ElementId;
use crate::kinds::*;
use std::collections::BTreeMap;
use std::fmt;

/// Data shared by every element regardless of kind.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementCore {
    /// Simple (unqualified) name.
    pub name: String,
    /// Owning element (`None` only for the model root package).
    pub owner: Option<ElementId>,
    /// Applied stereotypes, e.g. `"Transactional"`, sorted and unique.
    pub stereotypes: Vec<String>,
    /// Tagged values keyed by tag name.
    pub tags: BTreeMap<String, TagValue>,
    /// Feature visibility (meaningful for features and classifiers).
    pub visibility: Visibility,
    /// Documentation comment.
    pub doc: String,
}

impl ElementCore {
    /// Creates a core with the given name and owner and empty extensions.
    pub fn new(name: impl Into<String>, owner: Option<ElementId>) -> Self {
        ElementCore {
            name: name.into(),
            owner,
            stereotypes: Vec::new(),
            tags: BTreeMap::new(),
            visibility: Visibility::Public,
            doc: String::new(),
        }
    }

    /// Returns true when the stereotype is applied to this element.
    pub fn has_stereotype(&self, name: &str) -> bool {
        self.stereotypes.iter().any(|s| s == name)
    }

    /// Applies a stereotype; keeps the list sorted and duplicate-free.
    pub fn apply_stereotype(&mut self, name: impl Into<String>) {
        let name = name.into();
        if let Err(pos) = self.stereotypes.binary_search(&name) {
            self.stereotypes.insert(pos, name);
        }
    }

    /// Removes a stereotype; returns whether it was present.
    pub fn remove_stereotype(&mut self, name: &str) -> bool {
        if let Ok(pos) = self.stereotypes.binary_search_by(|s| s.as_str().cmp(name)) {
            self.stereotypes.remove(pos);
            true
        } else {
            false
        }
    }

    /// Sets a tagged value, returning the previous value if any.
    pub fn set_tag(
        &mut self,
        key: impl Into<String>,
        value: impl Into<TagValue>,
    ) -> Option<TagValue> {
        self.tags.insert(key.into(), value.into())
    }

    /// Reads a tagged value.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.get(key)
    }
}

/// The kind-discriminated payload of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// Namespace grouping other elements.
    Package(PackageData),
    /// A class.
    Class(ClassData),
    /// An interface.
    Interface(InterfaceData),
    /// A user-defined value type.
    DataType(DataTypeData),
    /// An enumeration with literals.
    Enumeration(EnumerationData),
    /// A structural feature of a classifier.
    Attribute(AttributeData),
    /// A behavioural feature of a classifier.
    Operation(OperationData),
    /// A parameter of an operation.
    Parameter(ParameterData),
    /// A binary association between classifiers.
    Association(AssociationData),
    /// An inheritance relationship.
    Generalization(GeneralizationData),
    /// A dependency relationship.
    Dependency(DependencyData),
    /// An attached constraint (OCL-like body).
    Constraint(ConstraintData),
}

impl ElementKind {
    /// Human-readable kind name, as used in diagnostics and XMI tags.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ElementKind::Package(_) => "Package",
            ElementKind::Class(_) => "Class",
            ElementKind::Interface(_) => "Interface",
            ElementKind::DataType(_) => "DataType",
            ElementKind::Enumeration(_) => "Enumeration",
            ElementKind::Attribute(_) => "Attribute",
            ElementKind::Operation(_) => "Operation",
            ElementKind::Parameter(_) => "Parameter",
            ElementKind::Association(_) => "Association",
            ElementKind::Generalization(_) => "Generalization",
            ElementKind::Dependency(_) => "Dependency",
            ElementKind::Constraint(_) => "Constraint",
        }
    }

    /// Returns true for kinds that may own classifier features.
    pub fn is_classifier(&self) -> bool {
        matches!(
            self,
            ElementKind::Class(_)
                | ElementKind::Interface(_)
                | ElementKind::DataType(_)
                | ElementKind::Enumeration(_)
        )
    }
}

/// A model element: identity + shared core + kind payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    id: ElementId,
    core: ElementCore,
    kind: ElementKind,
}

impl Element {
    /// Assembles an element. Intended for the model and deserializers.
    pub fn new(id: ElementId, core: ElementCore, kind: ElementKind) -> Self {
        Element { id, core, kind }
    }

    /// The element's identity.
    pub fn id(&self) -> ElementId {
        self.id
    }

    /// Shared data (name, owner, stereotypes, tags).
    pub fn core(&self) -> &ElementCore {
        &self.core
    }

    /// Mutable shared data.
    pub fn core_mut(&mut self) -> &mut ElementCore {
        &mut self.core
    }

    /// Kind payload.
    pub fn kind(&self) -> &ElementKind {
        &self.kind
    }

    /// Mutable kind payload.
    pub fn kind_mut(&mut self) -> &mut ElementKind {
        &mut self.kind
    }

    /// Shorthand for `self.core().name`.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Shorthand for `self.core().owner`.
    pub fn owner(&self) -> Option<ElementId> {
        self.core.owner
    }

    /// Downcast helper: class payload.
    pub fn as_class(&self) -> Option<&ClassData> {
        match &self.kind {
            ElementKind::Class(c) => Some(c),
            _ => None,
        }
    }

    /// Downcast helper: attribute payload.
    pub fn as_attribute(&self) -> Option<&AttributeData> {
        match &self.kind {
            ElementKind::Attribute(a) => Some(a),
            _ => None,
        }
    }

    /// Downcast helper: mutable attribute payload.
    pub fn as_attribute_mut(&mut self) -> Option<&mut AttributeData> {
        match &mut self.kind {
            ElementKind::Attribute(a) => Some(a),
            _ => None,
        }
    }

    /// Downcast helper: operation payload.
    pub fn as_operation(&self) -> Option<&OperationData> {
        match &self.kind {
            ElementKind::Operation(o) => Some(o),
            _ => None,
        }
    }

    /// Downcast helper: mutable operation payload.
    pub fn as_operation_mut(&mut self) -> Option<&mut OperationData> {
        match &mut self.kind {
            ElementKind::Operation(o) => Some(o),
            _ => None,
        }
    }

    /// Downcast helper: parameter payload.
    pub fn as_parameter(&self) -> Option<&ParameterData> {
        match &self.kind {
            ElementKind::Parameter(p) => Some(p),
            _ => None,
        }
    }

    /// Downcast helper: association payload.
    pub fn as_association(&self) -> Option<&AssociationData> {
        match &self.kind {
            ElementKind::Association(a) => Some(a),
            _ => None,
        }
    }

    /// Downcast helper: generalization payload.
    pub fn as_generalization(&self) -> Option<&GeneralizationData> {
        match &self.kind {
            ElementKind::Generalization(g) => Some(g),
            _ => None,
        }
    }

    /// Downcast helper: constraint payload.
    pub fn as_constraint(&self) -> Option<&ConstraintData> {
        match &self.kind {
            ElementKind::Constraint(c) => Some(c),
            _ => None,
        }
    }

    /// Downcast helper: enumeration payload.
    pub fn as_enumeration(&self) -> Option<&EnumerationData> {
        match &self.kind {
            ElementKind::Enumeration(e) => Some(e),
            _ => None,
        }
    }

    /// Returns true when this element is a classifier.
    pub fn is_classifier(&self) -> bool {
        self.kind.is_classifier()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} `{}`", self.id, self.kind.kind_name(), self.core.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new(
            ElementId::from_raw(1),
            ElementCore::new("Account", None),
            ElementKind::Class(ClassData::default()),
        )
    }

    #[test]
    fn stereotypes_stay_sorted_and_unique() {
        let mut e = sample();
        e.core_mut().apply_stereotype("Secured");
        e.core_mut().apply_stereotype("Remote");
        e.core_mut().apply_stereotype("Secured");
        assert_eq!(e.core().stereotypes, vec!["Remote", "Secured"]);
        assert!(e.core().has_stereotype("Remote"));
        assert!(e.core_mut().remove_stereotype("Remote"));
        assert!(!e.core_mut().remove_stereotype("Remote"));
        assert_eq!(e.core().stereotypes, vec!["Secured"]);
    }

    #[test]
    fn tags_set_and_get() {
        let mut e = sample();
        assert!(e.core_mut().set_tag("isolation", "serializable").is_none());
        assert_eq!(e.core().tag("isolation").unwrap().as_str(), Some("serializable"));
        let prev = e.core_mut().set_tag("isolation", "read-committed").unwrap();
        assert_eq!(prev.as_str(), Some("serializable"));
    }

    #[test]
    fn downcasts() {
        let e = sample();
        assert!(e.as_class().is_some());
        assert!(e.as_attribute().is_none());
        assert!(e.is_classifier());
        assert_eq!(e.kind().kind_name(), "Class");
        assert_eq!(e.to_string(), "#1 Class `Account`");
    }
}
