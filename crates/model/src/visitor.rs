//! Depth-first model traversal with a visitor.

use crate::element::{Element, ElementKind};
use crate::id::ElementId;
use crate::model::Model;

/// Callbacks invoked by [`walk`] during a depth-first ownership traversal.
///
/// All methods have empty default bodies so implementors only override
/// the hooks they care about.
pub trait Visitor {
    /// Called for every element before its children.
    fn enter(&mut self, _model: &Model, _element: &Element) {}
    /// Called for every element after its children.
    fn leave(&mut self, _model: &Model, _element: &Element) {}
    /// Called for package elements (before children).
    fn visit_package(&mut self, _model: &Model, _element: &Element) {}
    /// Called for classifier elements (before children).
    fn visit_classifier(&mut self, _model: &Model, _element: &Element) {}
    /// Called for attribute elements.
    fn visit_attribute(&mut self, _model: &Model, _element: &Element) {}
    /// Called for operation elements (before parameters).
    fn visit_operation(&mut self, _model: &Model, _element: &Element) {}
    /// Called for relationship elements (association, generalization,
    /// dependency).
    fn visit_relationship(&mut self, _model: &Model, _element: &Element) {}
    /// Called for constraint elements.
    fn visit_constraint(&mut self, _model: &Model, _element: &Element) {}
}

/// Walks the ownership tree rooted at the model root, depth-first, in id
/// order among siblings, invoking the visitor hooks.
pub fn walk<V: Visitor>(model: &Model, visitor: &mut V) {
    walk_from(model, model.root(), visitor);
}

/// Walks the ownership subtree rooted at `start`.
pub fn walk_from<V: Visitor>(model: &Model, start: ElementId, visitor: &mut V) {
    let element = match model.element(start) {
        Ok(e) => e,
        Err(_) => return,
    };
    visitor.enter(model, element);
    match element.kind() {
        ElementKind::Package(_) => visitor.visit_package(model, element),
        k if k.is_classifier() => visitor.visit_classifier(model, element),
        ElementKind::Attribute(_) => visitor.visit_attribute(model, element),
        ElementKind::Operation(_) => visitor.visit_operation(model, element),
        ElementKind::Association(_)
        | ElementKind::Generalization(_)
        | ElementKind::Dependency(_) => visitor.visit_relationship(model, element),
        ElementKind::Constraint(_) => visitor.visit_constraint(model, element),
        _ => {}
    }
    for child in model.children(start) {
        walk_from(model, child, visitor);
    }
    // Re-borrow: the recursive calls only took shared borrows, but keep
    // the lookup local for clarity.
    if let Ok(e) = model.element(start) {
        visitor.leave(model, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::Primitive;

    #[derive(Default)]
    struct Counter {
        enters: usize,
        leaves: usize,
        classifiers: usize,
        attributes: usize,
        operations: usize,
        packages: usize,
        order: Vec<String>,
    }

    impl Visitor for Counter {
        fn enter(&mut self, _m: &Model, e: &Element) {
            self.enters += 1;
            self.order.push(format!("+{}", e.name()));
        }
        fn leave(&mut self, _m: &Model, e: &Element) {
            self.leaves += 1;
            self.order.push(format!("-{}", e.name()));
        }
        fn visit_package(&mut self, _m: &Model, _e: &Element) {
            self.packages += 1;
        }
        fn visit_classifier(&mut self, _m: &Model, _e: &Element) {
            self.classifiers += 1;
        }
        fn visit_attribute(&mut self, _m: &Model, _e: &Element) {
            self.attributes += 1;
        }
        fn visit_operation(&mut self, _m: &Model, _e: &Element) {
            self.operations += 1;
        }
    }

    #[test]
    fn walk_visits_every_owned_element_once() {
        let mut m = Model::new("m");
        let p = m.add_package(m.root(), "p").unwrap();
        let c = m.add_class(p, "C").unwrap();
        m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        let op = m.add_operation(c, "f").unwrap();
        m.add_parameter(op, "a", Primitive::Int.into()).unwrap();

        let mut v = Counter::default();
        walk(&m, &mut v);
        assert_eq!(v.enters, m.len());
        assert_eq!(v.leaves, m.len());
        assert_eq!(v.packages, 2); // root + p
        assert_eq!(v.classifiers, 1);
        assert_eq!(v.attributes, 1);
        assert_eq!(v.operations, 1);
        // Depth-first: C closes only after its features closed.
        let pos = |s: &str| v.order.iter().position(|x| x == s).unwrap();
        assert!(pos("+C") < pos("+x"));
        assert!(pos("-x") < pos("-C"));
        assert!(pos("+f") < pos("+a"));
    }

    #[test]
    fn walk_from_unknown_id_is_a_noop() {
        let m = Model::new("m");
        let mut v = Counter::default();
        walk_from(&m, crate::ElementId::from_raw(999), &mut v);
        assert_eq!(v.enters, 0);
    }
}
