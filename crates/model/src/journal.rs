//! The change journal: delta-based undo for transactional mutation.
//!
//! A transformation that fails halfway must leave the model exactly as
//! it found it. The original mechanism was a whole-model clone taken
//! before the body ran — O(model) per application even when the body
//! touches three elements. The journal replaces that: while a journal
//! is active, every mutation choke point of [`Model`](crate::Model)
//! (element allocation, [`element_mut`](crate::Model::element_mut),
//! [`remove_element`](crate::Model::remove_element),
//! [`set_name`](crate::Model::set_name) — the same choke points the
//! index generation counter instruments) records an **inverse
//! operation**, and a failed step is rolled back by replaying those
//! inverses in reverse order — O(delta), not O(model).
//!
//! ## Inverse-op table
//!
//! | mutation                  | journal record            | inverse replay                      |
//! |---------------------------|---------------------------|-------------------------------------|
//! | element allocation        | `Create{id, prev_next_id}`| remove `id`, restore `next_id`      |
//! | `element_mut(id)`         | `Mutate{id, before}`      | reinsert the `before` snapshot      |
//! | `remove_element(id)`      | `Remove{before: Vec<_>}`  | reinsert every removed element      |
//! | `set_name(n)`             | `SetName{prev}` (+Mutate) | restore the model name (root via Mutate) |
//!
//! `Mutate` is recorded *conservatively*: handing out `&mut Element`
//! may change anything, so the pre-image is snapshotted whether or not
//! the caller ends up writing. The commit-time summary compares
//! pre-images against the final state, so a read-only `element_mut`
//! does not show up as a modification. Within one savepoint segment
//! only the **first** pre-image per element is kept: replaying the
//! earliest snapshot already restores the pre-segment state, so later
//! `Mutate`s on the same id would only bloat the op log and over-count
//! in diagnostics ([`Journal::wants_mutate`]).
//!
//! ## Savepoints
//!
//! Journals nest: [`Model::begin_journal`] pushes a savepoint, and
//! commit/rollback operate on the ops recorded since the innermost
//! savepoint. A nested commit folds its ops into the enclosing segment
//! (so an outer rollback still unwinds them); the outermost commit
//! discards the journal. This is what lets the MDA lifecycle wrap a
//! whole refinement step — transformation body *plus* repository
//! bookkeeping — in one atomic unit while the transformation engine
//! keeps its own inner bracket.

use crate::element::Element;
use crate::id::ElementId;
use std::collections::{BTreeMap, BTreeSet};

/// One recorded inverse operation.
#[derive(Debug, Clone)]
pub(crate) enum JournalOp {
    /// An element id was allocated (every `add_*` funnels through the
    /// allocator); undone by deleting the element and restoring the
    /// id watermark.
    Create {
        /// The allocated id.
        id: ElementId,
        /// `next_id` before the allocation.
        prev_next_id: u64,
    },
    /// Mutable access was handed out for an element; `before` is its
    /// pre-image.
    Mutate {
        /// The element.
        id: ElementId,
        /// Snapshot taken before the `&mut` borrow.
        before: Box<Element>,
    },
    /// A `remove_element` cascade deleted these elements.
    Remove {
        /// Full snapshots of everything the cascade removed.
        before: Vec<Element>,
    },
    /// The model was renamed (the root element's rename is covered by a
    /// paired `Mutate`).
    SetName {
        /// The model name before the rename.
        prev: String,
    },
}

/// What a removed element *was*: the identity needed to localize the
/// removal after the element is gone. Captured from the `Remove`
/// snapshots at summary time — the ids in
/// [`JournalSummary::removed`] no longer resolve against the model, so
/// downstream dirty-set consumers (incremental weaving, condition
/// caching) would otherwise have to treat every removal as a global
/// invalidation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedElement {
    /// The removed element's id.
    pub id: ElementId,
    /// Its metamodel kind name (`"Class"`, `"Operation"`, ...).
    pub kind: &'static str,
    /// Its name at removal time.
    pub name: String,
    /// Its owner at removal time; the owner may itself have been
    /// removed by the same cascade (then it appears in the same list).
    pub owner: Option<ElementId>,
}

/// What one committed journal segment changed, derived purely from the
/// recorded ops — no before/after model sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalSummary {
    /// Elements created in the segment and still present, in id order.
    pub created: Vec<ElementId>,
    /// Pre-existing elements whose content actually changed, in id order.
    pub modified: Vec<ElementId>,
    /// Pre-existing elements removed by the segment, in id order.
    pub removed: Vec<ElementId>,
    /// Kind/name/owner of each entry in `removed`, same order.
    pub removed_detail: Vec<RemovedElement>,
    /// Number of raw ops the segment recorded (diagnostics).
    pub ops: usize,
}

impl JournalSummary {
    /// True when the segment left the model untouched.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }

    /// Total elements touched.
    pub fn touched(&self) -> usize {
        self.created.len() + self.modified.len() + self.removed.len()
    }
}

/// The active journal stored inside a [`Model`](crate::Model).
///
/// Derived bookkeeping like the index cache: never cloned with the
/// model, ignored by equality.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    ops: Vec<JournalOp>,
    /// Stack of segment starts; one entry per `begin_journal` not yet
    /// committed or rolled back.
    savepoints: Vec<usize>,
    /// Per-segment set of ids that already have a `Mutate` pre-image,
    /// parallel to `savepoints`. Keeping only the first pre-image per
    /// segment is enough for inverse replay (the earliest snapshot
    /// restores the pre-segment state) and stops repeated
    /// `element_mut(id)` from appending one op each.
    mutated: Vec<BTreeSet<ElementId>>,
}

impl Journal {
    /// Opens the outermost segment.
    pub(crate) fn new() -> Self {
        Journal { ops: Vec::new(), savepoints: vec![0], mutated: vec![BTreeSet::new()] }
    }

    /// Opens a nested segment.
    pub(crate) fn push_savepoint(&mut self) {
        self.savepoints.push(self.ops.len());
        self.mutated.push(BTreeSet::new());
    }

    /// Current nesting depth.
    pub(crate) fn depth(&self) -> usize {
        self.savepoints.len()
    }

    /// Whether a `Mutate` pre-image for `id` is still wanted in the
    /// innermost segment. Callers check this *before* cloning the
    /// pre-image so the duplicate case costs a set lookup, not a clone.
    /// A nested segment records its own first pre-image even when the
    /// enclosing segment already has one: a rollback of the inner
    /// segment must be able to restore the element on its own.
    pub(crate) fn wants_mutate(&self, id: ElementId) -> bool {
        !self.mutated.last().expect("active journal has a segment").contains(&id)
    }

    /// Records an op. Duplicate `Mutate`s per id per segment are
    /// dropped (see [`Journal::wants_mutate`]).
    pub(crate) fn record(&mut self, op: JournalOp) {
        if let JournalOp::Mutate { id, .. } = &op {
            if !self.mutated.last_mut().expect("active journal has a segment").insert(*id) {
                return;
            }
        }
        self.ops.push(op);
    }

    /// Ids created since the innermost savepoint, in recording order.
    pub(crate) fn created_since_savepoint(&self) -> Vec<ElementId> {
        let sp = *self.savepoints.last().expect("active journal has a savepoint");
        self.ops[sp..]
            .iter()
            .filter_map(|op| match op {
                JournalOp::Create { id, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Closes the innermost segment, summarizing it against the final
    /// element state. Returns the summary and whether the journal as a
    /// whole is now finished (last savepoint popped).
    pub(crate) fn commit(
        &mut self,
        elements: &BTreeMap<ElementId, Element>,
    ) -> (JournalSummary, bool) {
        let sp = self.savepoints.pop().expect("active journal has a savepoint");
        let summary = summarize(&self.ops[sp..], elements);
        // A nested segment's ops stay: the enclosing segment must still
        // be able to unwind them. Its pre-imaged ids fold into the
        // enclosing segment for the same reason — the enclosing replay
        // already restores them, so re-recording would be redundant.
        let folded = self.mutated.pop().expect("active journal has a segment");
        if let Some(enclosing) = self.mutated.last_mut() {
            enclosing.extend(folded);
        }
        (summary, self.savepoints.is_empty())
    }

    /// Summarizes the innermost segment *without* closing it: what a
    /// commit right now would report. This is how callers learn the
    /// dirty set of an in-flight segment (e.g. to judge postconditions
    /// incrementally) while keeping the option to roll back.
    pub(crate) fn summarize_open(&self, elements: &BTreeMap<ElementId, Element>) -> JournalSummary {
        let sp = *self.savepoints.last().expect("active journal has a savepoint");
        summarize(&self.ops[sp..], elements)
    }

    /// Unwinds the innermost segment: replays inverses newest-first and
    /// drops the segment's ops. Returns the mutations undone and
    /// whether the journal is now finished.
    pub(crate) fn rollback(
        &mut self,
        elements: &mut BTreeMap<ElementId, Element>,
        next_id: &mut u64,
        name: &mut String,
    ) -> (usize, bool) {
        let sp = self.savepoints.pop().expect("active journal has a savepoint");
        // The segment's ops are about to be drained, so its dedup set
        // simply disappears with them; ids the enclosing segment also
        // pre-imaged are still covered by its own set.
        self.mutated.pop().expect("active journal has a segment");
        let undone = self.ops.len() - sp;
        for op in self.ops.drain(sp..).rev() {
            match op {
                JournalOp::Create { id, prev_next_id } => {
                    elements.remove(&id);
                    *next_id = prev_next_id;
                }
                JournalOp::Mutate { id, before } => {
                    elements.insert(id, *before);
                }
                JournalOp::Remove { before } => {
                    for e in before {
                        elements.insert(e.id(), e);
                    }
                }
                JournalOp::SetName { prev } => {
                    *name = prev;
                }
            }
        }
        (undone, self.savepoints.is_empty())
    }
}

/// Derives created/modified/removed for one segment from its ops.
///
/// * created — `Create` ids still present (created-then-removed cancels
///   out; ids are never reused, so presence is unambiguous);
/// * removed — elements deleted by `Remove` cascades that pre-existed
///   the segment;
/// * modified — pre-existing elements with a recorded pre-image whose
///   final content differs from it (the *earliest* pre-image wins, so
///   a mutate-then-mutate-back sequence reports clean).
fn summarize(ops: &[JournalOp], elements: &BTreeMap<ElementId, Element>) -> JournalSummary {
    let mut created: BTreeSet<ElementId> = BTreeSet::new();
    let mut removed: BTreeSet<ElementId> = BTreeSet::new();
    let mut pre_image: BTreeMap<ElementId, &Element> = BTreeMap::new();
    for op in ops {
        match op {
            JournalOp::Create { id, .. } => {
                created.insert(*id);
            }
            JournalOp::Mutate { id, before } => {
                pre_image.entry(*id).or_insert(before);
            }
            JournalOp::Remove { before } => {
                for e in before {
                    if !created.contains(&e.id()) {
                        removed.insert(e.id());
                        pre_image.entry(e.id()).or_insert(e);
                    }
                }
            }
            JournalOp::SetName { .. } => {}
        }
    }
    let removed_detail = removed
        .iter()
        .map(|id| {
            let e = pre_image[id];
            RemovedElement {
                id: *id,
                kind: e.kind().kind_name(),
                name: e.name().to_owned(),
                owner: e.owner(),
            }
        })
        .collect();
    JournalSummary {
        created: created.iter().copied().filter(|id| elements.contains_key(id)).collect(),
        modified: pre_image
            .iter()
            .filter(|(id, before)| {
                !created.contains(*id)
                    && !removed.contains(*id)
                    && elements.get(*id).map(|now| now != **before).unwrap_or(false)
            })
            .map(|(id, _)| *id)
            .collect(),
        removed: removed.into_iter().collect(),
        removed_detail,
        ops: ops.len(),
    }
}
