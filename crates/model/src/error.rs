//! Error type shared by all model-mutating operations.

use crate::id::ElementId;
use std::error::Error;
use std::fmt;

/// Convenience alias for results carrying a [`ModelError`].
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors produced by model construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The referenced element does not exist in this model.
    UnknownElement(ElementId),
    /// The parent element cannot own a child of the given kind.
    InvalidOwner {
        /// The attempted owner.
        owner: ElementId,
        /// Kind of the owner element.
        owner_kind: &'static str,
        /// Kind of the child being added.
        child_kind: &'static str,
    },
    /// An element with the same name and kind already exists under the owner.
    DuplicateName {
        /// The owner under which the clash occurred.
        owner: ElementId,
        /// The clashing name.
        name: String,
    },
    /// A name was empty or syntactically invalid.
    InvalidName(String),
    /// A generalization would introduce an inheritance cycle.
    InheritanceCycle(ElementId),
    /// The root package cannot be removed or re-owned.
    RootImmutable,
    /// A relationship endpoint has the wrong kind.
    InvalidEndpoint {
        /// The offending endpoint.
        endpoint: ElementId,
        /// What was expected, e.g. "classifier".
        expected: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownElement(id) => write!(f, "unknown element {id}"),
            ModelError::InvalidOwner { owner, owner_kind, child_kind } => {
                write!(f, "element {owner} of kind {owner_kind} cannot own a {child_kind}")
            }
            ModelError::DuplicateName { owner, name } => {
                write!(f, "owner {owner} already contains an element named `{name}`")
            }
            ModelError::InvalidName(n) => write!(f, "invalid element name `{n}`"),
            ModelError::InheritanceCycle(id) => {
                write!(f, "generalization would create an inheritance cycle at {id}")
            }
            ModelError::RootImmutable => write!(f, "the root package cannot be removed or moved"),
            ModelError::InvalidEndpoint { endpoint, expected } => {
                write!(f, "element {endpoint} is not a valid endpoint, expected {expected}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::UnknownElement(ElementId::from_raw(9));
        assert_eq!(e.to_string(), "unknown element #9");
        let e = ModelError::DuplicateName { owner: ElementId::from_raw(1), name: "X".into() };
        assert!(e.to_string().contains("already contains"));
        let e = ModelError::InvalidOwner {
            owner: ElementId::from_raw(2),
            owner_kind: "Attribute",
            child_kind: "Class",
        };
        assert!(e.to_string().contains("cannot own"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
