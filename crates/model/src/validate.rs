//! Well-formedness validation: the static semantics every model must
//! satisfy before a transformation may run (and after it has run — the
//! transformation engine re-validates as part of its postconditions).

use crate::element::ElementKind;
use crate::id::ElementId;
use crate::kinds::TypeRef;
use crate::model::Model;
use std::collections::BTreeSet;
use std::fmt;

/// Category of a well-formedness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// An owner reference does not resolve.
    DanglingOwner,
    /// Ownership contains a cycle (should be impossible via the API).
    OwnershipCycle,
    /// A type reference does not resolve to a classifier.
    DanglingType,
    /// A relationship endpoint does not resolve.
    DanglingEndpoint,
    /// Generalizations form a cycle.
    InheritanceCycle,
    /// Two same-kind siblings share a (non-empty) name.
    DuplicateName,
    /// A multiplicity has lower > upper.
    InvalidMultiplicity,
    /// Named element has an empty name.
    EmptyName,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::DanglingOwner => "dangling owner",
            ViolationKind::OwnershipCycle => "ownership cycle",
            ViolationKind::DanglingType => "dangling type reference",
            ViolationKind::DanglingEndpoint => "dangling relationship endpoint",
            ViolationKind::InheritanceCycle => "inheritance cycle",
            ViolationKind::DuplicateName => "duplicate sibling name",
            ViolationKind::InvalidMultiplicity => "invalid multiplicity",
            ViolationKind::EmptyName => "empty name",
        };
        f.write_str(s)
    }
}

/// One well-formedness violation found by [`Model::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending element.
    pub element: ElementId,
    /// Violation category.
    pub kind: ViolationKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.element, self.kind, self.detail)
    }
}

impl Model {
    /// Checks all well-formedness rules, returning every violation.
    ///
    /// # Errors
    /// Returns the (non-empty) list of violations when the model is not
    /// well-formed.
    pub fn validate(&self) -> Result<(), Vec<Violation>> {
        let mut out = Vec::new();
        self.validate_ownership(&mut out);
        self.validate_references(&mut out);
        self.validate_inheritance(&mut out);
        self.validate_names(&mut out);
        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }

    fn validate_ownership(&self, out: &mut Vec<Violation>) {
        for e in self.iter() {
            if e.id() == self.root() {
                continue;
            }
            match e.owner() {
                None => out.push(Violation {
                    element: e.id(),
                    kind: ViolationKind::DanglingOwner,
                    detail: "non-root element has no owner".into(),
                }),
                Some(o) => {
                    if !self.contains(o) {
                        out.push(Violation {
                            element: e.id(),
                            kind: ViolationKind::DanglingOwner,
                            detail: format!("owner {o} missing"),
                        });
                        continue;
                    }
                    // Walk up; detect cycles with a visited set.
                    let mut seen = BTreeSet::new();
                    let mut cur = Some(o);
                    seen.insert(e.id());
                    while let Some(c) = cur {
                        if !seen.insert(c) {
                            out.push(Violation {
                                element: e.id(),
                                kind: ViolationKind::OwnershipCycle,
                                detail: format!("cycle through {c}"),
                            });
                            break;
                        }
                        cur = self.element(c).ok().and_then(|el| el.owner());
                    }
                }
            }
        }
    }

    fn check_ty(&self, owner: ElementId, ty: TypeRef, out: &mut Vec<Violation>) {
        if let TypeRef::Element(id) = ty {
            let ok = self.element(id).map(|e| e.is_classifier()).unwrap_or(false);
            if !ok {
                out.push(Violation {
                    element: owner,
                    kind: ViolationKind::DanglingType,
                    detail: format!("type reference {id} unresolved or not a classifier"),
                });
            }
        }
    }

    fn check_endpoint(&self, owner: ElementId, id: ElementId, out: &mut Vec<Violation>) {
        if !self.contains(id) {
            out.push(Violation {
                element: owner,
                kind: ViolationKind::DanglingEndpoint,
                detail: format!("endpoint {id} missing"),
            });
        }
    }

    fn validate_references(&self, out: &mut Vec<Violation>) {
        for e in self.iter() {
            match e.kind() {
                ElementKind::Attribute(a) => {
                    self.check_ty(e.id(), a.ty, out);
                    if !a.multiplicity.is_valid() {
                        out.push(Violation {
                            element: e.id(),
                            kind: ViolationKind::InvalidMultiplicity,
                            detail: a.multiplicity.to_string(),
                        });
                    }
                }
                ElementKind::Operation(o) => self.check_ty(e.id(), o.return_type, out),
                ElementKind::Parameter(p) => self.check_ty(e.id(), p.ty, out),
                ElementKind::Association(a) => {
                    for end in &a.ends {
                        self.check_endpoint(e.id(), end.class, out);
                        if !end.multiplicity.is_valid() {
                            out.push(Violation {
                                element: e.id(),
                                kind: ViolationKind::InvalidMultiplicity,
                                detail: end.multiplicity.to_string(),
                            });
                        }
                    }
                }
                ElementKind::Generalization(g) => {
                    self.check_endpoint(e.id(), g.child, out);
                    self.check_endpoint(e.id(), g.parent, out);
                }
                ElementKind::Dependency(d) => {
                    self.check_endpoint(e.id(), d.client, out);
                    self.check_endpoint(e.id(), d.supplier, out);
                }
                ElementKind::Constraint(c) => self.check_endpoint(e.id(), c.constrained, out),
                _ => {}
            }
        }
    }

    fn validate_inheritance(&self, out: &mut Vec<Violation>) {
        for c in self.classifiers() {
            if self.ancestors_of(c).contains(&c) {
                out.push(Violation {
                    element: c,
                    kind: ViolationKind::InheritanceCycle,
                    detail: "classifier inherits from itself".into(),
                });
            }
        }
    }

    fn validate_names(&self, out: &mut Vec<Violation>) {
        for e in self.iter() {
            let named = !matches!(
                e.kind(),
                ElementKind::Association(_)
                    | ElementKind::Generalization(_)
                    | ElementKind::Dependency(_)
            );
            if named && e.name().trim().is_empty() {
                out.push(Violation {
                    element: e.id(),
                    kind: ViolationKind::EmptyName,
                    detail: format!("{} requires a name", e.kind().kind_name()),
                });
            }
        }
        // Duplicate (owner, kind, name) triples.
        let mut seen: BTreeSet<(ElementId, &str, &str)> = BTreeSet::new();
        for e in self.iter() {
            if e.name().is_empty() {
                continue;
            }
            if let Some(o) = e.owner() {
                if !seen.insert((o, e.kind().kind_name(), e.name())) {
                    out.push(Violation {
                        element: e.id(),
                        kind: ViolationKind::DuplicateName,
                        detail: format!("`{}` duplicated under {o}", e.name()),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{AttributeData, Multiplicity, Primitive};

    #[test]
    fn fresh_model_validates() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn invalid_multiplicity_flagged() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let a = m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        if let Some(attr) = m.element_mut(a).unwrap().as_attribute_mut() {
            attr.multiplicity = Multiplicity { lower: 5, upper: Some(1) };
        }
        let violations = m.validate().unwrap_err();
        assert!(violations.iter().any(|v| v.kind == ViolationKind::InvalidMultiplicity));
    }

    #[test]
    fn dangling_type_flagged_after_manual_corruption() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let a = m.add_attribute(c, "x", Primitive::Int.into()).unwrap();
        // Corrupt through the payload directly (bypassing the checked API).
        *m.element_mut(a).unwrap().as_attribute_mut().unwrap() = AttributeData {
            ty: TypeRef::Element(ElementId::from_raw(9999)),
            ..AttributeData::default()
        };
        let violations = m.validate().unwrap_err();
        assert!(violations.iter().any(|v| v.kind == ViolationKind::DanglingType));
        assert!(violations[0].to_string().contains("dangling"));
    }

    #[test]
    fn empty_name_flagged_for_named_kinds() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        m.element_mut(c).unwrap().core_mut().name = String::new();
        let violations = m.validate().unwrap_err();
        assert!(violations.iter().any(|v| v.kind == ViolationKind::EmptyName));
    }

    #[test]
    fn duplicate_names_flagged_after_rename() {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let _b = m.add_class(m.root(), "B").unwrap();
        m.element_mut(a).unwrap().core_mut().name = "B".into();
        let violations = m.validate().unwrap_err();
        assert!(violations.iter().any(|v| v.kind == ViolationKind::DuplicateName));
    }
}
