//! Dirty sets: the journal's change summary turned into an
//! invalidation key for downstream caches.
//!
//! The journal already records exactly which elements an apply touched
//! ([`JournalSummary`]); this module packages that as a [`DirtySet`]
//! and answers the two questions incremental consumers ask:
//!
//! * [`DirtySet::kinds`] — which metamodel *kinds* were touched, so an
//!   OCL condition whose `allInstances` footprint is disjoint can skip
//!   re-evaluation (comet-transform's condition cache);
//! * [`DirtySet::dirty_classes`] — which *classes* can have different
//!   pointcut matches, so the weaver re-weaves only those (comet-aop's
//!   incremental weaver). The mapping is conservative: an element is
//!   localized to its owning classifier, the generalization
//!   specialization closure is added (subclasses inherit changed
//!   members), and `Dependency` clients of dirty classifiers ride
//!   along (call-shadow dependents).
//!
//! Both return `Option`: `None` means "could not localize — invalidate
//! everything". Soundness never depends on precision; a consumer that
//! gets `None` falls back to the full recompute it would have done
//! without the journal.

use crate::element::ElementKind;
use crate::id::ElementId;
use crate::journal::{JournalSummary, RemovedElement};
use crate::model::Model;
use std::collections::BTreeSet;

/// The set of elements one or more journal segments touched, in a form
/// that outlives the segment (removed elements carry their identity).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirtySet {
    /// Elements created and still present, in id order.
    pub created: Vec<ElementId>,
    /// Pre-existing elements whose content changed, in id order.
    pub modified: Vec<ElementId>,
    /// Removed elements with their pre-removal identity, in id order.
    pub removed: Vec<RemovedElement>,
}

impl DirtySet {
    /// Packages a commit summary as a dirty set.
    pub fn from_summary(summary: &JournalSummary) -> Self {
        DirtySet {
            created: summary.created.clone(),
            modified: summary.modified.clone(),
            removed: summary.removed_detail.clone(),
        }
    }

    /// True when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }

    /// Total elements touched.
    pub fn touched(&self) -> usize {
        self.created.len() + self.modified.len() + self.removed.len()
    }

    /// Folds another dirty set in (set union per bucket). Used by
    /// consumers that accumulate deltas across several segments before
    /// reconciling a cache.
    pub fn merge(&mut self, other: &DirtySet) {
        merge_ids(&mut self.created, &other.created);
        merge_ids(&mut self.modified, &other.modified);
        for r in &other.removed {
            if !self.removed.iter().any(|mine| mine.id == r.id) {
                self.removed.push(r.clone());
            }
        }
        self.removed.sort_by_key(|r| r.id);
    }

    /// The metamodel kind names touched, resolved against `model` for
    /// surviving elements and taken from the removal records otherwise.
    /// `None` when a created/modified id no longer resolves (e.g. a
    /// merged set spanning a later removal outside the journal) — the
    /// caller must treat every kind as dirty.
    pub fn kinds(&self, model: &Model) -> Option<BTreeSet<&'static str>> {
        let mut out: BTreeSet<&'static str> = BTreeSet::new();
        for &id in self.created.iter().chain(&self.modified) {
            out.insert(model.element(id).ok()?.kind().kind_name());
        }
        for r in &self.removed {
            out.insert(r.kind);
        }
        Some(out)
    }

    /// The names of classifiers whose *weave* can have changed:
    /// every touched element localized to its owning classifier, plus
    /// the transitive specialization closure (subclasses see inherited
    /// members change), plus `Dependency` clients of anything dirty
    /// (their call shadows may resolve differently) — closed under the
    /// same two rules. `None` when some touched element cannot be
    /// localized (package-level change, removed classifier, dangling
    /// id): the caller must re-weave everything.
    pub fn dirty_classes(&self, model: &Model) -> Option<BTreeSet<String>> {
        let ix = model.index();
        let mut seed: BTreeSet<ElementId> = BTreeSet::new();
        for &id in self.created.iter().chain(&self.modified) {
            let e = model.element(id).ok()?;
            match e.kind() {
                // Relationship elements are localized to the
                // classifiers they connect, not their owning package.
                ElementKind::Generalization(g) => {
                    seed.insert(g.child);
                    seed.insert(g.parent);
                }
                ElementKind::Association(a) => {
                    seed.insert(a.ends[0].class);
                    seed.insert(a.ends[1].class);
                }
                ElementKind::Dependency(d) => {
                    seed.insert(d.client);
                    seed.insert(d.supplier);
                }
                ElementKind::Constraint(c) => {
                    seed.insert(owning_classifier(model, c.constrained)?);
                }
                _ => {
                    seed.insert(owning_classifier(model, id)?);
                }
            }
        }
        for r in &self.removed {
            // A removed classifier takes its whole match neighbourhood
            // with it — generalizations and dependencies that referred
            // to it no longer say which classes they touched. Give up
            // and let the caller re-weave in full.
            if is_classifier_kind(r.kind) || is_relationship_kind(r.kind) {
                return None;
            }
            // A removed feature is localized via its former owner; the
            // owner may itself be gone (same cascade), which the
            // classifier rule above already turned into `None`.
            let owner = r.owner?;
            seed.insert(owning_classifier(model, owner)?);
        }

        // Close under specializations and dependency clients together:
        // a dirty superclass dirties its subclasses, a dirty supplier
        // dirties its clients, and those may cascade into each other.
        let mut dirty: BTreeSet<ElementId> = BTreeSet::new();
        let mut frontier: Vec<ElementId> = seed.into_iter().collect();
        while let Some(id) = frontier.pop() {
            if !dirty.insert(id) {
                continue;
            }
            if let Some(subs) = ix.specializations.get(&id) {
                frontier.extend(subs.iter().copied());
            }
            for dep_id in ix.by_kind.get("Dependency").into_iter().flatten() {
                if let Ok(e) = model.element(*dep_id) {
                    if let ElementKind::Dependency(d) = e.kind() {
                        if d.supplier == id {
                            frontier.push(d.client);
                        }
                    }
                }
            }
        }

        let mut names = BTreeSet::new();
        for id in dirty {
            names.insert(model.element(id).ok()?.name().to_owned());
        }
        Some(names)
    }
}

/// Union of two sorted id vectors, kept sorted and deduplicated.
fn merge_ids(into: &mut Vec<ElementId>, from: &[ElementId]) {
    into.extend_from_slice(from);
    into.sort_unstable();
    into.dedup();
}

/// Walks the owner chain from `id` (inclusive) to the nearest
/// classifier. `None` when the chain tops out at a package first — a
/// package-level change is not localizable to one class.
fn owning_classifier(model: &Model, id: ElementId) -> Option<ElementId> {
    let mut cur = id;
    loop {
        let e = model.element(cur).ok()?;
        if e.is_classifier() {
            return Some(cur);
        }
        if matches!(e.kind(), ElementKind::Package(_)) {
            return None;
        }
        cur = e.owner()?;
    }
}

fn is_classifier_kind(kind: &str) -> bool {
    matches!(kind, "Class" | "Interface" | "DataType" | "Enumeration")
}

fn is_relationship_kind(kind: &str) -> bool {
    matches!(kind, "Generalization" | "Association" | "Dependency")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::TypeRef;

    fn setup() -> (Model, ElementId, ElementId) {
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let b = m.add_class(m.root(), "B").unwrap();
        m.add_generalization(b, a).unwrap(); // B specializes A
        (m, a, b)
    }

    #[test]
    fn empty_journal_segment_yields_empty_dirty_set() {
        let (mut m, _, _) = setup();
        m.begin_journal();
        let d = m.journal_dirty().unwrap();
        assert!(d.is_empty());
        assert_eq!(d.dirty_classes(&m).unwrap(), BTreeSet::new());
        assert_eq!(d.kinds(&m).unwrap(), BTreeSet::new());
        m.rollback_journal();
    }

    #[test]
    fn feature_edit_localizes_to_its_class_and_subclasses() {
        let mut m = Model::new("m");
        let parent = m.add_class(m.root(), "Parent").unwrap();
        let child = m.add_class(m.root(), "Child").unwrap();
        m.add_generalization(child, parent).unwrap();
        m.begin_journal();
        let op = m.add_operation(parent, "poke").unwrap();
        m.add_parameter(op, "x", TypeRef::Primitive(crate::Primitive::Int)).unwrap();
        let d = m.journal_dirty().unwrap();
        let classes = d.dirty_classes(&m).unwrap();
        assert!(classes.contains("Parent"));
        assert!(classes.contains("Child"), "subclass rides along: {classes:?}");
        let kinds = d.kinds(&m).unwrap();
        assert!(kinds.contains("Operation") && kinds.contains("Parameter"));
        assert!(!kinds.contains("Class"));
        m.commit_journal();
    }

    #[test]
    fn dependency_client_is_dragged_in() {
        let (mut m, a, b) = setup();
        let c = m.add_class(m.root(), "C").unwrap();
        m.add_dependency(c, a).unwrap(); // C depends on A
        m.begin_journal();
        m.add_attribute(a, "x", TypeRef::Primitive(crate::Primitive::Int)).unwrap();
        let d = m.journal_dirty().unwrap();
        let classes = d.dirty_classes(&m).unwrap();
        assert!(classes.contains("A"));
        assert!(classes.contains("C"), "dependency client rides along: {classes:?}");
        let _ = b;
        m.rollback_journal();
    }

    #[test]
    fn removed_class_forces_full_invalidation() {
        let (mut m, a, _) = setup();
        m.begin_journal();
        m.remove_element(a).unwrap();
        let d = m.journal_dirty().unwrap();
        assert!(d.dirty_classes(&m).is_none(), "classifier removal cannot be localized");
        assert!(d.kinds(&m).unwrap().contains("Class"));
        m.rollback_journal();
    }

    #[test]
    fn removed_feature_stays_localized() {
        let (mut m, a, _) = setup();
        let op = m.add_operation(a, "gone").unwrap();
        m.begin_journal();
        m.remove_element(op).unwrap();
        let d = m.journal_dirty().unwrap();
        let classes = d.dirty_classes(&m).unwrap();
        assert!(classes.contains("A"), "{classes:?}");
        m.rollback_journal();
    }

    #[test]
    fn merge_unions_without_duplicates() {
        let mut a = DirtySet {
            created: vec![ElementId::from_raw(1), ElementId::from_raw(3)],
            modified: vec![ElementId::from_raw(2)],
            removed: vec![],
        };
        let b = DirtySet {
            created: vec![ElementId::from_raw(3), ElementId::from_raw(4)],
            modified: vec![ElementId::from_raw(2)],
            removed: vec![RemovedElement {
                id: ElementId::from_raw(9),
                kind: "Operation",
                name: "gone".into(),
                owner: None,
            }],
        };
        a.merge(&b);
        a.merge(&b); // idempotent
        assert_eq!(
            a.created,
            vec![ElementId::from_raw(1), ElementId::from_raw(3), ElementId::from_raw(4)]
        );
        assert_eq!(a.modified, vec![ElementId::from_raw(2)]);
        assert_eq!(a.removed.len(), 1);
        assert_eq!(a.touched(), 5);
    }
}
