//! Memoized query index over a [`Model`]: the [`ModelIndex`].
//!
//! Every navigation helper in `query.rs` used to be a full scan of the
//! element arena — fine for one lookup, quadratic the moment a
//! transformation loops over classes calling `operations_of` /
//! `ancestors_of` per class. The `ModelIndex` is built once per model
//! *generation* and answers all of those queries from hash maps.
//!
//! ## Invalidation rules
//!
//! The [`Model`] carries a generation counter that is bumped at every
//! mutation choke point — element allocation (all `add_*` constructors
//! funnel through it), [`Model::element_mut`], [`Model::remove_element`]
//! and [`Model::set_name`]. The cache slot stores `(generation, index)`;
//! a query hitting a stale generation rebuilds the index lazily and
//! atomically replaces the slot. Cloning a model resets the clone's
//! cache (the index is derived data, never copied), and model equality
//! ignores the cache entirely.
//!
//! Every indexed query has a `*_scan` twin in `query.rs` preserving the
//! original full-scan implementation; the property tests in
//! `tests/index_properties.rs` drive random mutation sequences and
//! assert the indexed answers stay identical to the scans.

use crate::element::ElementKind;
use crate::id::ElementId;
use crate::model::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The generation-tagged cache slot living inside every [`Model`].
#[derive(Debug, Default)]
pub(crate) struct IndexCache {
    generation: AtomicU64,
    slot: RwLock<Option<(u64, Arc<ModelIndex>)>>,
}

impl IndexCache {
    /// Bumps the generation, invalidating any cached index. Takes `&mut
    /// self` — mutation always happens under `&mut Model` — so this is
    /// a plain add, not an atomic RMW.
    pub(crate) fn invalidate(&mut self) {
        *self.generation.get_mut() += 1;
    }

    /// The current generation (for tests and diagnostics).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// Precomputed lookup tables for one model generation. All vectors are
/// in element-id order, matching what the full scans produce.
#[derive(Debug, Default)]
pub(crate) struct ModelIndex {
    /// Kind name (`"Class"`, `"Operation"`, ...) → ids.
    pub by_kind: HashMap<&'static str, Vec<ElementId>>,
    /// All classifier ids.
    pub classifiers: Vec<ElementId>,
    /// Owner → directly owned ids.
    pub children: HashMap<ElementId, Vec<ElementId>>,
    /// Owner → simple name → first owned id with that name (the one a
    /// greedy qualified-name resolution step picks).
    pub child_by_name: HashMap<ElementId, HashMap<String, ElementId>>,
    /// Classifier → owned attribute ids.
    pub attributes: HashMap<ElementId, Vec<ElementId>>,
    /// Classifier → owned operation ids.
    pub operations: HashMap<ElementId, Vec<ElementId>>,
    /// Operation → owned parameter ids.
    pub parameters: HashMap<ElementId, Vec<ElementId>>,
    /// Constrained element → constraint ids.
    pub constraints_on: HashMap<ElementId, Vec<ElementId>>,
    /// Classifier → association ids with an end attached to it.
    pub associations_of: HashMap<ElementId, Vec<ElementId>>,
    /// Generalization child → direct parents (edge-id order).
    pub parents: HashMap<ElementId, Vec<ElementId>>,
    /// Generalization parent → direct children (edge-id order).
    pub specializations: HashMap<ElementId, Vec<ElementId>>,
    /// Classifier → transitive ancestor closure, in the exact order the
    /// scan's worklist traversal emits it.
    pub ancestors: HashMap<ElementId, Vec<ElementId>>,
    /// Stereotype → ids carrying it.
    pub stereotyped: HashMap<String, Vec<ElementId>>,
    /// Simple name → first classifier id with that name.
    pub classifier_by_name: HashMap<String, ElementId>,
    /// Simple name → first class id with that name.
    pub class_by_name: HashMap<String, ElementId>,
}

impl ModelIndex {
    /// Builds all tables in one pass over the arena (plus a closure pass
    /// over the generalization graph).
    pub(crate) fn build(model: &Model) -> Self {
        let mut ix = ModelIndex::default();
        for e in model.iter() {
            let id = e.id();
            ix.by_kind.entry(e.kind().kind_name()).or_default().push(id);
            if e.is_classifier() {
                ix.classifiers.push(id);
                ix.classifier_by_name.entry(e.name().to_owned()).or_insert(id);
                if matches!(e.kind(), ElementKind::Class(_)) {
                    ix.class_by_name.entry(e.name().to_owned()).or_insert(id);
                }
            }
            if let Some(owner) = e.owner() {
                ix.children.entry(owner).or_default().push(id);
                ix.child_by_name.entry(owner).or_default().entry(e.name().to_owned()).or_insert(id);
            }
            for s in &e.core().stereotypes {
                ix.stereotyped.entry(s.clone()).or_default().push(id);
            }
            match e.kind() {
                ElementKind::Attribute(_) => {
                    if let Some(owner) = e.owner() {
                        ix.attributes.entry(owner).or_default().push(id);
                    }
                }
                ElementKind::Operation(_) => {
                    if let Some(owner) = e.owner() {
                        ix.operations.entry(owner).or_default().push(id);
                    }
                }
                ElementKind::Parameter(_) => {
                    if let Some(owner) = e.owner() {
                        ix.parameters.entry(owner).or_default().push(id);
                    }
                }
                ElementKind::Constraint(c) => {
                    ix.constraints_on.entry(c.constrained).or_default().push(id);
                }
                ElementKind::Association(a) => {
                    ix.associations_of.entry(a.ends[0].class).or_default().push(id);
                    // A self-association must appear once, as in the scan.
                    if a.ends[1].class != a.ends[0].class {
                        ix.associations_of.entry(a.ends[1].class).or_default().push(id);
                    }
                }
                ElementKind::Generalization(g) => {
                    ix.parents.entry(g.child).or_default().push(g.parent);
                    ix.specializations.entry(g.parent).or_default().push(g.child);
                }
                _ => {}
            }
        }
        // Ancestor closure, with the same worklist traversal (and
        // therefore the same output order) as the naive scan.
        for &c in &ix.classifiers {
            let mut out: Vec<ElementId> = Vec::new();
            let mut frontier: Vec<ElementId> = ix.parents.get(&c).cloned().unwrap_or_default();
            while let Some(p) = frontier.pop() {
                if !out.contains(&p) {
                    out.push(p);
                    if let Some(ps) = ix.parents.get(&p) {
                        frontier.extend(ps.iter().copied());
                    }
                }
            }
            if !out.is_empty() {
                ix.ancestors.insert(c, out);
            }
        }
        ix
    }
}

impl Model {
    /// The memoized index for the model's current generation, building
    /// it if the cached one is stale or absent.
    pub(crate) fn index(&self) -> Arc<ModelIndex> {
        let generation = self.cache().generation();
        if let Some((g, ix)) = self.cache().slot.read().expect("index lock poisoned").as_ref() {
            if *g == generation {
                return Arc::clone(ix);
            }
        }
        let ix = Arc::new(ModelIndex::build(self));
        *self.cache().slot.write().expect("index lock poisoned") =
            Some((generation, Arc::clone(&ix)));
        ix
    }
}

/// Convenience: look up an element known to exist during index-backed
/// filtering (the index never holds dangling ids for its generation).
pub(crate) fn kind_of(model: &Model, id: ElementId) -> &ElementKind {
    model.element(id).expect("indexed id resolves").kind()
}

/// Convenience mirror of [`kind_of`] for names.
pub(crate) fn name_of(model: &Model, id: ElementId) -> &str {
    model.element(id).expect("indexed id resolves").name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_is_reused_until_mutation() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let i1 = m.index();
        let i2 = m.index();
        assert!(Arc::ptr_eq(&i1, &i2), "same generation must share the index");
        m.add_operation(c, "f").unwrap();
        let i3 = m.index();
        assert!(!Arc::ptr_eq(&i1, &i3), "mutation must invalidate the cache");
        assert_eq!(i3.operations.get(&c).map(Vec::len), Some(1));
    }

    #[test]
    fn element_mut_and_remove_invalidate() {
        let mut m = Model::new("m");
        let c = m.add_class(m.root(), "A").unwrap();
        let g0 = m.generation();
        let _ = m.element_mut(c).unwrap();
        assert!(m.generation() > g0, "element_mut must bump the generation");
        let g1 = m.generation();
        m.remove_element(c).unwrap();
        assert!(m.generation() > g1, "remove must bump the generation");
        assert!(m.index().classifiers.is_empty());
    }

    #[test]
    fn clone_resets_cache_and_preserves_equality() {
        let mut m = Model::new("m");
        m.add_class(m.root(), "A").unwrap();
        let _ = m.index();
        let copy = m.clone();
        assert_eq!(m, copy);
        // The clone rebuilds its own index and answers identically.
        assert_eq!(m.classes(), copy.classes());
    }

    #[test]
    fn self_association_indexed_once() {
        use crate::kinds::AssociationEnd;
        let mut m = Model::new("m");
        let a = m.add_class(m.root(), "A").unwrap();
        let assoc = m
            .add_association(
                m.root(),
                "self",
                AssociationEnd::new("x", a),
                AssociationEnd::new("y", a),
            )
            .unwrap();
        assert_eq!(m.associations_of(a), vec![assoc]);
        assert_eq!(m.associations_of(a), m.associations_of_scan(a));
    }
}
