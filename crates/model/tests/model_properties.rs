//! Property tests for the model arena: id stability, removal cascades,
//! and well-formedness preservation under random API-level mutation
//! sequences.

use comet_model::{ElementId, Model, Primitive};
use proptest::prelude::*;

/// A random mutation applied through the checked API. The payloads only
/// feed `Debug` output in proptest failure reports.
#[derive(Debug, Clone)]
enum Op {
    AddClass(#[allow(dead_code)] u8),
    AddAttribute(u8, #[allow(dead_code)] u8),
    AddOperation(u8, #[allow(dead_code)] u8),
    AddGeneralization(u8, u8),
    Stereotype(u8, String),
    MarkConcern(u8, String),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddClass),
        (any::<u8>(), any::<u8>()).prop_map(|(c, a)| Op::AddAttribute(c, a)),
        (any::<u8>(), any::<u8>()).prop_map(|(c, o)| Op::AddOperation(c, o)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddGeneralization(a, b)),
        (any::<u8>(), "[a-z]{1,6}").prop_map(|(c, s)| Op::Stereotype(c, s)),
        (any::<u8>(), "[a-z]{1,6}").prop_map(|(c, s)| Op::MarkConcern(c, s)),
        any::<u8>().prop_map(Op::Remove),
    ]
}

fn pick(classes: &[ElementId], idx: u8) -> Option<ElementId> {
    if classes.is_empty() {
        None
    } else {
        Some(classes[idx as usize % classes.len()])
    }
}

fn apply_ops(ops: &[Op]) -> Model {
    let mut m = Model::new("prop");
    let mut counter = 0usize;
    for op in ops {
        let classes = m.classes();
        match op {
            Op::AddClass(_) => {
                counter += 1;
                let root = m.root();
                let _ = m.add_class(root, &format!("C{counter}"));
            }
            Op::AddAttribute(c, _) => {
                if let Some(class) = pick(&classes, *c) {
                    counter += 1;
                    let _ = m.add_attribute(class, &format!("a{counter}"), Primitive::Int.into());
                }
            }
            Op::AddOperation(c, _) => {
                if let Some(class) = pick(&classes, *c) {
                    counter += 1;
                    let _ = m.add_operation(class, &format!("o{counter}"));
                }
            }
            Op::AddGeneralization(a, b) => {
                if let (Some(child), Some(parent)) = (pick(&classes, *a), pick(&classes, *b)) {
                    let _ = m.add_generalization(child, parent);
                }
            }
            Op::Stereotype(c, s) => {
                if let Some(class) = pick(&classes, *c) {
                    let _ = m.apply_stereotype(class, s);
                }
            }
            Op::MarkConcern(c, s) => {
                if let Some(class) = pick(&classes, *c) {
                    let _ = m.mark_concern(class, s);
                }
            }
            Op::Remove(c) => {
                if let Some(class) = pick(&classes, *c) {
                    let _ = m.remove_element(class);
                }
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_api_sequences_preserve_well_formedness(ops in prop::collection::vec(arb_op(), 0..60)) {
        let m = apply_ops(&ops);
        prop_assert!(m.validate().is_ok(), "violations: {:?}", m.validate().err());
    }

    #[test]
    fn ids_are_never_reused(ops in prop::collection::vec(arb_op(), 0..60)) {
        // Replaying the ops and tracking every id ever returned: ids of
        // removed elements must not come back.
        let m = apply_ops(&ops);
        let max_id = m.iter().map(|e| e.id().raw()).max().unwrap_or(0);
        let root = m.root();
        // A fresh insertion gets an id strictly greater than any live id.
        let mut m2 = m.clone();
        let fresh = m2.add_class(root, "FreshUnique").expect("unique name");
        prop_assert!(fresh.raw() > max_id);
    }

    #[test]
    fn removal_cascade_leaves_no_dangling_references(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut m = apply_ops(&ops);
        // Remove every class one by one; validation must hold throughout.
        while let Some(&class) = m.classes().first() {
            m.remove_element(class).expect("class exists");
            prop_assert!(m.validate().is_ok());
        }
        prop_assert_eq!(m.classes().len(), 0);
    }

    #[test]
    fn clone_then_mutate_does_not_alias(ops in prop::collection::vec(arb_op(), 0..30)) {
        let m = apply_ops(&ops);
        let snapshot = m.clone();
        let mut mutated = m.clone();
        let root = mutated.root();
        mutated.add_class(root, "Mutation").expect("unique name");
        prop_assert_eq!(m, snapshot);
    }

    #[test]
    fn qualified_names_resolve_back(ops in prop::collection::vec(arb_op(), 0..40)) {
        let m = apply_ops(&ops);
        for class in m.classes() {
            let qname = m.qualified_name(class).expect("class exists");
            prop_assert_eq!(m.find_by_qualified_name(&qname), Some(class));
        }
    }

    #[test]
    fn concern_queries_are_consistent(ops in prop::collection::vec(arb_op(), 0..40)) {
        let m = apply_ops(&ops);
        for concern in m.concerns() {
            let elements = m.elements_of_concern(&concern);
            prop_assert!(!elements.is_empty());
            for id in elements {
                prop_assert_eq!(m.concern_of(id), Some(concern.as_str()));
            }
        }
    }
}
