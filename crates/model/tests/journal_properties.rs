//! Differential property tests for the change journal (`journal.rs`),
//! mirroring the `_scan`-twin pattern of `index_properties.rs`:
//!
//! * **rollback = clone restore**: after an arbitrary journaled
//!   mutation sequence, `rollback_journal` must leave the model equal
//!   to a clone snapshot taken at `begin_journal` — same elements, same
//!   name, same id watermark (checked by re-allocating);
//! * **commit summary = sweep diff**: the journal-derived
//!   created/modified/removed summary must match the classic
//!   before/after full-model sweep the transform engine used to do.

use comet_model::{AssociationEnd, ElementId, Model, Primitive};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddClass,
    AddPackage(u8),
    AddAttribute(u8),
    AddOperation(u8),
    AddGeneralization(u8, u8),
    AddAssociation(u8, u8),
    AddConstraint(u8),
    Stereotype(u8, String),
    Tag(u8, String),
    Rename(u8, String),
    TouchOnly(u8),
    Remove(u8),
    RenameModel(String),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AddClass),
        any::<u8>().prop_map(Op::AddPackage),
        any::<u8>().prop_map(Op::AddAttribute),
        any::<u8>().prop_map(Op::AddOperation),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddGeneralization(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddAssociation(a, b)),
        any::<u8>().prop_map(Op::AddConstraint),
        (any::<u8>(), "[a-z]{1,6}").prop_map(|(c, s)| Op::Stereotype(c, s)),
        (any::<u8>(), "[a-z]{1,6}").prop_map(|(c, s)| Op::Tag(c, s)),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| Op::Rename(c, s)),
        any::<u8>().prop_map(Op::TouchOnly),
        any::<u8>().prop_map(Op::Remove),
        "[a-z]{2,6}".prop_map(Op::RenameModel),
    ]
}

fn pick(ids: &[ElementId], idx: u8) -> Option<ElementId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[idx as usize % ids.len()])
    }
}

/// Applies one op; invalid targets are simply skipped (the `add_*` API
/// rejects them), matching how real transformation bodies behave.
fn apply_op(m: &mut Model, op: &Op, counter: &mut usize) {
    let classifiers = m.classifiers();
    match op {
        Op::AddClass => {
            *counter += 1;
            let root = m.root();
            let _ = m.add_class(root, &format!("C{counter}"));
        }
        Op::AddPackage(p) => {
            *counter += 1;
            let packages = m.packages();
            if let Some(owner) = pick(&packages, *p) {
                let _ = m.add_package(owner, &format!("p{counter}"));
            }
        }
        Op::AddAttribute(c) => {
            if let Some(cl) = pick(&classifiers, *c) {
                *counter += 1;
                let _ = m.add_attribute(cl, &format!("a{counter}"), Primitive::Int.into());
            }
        }
        Op::AddOperation(c) => {
            if let Some(cl) = pick(&classifiers, *c) {
                *counter += 1;
                let _ = m.add_operation(cl, &format!("o{counter}"));
            }
        }
        Op::AddGeneralization(a, b) => {
            if let (Some(child), Some(parent)) = (pick(&classifiers, *a), pick(&classifiers, *b)) {
                let _ = m.add_generalization(child, parent);
            }
        }
        Op::AddAssociation(a, b) => {
            if let (Some(x), Some(y)) = (pick(&classifiers, *a), pick(&classifiers, *b)) {
                let root = m.root();
                let _ = m.add_association(
                    root,
                    "",
                    AssociationEnd::new("x", x),
                    AssociationEnd::new("y", y),
                );
            }
        }
        Op::AddConstraint(c) => {
            if let Some(cl) = pick(&classifiers, *c) {
                *counter += 1;
                let _ = m.add_constraint(cl, &format!("inv{counter}"), "true");
            }
        }
        Op::Stereotype(c, s) => {
            if let Some(cl) = pick(&classifiers, *c) {
                let _ = m.apply_stereotype(cl, s);
            }
        }
        Op::Tag(c, s) => {
            if let Some(cl) = pick(&classifiers, *c) {
                let _ = m.set_tag(cl, "k", s.as_str());
            }
        }
        Op::Rename(c, s) => {
            if let Some(cl) = pick(&classifiers, *c) {
                if let Ok(e) = m.element_mut(cl) {
                    e.core_mut().name = s.clone();
                }
            }
        }
        Op::TouchOnly(c) => {
            // A mutable borrow that never writes: must not surface in
            // the commit summary.
            if let Some(cl) = pick(&classifiers, *c) {
                let _ = m.element_mut(cl);
            }
        }
        Op::Remove(c) => {
            if let Some(cl) = pick(&classifiers, *c) {
                let _ = m.remove_element(cl);
            }
        }
        Op::RenameModel(s) => {
            m.set_name(s.clone());
        }
    }
}

fn build(prefix: &[Op]) -> Model {
    let mut m = Model::new("prop");
    let mut counter = 0usize;
    for op in prefix {
        apply_op(&mut m, op, &mut counter);
    }
    m
}

/// The classic before/after sweep the transform engine used to run:
/// the oracle the journal summary must reproduce.
fn sweep_diff(before: &Model, after: &Model) -> (Vec<ElementId>, Vec<ElementId>, Vec<ElementId>) {
    let created: Vec<ElementId> =
        after.iter().map(|e| e.id()).filter(|id| !before.contains(*id)).collect();
    let mut modified = Vec::new();
    let mut removed = Vec::new();
    for e in before.iter() {
        match after.element(e.id()) {
            Err(_) => removed.push(e.id()),
            Ok(now) => {
                if now != e {
                    modified.push(e.id());
                }
            }
        }
    }
    (created, modified, removed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rollback_is_identical_to_clone_restore(
        prefix in prop::collection::vec(arb_op(), 0..20),
        journaled in prop::collection::vec(arb_op(), 0..30),
    ) {
        let mut m = build(&prefix);
        let snapshot = m.clone();
        m.begin_journal();
        let mut counter = 1000usize;
        for op in &journaled {
            apply_op(&mut m, op, &mut counter);
        }
        m.rollback_journal().expect("journal is active");
        prop_assert!(!m.journal_active());
        prop_assert_eq!(&m, &snapshot, "rollback diverged from the clone snapshot");
        prop_assert_eq!(m.name(), snapshot.name());
        // The id watermark must also be restored: both models hand out
        // the same id next.
        let mut a = m.clone();
        let mut b = snapshot.clone();
        let root_a = a.root();
        let root_b = b.root();
        prop_assert_eq!(
            a.add_class(root_a, "Probe").unwrap(),
            b.add_class(root_b, "Probe").unwrap()
        );
    }

    #[test]
    fn commit_summary_matches_sweep_diff(
        prefix in prop::collection::vec(arb_op(), 0..20),
        journaled in prop::collection::vec(arb_op(), 0..30),
    ) {
        let mut m = build(&prefix);
        let before = m.clone();
        m.begin_journal();
        let mut counter = 1000usize;
        for op in &journaled {
            apply_op(&mut m, op, &mut counter);
        }
        let summary = m.commit_journal().expect("journal is active");
        let (created, modified, removed) = sweep_diff(&before, &m);
        prop_assert_eq!(&summary.created, &created, "created sets diverged");
        prop_assert_eq!(&summary.modified, &modified, "modified sets diverged");
        prop_assert_eq!(&summary.removed, &removed, "removed sets diverged");
    }

    #[test]
    fn nested_rollback_restores_to_each_savepoint(
        prefix in prop::collection::vec(arb_op(), 0..15),
        outer in prop::collection::vec(arb_op(), 0..15),
        inner in prop::collection::vec(arb_op(), 0..15),
    ) {
        let mut m = build(&prefix);
        let base = m.clone();
        m.begin_journal();
        let mut counter = 1000usize;
        for op in &outer {
            apply_op(&mut m, op, &mut counter);
        }
        let mid = m.clone();
        m.begin_journal();
        for op in &inner {
            apply_op(&mut m, op, &mut counter);
        }
        m.rollback_journal().expect("inner segment");
        prop_assert_eq!(&m, &mid, "inner rollback diverged from mid snapshot");
        m.rollback_journal().expect("outer segment");
        prop_assert_eq!(&m, &base, "outer rollback diverged from base snapshot");
        prop_assert!(!m.journal_active());
    }
}
