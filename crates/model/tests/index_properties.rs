//! Differential property tests for the memoized [`ModelIndex`]: after an
//! arbitrary sequence of API-level mutations (including removals,
//! renames via `element_mut`, stereotypes, associations and
//! generalizations), every indexed query must answer exactly like its
//! `*_scan` full-scan twin — same elements, same order. Queries are also
//! interleaved *between* mutations, so a stale cache (a missing
//! generation bump) shows up as a divergence.

use comet_model::{AssociationEnd, ElementId, Model, Primitive};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddClass,
    AddInterface,
    AddPackage(u8),
    AddAttribute(u8),
    AddOperation(u8),
    AddParameter(u8),
    AddGeneralization(u8, u8),
    AddAssociation(u8, u8),
    AddConstraint(u8),
    Stereotype(u8, String),
    Rename(u8, String),
    Remove(u8),
    // Interleaved query: forces an index build mid-sequence so later
    // mutations must invalidate it.
    QueryNow,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AddClass),
        Just(Op::AddInterface),
        any::<u8>().prop_map(Op::AddPackage),
        any::<u8>().prop_map(Op::AddAttribute),
        any::<u8>().prop_map(Op::AddOperation),
        any::<u8>().prop_map(Op::AddParameter),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddGeneralization(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddAssociation(a, b)),
        any::<u8>().prop_map(Op::AddConstraint),
        (any::<u8>(), "[a-z]{1,6}").prop_map(|(c, s)| Op::Stereotype(c, s)),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| Op::Rename(c, s)),
        any::<u8>().prop_map(Op::Remove),
        Just(Op::QueryNow),
    ]
}

fn pick(ids: &[ElementId], idx: u8) -> Option<ElementId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[idx as usize % ids.len()])
    }
}

/// Applies the ops; at each `QueryNow` runs a few indexed queries (to
/// populate the cache mid-sequence) and returns the final model.
fn apply_ops(ops: &[Op]) -> Model {
    let mut m = Model::new("prop");
    let mut counter = 0usize;
    for op in ops {
        let classifiers = m.classifiers();
        match op {
            Op::AddClass => {
                counter += 1;
                let root = m.root();
                let _ = m.add_class(root, &format!("C{counter}"));
            }
            Op::AddInterface => {
                counter += 1;
                let root = m.root();
                let _ = m.add_interface(root, &format!("I{counter}"));
            }
            Op::AddPackage(p) => {
                counter += 1;
                let packages = m.packages();
                if let Some(owner) = pick(&packages, *p) {
                    let _ = m.add_package(owner, &format!("p{counter}"));
                }
            }
            Op::AddAttribute(c) => {
                if let Some(cl) = pick(&classifiers, *c) {
                    counter += 1;
                    let _ = m.add_attribute(cl, &format!("a{counter}"), Primitive::Int.into());
                }
            }
            Op::AddOperation(c) => {
                if let Some(cl) = pick(&classifiers, *c) {
                    counter += 1;
                    let _ = m.add_operation(cl, &format!("o{counter}"));
                }
            }
            Op::AddParameter(o) => {
                let ops_all: Vec<ElementId> = m.elements_of_kind("Operation");
                if let Some(op_id) = pick(&ops_all, *o) {
                    counter += 1;
                    let _ = m.add_parameter(op_id, &format!("x{counter}"), Primitive::Int.into());
                }
            }
            Op::AddGeneralization(a, b) => {
                if let (Some(child), Some(parent)) =
                    (pick(&classifiers, *a), pick(&classifiers, *b))
                {
                    let _ = m.add_generalization(child, parent);
                }
            }
            Op::AddAssociation(a, b) => {
                if let (Some(x), Some(y)) = (pick(&classifiers, *a), pick(&classifiers, *b)) {
                    let root = m.root();
                    let _ = m.add_association(
                        root,
                        "",
                        AssociationEnd::new("x", x),
                        AssociationEnd::new("y", y),
                    );
                }
            }
            Op::AddConstraint(c) => {
                if let Some(cl) = pick(&classifiers, *c) {
                    counter += 1;
                    let _ = m.add_constraint(cl, &format!("inv{counter}"), "true");
                }
            }
            Op::Stereotype(c, s) => {
                if let Some(cl) = pick(&classifiers, *c) {
                    let _ = m.apply_stereotype(cl, s);
                }
            }
            Op::Rename(c, s) => {
                counter += 1;
                if let Some(cl) = pick(&classifiers, *c) {
                    if let Ok(e) = m.element_mut(cl) {
                        e.core_mut().name = format!("{s}{counter}");
                    }
                }
            }
            Op::Remove(c) => {
                if let Some(cl) = pick(&classifiers, *c) {
                    let _ = m.remove_element(cl);
                }
            }
            Op::QueryNow => {
                // Touch the index so a later missing invalidation would
                // leave this build stale.
                let _ = m.classes();
                let _ = m.stereotyped("hot");
            }
        }
    }
    m
}

/// Asserts every indexed query equals its scan twin on `m`.
fn assert_index_matches_scans(m: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(m.classes(), m.classes_scan());
    prop_assert_eq!(m.interfaces(), m.interfaces_scan());
    prop_assert_eq!(m.packages(), m.packages_scan());
    prop_assert_eq!(m.associations(), m.associations_scan());
    prop_assert_eq!(m.classifiers(), m.classifiers_scan());
    for kind in [
        "Package",
        "Class",
        "Interface",
        "DataType",
        "Enumeration",
        "Attribute",
        "Operation",
        "Parameter",
        "Association",
        "Generalization",
        "Dependency",
        "Constraint",
    ] {
        prop_assert_eq!(m.elements_of_kind(kind), m.elements_of_kind_scan(kind));
    }
    let every: Vec<ElementId> = m.iter().map(|e| e.id()).collect();
    for &id in &every {
        prop_assert_eq!(m.attributes_of(id), m.attributes_of_scan(id));
        prop_assert_eq!(m.operations_of(id), m.operations_of_scan(id));
        prop_assert_eq!(m.parameters_of(id), m.parameters_of_scan(id));
        prop_assert_eq!(m.constraints_on(id), m.constraints_on_scan(id));
        prop_assert_eq!(m.parents_of(id), m.parents_of_scan(id));
        prop_assert_eq!(m.specializations_of(id), m.specializations_of_scan(id));
        prop_assert_eq!(m.ancestors_of(id), m.ancestors_of_scan(id));
        prop_assert_eq!(m.associations_of(id), m.associations_of_scan(id));
        prop_assert_eq!(m.children_indexed(id), m.children(id));
        let name = m.element(id).expect("live id").name().to_owned();
        prop_assert_eq!(m.find_classifier(&name), m.find_classifier_scan(&name));
        prop_assert_eq!(m.find_class(&name), m.find_class_scan(&name));
        if let Ok(qname) = m.qualified_name(id) {
            prop_assert_eq!(
                m.find_by_qualified_name(&qname),
                m.find_by_qualified_name_scan(&qname)
            );
        }
    }
    for (a, b) in every.iter().zip(every.iter().rev()) {
        prop_assert_eq!(m.is_kind_of(*a, *b), m.is_kind_of_scan(*a, *b));
    }
    // Stereotype and feature-name lookups over everything observed.
    let mut stereotypes: Vec<String> =
        m.iter().flat_map(|e| e.core().stereotypes.iter().cloned()).collect();
    stereotypes.sort();
    stereotypes.dedup();
    for s in &stereotypes {
        prop_assert_eq!(m.stereotyped(s), m.stereotyped_scan(s));
    }
    prop_assert_eq!(m.stereotyped("never-applied"), m.stereotyped_scan("never-applied"));
    for &cl in &m.classifiers() {
        for &f in m.attributes_of(cl).iter().chain(m.operations_of(cl).iter()) {
            let fname = m.element(f).expect("live id").name().to_owned();
            prop_assert_eq!(m.find_attribute(cl, &fname), m.find_attribute_scan(cl, &fname));
            prop_assert_eq!(m.find_operation(cl, &fname), m.find_operation_scan(cl, &fname));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The satellite property: after a random mutation sequence (with
    /// index builds interleaved), every indexed query equals the naive
    /// full scan.
    #[test]
    fn indexed_queries_equal_scans_after_mutations(
        ops in prop::collection::vec(arb_op(), 0..50),
    ) {
        let m = apply_ops(&ops);
        assert_index_matches_scans(&m)?;
    }

    /// Clones answer identically to their originals even though the
    /// clone starts with a cold cache.
    #[test]
    fn clone_answers_identically(ops in prop::collection::vec(arb_op(), 0..40)) {
        let m = apply_ops(&ops);
        let _ = m.classes(); // warm the original's cache
        let copy = m.clone();
        prop_assert_eq!(m.classes(), copy.classes());
        prop_assert_eq!(m.classifiers(), copy.classifiers());
        for id in m.iter().map(|e| e.id()) {
            prop_assert_eq!(m.ancestors_of(id), copy.ancestors_of(id));
            prop_assert_eq!(m.children_indexed(id), copy.children_indexed(id));
        }
        assert_index_matches_scans(&copy)?;
    }
}
