//! Critical-pair aspect-interaction analysis for concern-oriented
//! model transformations.
//!
//! The paper's §3 workflow *orders* concerns but never asks whether two
//! `CMT⟨Si⟩`/aspect pairs can coexist at all. This crate answers that
//! question statically, before anything is woven:
//!
//! 1. [`extract_footprint`] probes each `(ConcernPair, Si)` binding —
//!    the stereotypes/tags its CMT writes, the elements it creates, and
//!    the join points its concrete aspect advises;
//! 2. [`build_matrix`] runs pairwise critical-pair analysis (tag
//!    write/write clashes, declared exclusive stereotypes, divergent or
//!    failing weave orders) and emits a deterministic, symmetric
//!    [`InteractionMatrix`] of [`Verdict`]s;
//! 3. every [`Verdict::Commutes`] cell is backed by the
//!    weave-both-orders differential oracle ([`weave_in_order`] run in
//!    both orders, artifacts byte-compared), so static analysis errs
//!    only toward caution — a wrong verdict can demand an unnecessary
//!    order or reject a workable pair, never admit a clashing one.
//!
//! Downstream, [`InteractionMatrix::constrain`] feeds `OrderSensitive`
//! cells into a `WorkflowModel` as auto-derived `Before` constraints,
//! and `comet-serve`'s admission gate turns `Conflicts` cells into
//! typed per-request rejections before any model mutation.

mod footprint;
mod matrix;

pub use footprint::{extract_footprint, Footprint};
pub use matrix::{
    build_matrix, pair_key, weave_in_order, InteractionError, InteractionMatrix, Verdict,
    WovenArtifacts,
};
