//! Static footprint extraction for one `(ConcernPair, Si)` binding.
//!
//! A [`Footprint`] is everything a specialized concern *touches*: the
//! stereotypes and tagged values its CMT⟨Si⟩ writes into the model, the
//! elements it creates, and the join points its concrete aspect advises
//! in the program generated from the refined model. Footprints are
//! extracted by probing — the CMT is applied to a throwaway clone of the
//! probe model and the result is diffed element by element — so they
//! are exact for the probe, not an approximation of the pointcut
//! language.

use crate::InteractionError;
use comet_codegen::{BodyProvider, FunctionalGenerator};
use comet_model::Model;
use comet_transform::ParamSet;
use std::collections::{BTreeMap, BTreeSet};

/// Per-element stereotype set and rendered tag map, keyed for diffing.
type ElementMarks = (BTreeSet<String>, BTreeMap<String, String>);

/// What one specialized concern writes and advises on the probe model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// The concern name of the binding this footprint describes.
    pub concern: String,
    /// `(element, stereotype)` pairs the CMT writes; elements are
    /// identified by qualified name.
    pub stereotype_writes: BTreeSet<(String, String)>,
    /// `(element, tag key) -> rendered value` entries the CMT writes.
    pub tag_writes: BTreeMap<(String, String), String>,
    /// Qualified names of elements the CMT creates.
    pub created: BTreeSet<String>,
    /// `(class, method)` join points the concrete aspect advises in the
    /// program generated from the refined probe model.
    pub join_points: BTreeSet<(String, String)>,
}

impl Footprint {
    /// Join points advised by both footprints — the overlap that makes
    /// a pair order-sensitive unless the oracle proves otherwise.
    pub fn shared_join_points(&self, other: &Footprint) -> BTreeSet<(String, String)> {
        self.join_points.intersection(&other.join_points).cloned().collect()
    }
}

/// Snapshot of every element's marks, keyed by qualified name.
fn snapshot(model: &Model) -> BTreeMap<String, ElementMarks> {
    let mut map = BTreeMap::new();
    for element in model.iter() {
        let name = model.qualified_name(element.id()).unwrap_or_else(|_| element.name().to_owned());
        let core = element.core();
        let stereotypes: BTreeSet<String> = core.stereotypes.iter().cloned().collect();
        let tags: BTreeMap<String, String> =
            core.tags.iter().map(|(k, v)| (k.clone(), v.to_string())).collect();
        map.insert(name, (stereotypes, tags));
    }
    map
}

/// Extracts the [`Footprint`] of one binding by probing: clones the
/// probe model, applies the CMT, diffs the marks, and matches the
/// concrete aspect's pointcuts against the program generated from the
/// refined model.
///
/// # Errors
/// Fails when `si` does not specialize the pair or the CMT cannot be
/// applied to the probe model on its own (a binding that cannot even
/// apply alone has no meaningful footprint).
pub fn extract_footprint(
    probe: &Model,
    bodies: &BodyProvider,
    pair: &comet_aspectgen::ConcernPair,
    si: &ParamSet,
) -> Result<Footprint, InteractionError> {
    let concern = pair.concern().to_owned();
    let (cmt, aspect) = pair.specialize(si.clone()).map_err(|e| InteractionError::Specialize {
        concern: concern.clone(),
        detail: e.to_string(),
    })?;
    let before = snapshot(probe);
    let mut refined = probe.clone();
    cmt.apply(&mut refined)
        .map_err(|e| InteractionError::Probe { concern: concern.clone(), detail: e.to_string() })?;
    let after = snapshot(&refined);

    let mut stereotype_writes = BTreeSet::new();
    let mut tag_writes = BTreeMap::new();
    let mut created = BTreeSet::new();
    for (element, (stereotypes, tags)) in &after {
        let (old_stereotypes, old_tags) = match before.get(element) {
            Some(marks) => marks.clone(),
            None => {
                created.insert(element.clone());
                ElementMarks::default()
            }
        };
        for s in stereotypes.difference(&old_stereotypes) {
            stereotype_writes.insert((element.clone(), s.clone()));
        }
        for (key, value) in tags {
            if old_tags.get(key) != Some(value) {
                tag_writes.insert((element.clone(), key.clone()), value.clone());
            }
        }
    }

    // Join points are enumerated against the program generated from the
    // *refined* model — the aspect's own structural additions (proxies,
    // reload operations, ...) are legitimate shadows.
    let program = FunctionalGenerator::new().generate(&refined, bodies);
    let mut join_points = BTreeSet::new();
    for class in &program.classes {
        for method in &class.methods {
            if aspect.advices.iter().any(|a| a.pointcut.matches_execution(class, method)) {
                join_points.insert((class.name.clone(), method.name.clone()));
            }
        }
    }

    Ok(Footprint { concern, stereotype_writes, tag_writes, created, join_points })
}
