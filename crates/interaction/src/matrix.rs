//! Pairwise critical-pair analysis and the resulting
//! [`InteractionMatrix`].
//!
//! Verdicts follow a conservative lattice. A cell may only say
//! [`Verdict::Commutes`] when the weave-both-orders differential oracle
//! proves it: both application orders succeed on the probe model and
//! produce byte-identical refined models *and* byte-identical woven
//! programs. Static detectors (tag write/write clashes, declared
//! exclusive stereotypes) can only push a cell toward
//! [`Verdict::Conflicts`] — never toward `Commutes` — so the static
//! analysis can be wrong only in the safe direction.

use crate::footprint::{extract_footprint, Footprint};
use comet_aop::Weaver;
use comet_aspectgen::ConcernPair;
use comet_codegen::{pretty_print, BodyProvider, FunctionalGenerator};
use comet_model::Model;
use comet_transform::ParamSet;
use comet_workflow::{OrderConstraint, WorkflowModel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Failures of footprint extraction or matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteractionError {
    /// `Si` did not specialize the concern pair.
    Specialize {
        /// The concern whose specialization failed.
        concern: String,
        /// The specialization error, rendered.
        detail: String,
    },
    /// The CMT could not be applied to the probe model on its own.
    Probe {
        /// The concern whose solo probe application failed.
        concern: String,
        /// The transformation error, rendered.
        detail: String,
    },
    /// The same concern name was bound twice.
    DuplicateConcern(String),
}

impl fmt::Display for InteractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InteractionError::Specialize { concern, detail } => {
                write!(f, "specializing `{concern}`: {detail}")
            }
            InteractionError::Probe { concern, detail } => {
                write!(f, "probing `{concern}` on the probe model: {detail}")
            }
            InteractionError::DuplicateConcern(c) => {
                write!(f, "concern `{c}` bound twice")
            }
        }
    }
}

impl std::error::Error for InteractionError {}

/// The per-cell outcome of critical-pair analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Both application orders weave to byte-identical artifacts
    /// (oracle-proven).
    Commutes,
    /// The pair interacts, but one order serves: `required_order[0]`
    /// must be applied before `required_order[1]`.
    OrderSensitive {
        /// The application order that works, outermost first.
        required_order: [String; 2],
    },
    /// No order is safe; the evidence names the clash.
    Conflicts {
        /// Human-readable description of the critical pair.
        evidence: String,
    },
}

impl Verdict {
    /// Short tag used by the JSON and table renderings.
    fn tag(&self) -> &'static str {
        match self {
            Verdict::Commutes => "commutes",
            Verdict::OrderSensitive { .. } => "order-sensitive",
            Verdict::Conflicts { .. } => "conflicts",
        }
    }
}

/// Both artifacts of one application order, byte-comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WovenArtifacts {
    /// XMI export of the probe model refined by both CMTs in order.
    pub model_xmi: String,
    /// Pretty-printed woven program (aspect precedence = apply order).
    pub woven_source: String,
}

/// One half of the differential oracle: applies `first` then `second`
/// to a clone of the probe model, generates the functional program, and
/// weaves both concrete aspects in that precedence order.
///
/// The weaver names around-advice helpers by the aspect's *index* in
/// the weave vector (`{method}__around_{index}_{j}`), so two orders of
/// fully disjoint aspects produce alpha-equivalent sources that differ
/// only in those indices. The returned source canonicalizes each index
/// back to the owning concern's name, so byte comparison tests semantic
/// divergence (shared join points nesting differently), not the
/// weaver's positional naming.
///
/// # Errors
/// Returns the rendered failure of whichever stage refused the order —
/// the signal the analysis turns into `OrderSensitive` or `Conflicts`.
pub fn weave_in_order(
    probe: &Model,
    bodies: &BodyProvider,
    first: &(ConcernPair, ParamSet),
    second: &(ConcernPair, ParamSet),
) -> Result<WovenArtifacts, String> {
    let mut model = probe.clone();
    let mut aspects = Vec::new();
    let mut names = Vec::new();
    for (pair, si) in [first, second] {
        let (cmt, aspect) = pair
            .specialize(si.clone())
            .map_err(|e| format!("specializing `{}`: {e}", pair.concern()))?;
        cmt.apply(&mut model).map_err(|e| format!("applying `{}`: {e}", pair.concern()))?;
        aspects.push(aspect);
        names.push(pair.concern().to_owned());
    }
    let program = FunctionalGenerator::new().generate(&model, bodies);
    let woven = Weaver::new(aspects).weave(&program).map_err(|e| format!("weaving: {e}"))?;
    let mut woven_source = pretty_print(&woven.program);
    for (k, name) in names.iter().enumerate() {
        woven_source =
            woven_source.replace(&format!("__around_{k}_"), &format!("__around_{name}_"));
    }
    Ok(WovenArtifacts { model_xmi: comet_xmi::export_model(&model), woven_source })
}

/// Static detectors that can veto a pair regardless of weave order.
fn static_conflict(a: &Footprint, b: &Footprint) -> Option<String> {
    // Write/write on the same tagged value with differing payloads:
    // whichever CMT runs last silently clobbers the other's decisions.
    for ((element, key), va) in &a.tag_writes {
        if let Some(vb) = b.tag_writes.get(&(element.clone(), key.clone())) {
            if va != vb {
                return Some(format!(
                    "write/write on tag `{key}` of `{element}`: `{}` writes `{va}`, \
                     `{}` writes `{vb}`",
                    a.concern, b.concern
                ));
            }
        }
    }
    // Declared exclusive stereotype pairs on the same element.
    let writes = |fp: &Footprint, stereo: &str| -> BTreeSet<String> {
        fp.stereotype_writes.iter().filter(|(_, s)| s == stereo).map(|(e, _)| e.clone()).collect()
    };
    for (sa, sb, why) in comet_codegen::marks::EXCLUSIVE_STEREOTYPES {
        for (x, y) in [(a, b), (b, a)] {
            if let Some(element) = writes(x, sa).intersection(&writes(y, sb)).next() {
                return Some(format!(
                    "«{sa}» ({}) and «{sb}» ({}) are mutually exclusive on `{element}`: {why}",
                    x.concern, y.concern
                ));
            }
        }
    }
    None
}

/// Runs the full cell analysis for one unordered pair.
fn analyze_cell(
    probe: &Model,
    bodies: &BodyProvider,
    a: &(ConcernPair, ParamSet),
    b: &(ConcernPair, ParamSet),
    fa: &Footprint,
    fb: &Footprint,
) -> Verdict {
    if let Some(evidence) = static_conflict(fa, fb) {
        return Verdict::Conflicts { evidence };
    }
    let ab = weave_in_order(probe, bodies, a, b);
    let ba = weave_in_order(probe, bodies, b, a);
    let (a_name, b_name) = (fa.concern.clone(), fb.concern.clone());
    match (ab, ba) {
        (Ok(x), Ok(y)) => {
            if x == y {
                Verdict::Commutes
            } else {
                // Both orders weave but diverge (typically shared join
                // points nesting advice differently); the canonical
                // binding order becomes the required one.
                Verdict::OrderSensitive { required_order: [a_name, b_name] }
            }
        }
        // Exactly one order is admissible — e.g. one concern's
        // precondition is invalidated by the other's refinement.
        (Ok(_), Err(_)) => Verdict::OrderSensitive { required_order: [a_name, b_name] },
        (Err(_), Ok(_)) => Verdict::OrderSensitive { required_order: [b_name, a_name] },
        (Err(e1), Err(e2)) => Verdict::Conflicts {
            evidence: format!(
                "no order admits both: `{a_name}` then `{b_name}` fails ({e1}); \
                 `{b_name}` then `{a_name}` fails ({e2})"
            ),
        },
    }
}

/// The symmetric, deterministic artifact of pairwise critical-pair
/// analysis over a set of `(ConcernPair, Si)` bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionMatrix {
    /// Concern names in canonical (binding) order.
    concerns: Vec<String>,
    /// One verdict per unordered pair, keyed by name-sorted pair.
    cells: BTreeMap<(String, String), Verdict>,
}

/// Name-sorted key for one unordered concern pair.
pub fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

impl InteractionMatrix {
    /// Concern names in canonical (binding) order.
    pub fn concerns(&self) -> &[String] {
        &self.concerns
    }

    /// The verdict for an unordered pair; `None` for unknown names or
    /// the diagonal. Symmetric by construction:
    /// `verdict(a, b) == verdict(b, a)`.
    pub fn verdict(&self, a: &str, b: &str) -> Option<&Verdict> {
        self.cells.get(&pair_key(a, b))
    }

    /// Every conflicting pair as `(a, b, evidence)`, name-sorted.
    pub fn conflicts(&self) -> Vec<(String, String, String)> {
        self.cells
            .iter()
            .filter_map(|((a, b), v)| match v {
                Verdict::Conflicts { evidence } => Some((a.clone(), b.clone(), evidence.clone())),
                _ => None,
            })
            .collect()
    }

    /// Every `OrderSensitive` cell's required order as before-pairs.
    pub fn required_orders(&self) -> Vec<(String, String)> {
        self.cells
            .values()
            .filter_map(|v| match v {
                Verdict::OrderSensitive { required_order: [first, second] } => {
                    Some((first.clone(), second.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Ingests the matrix into a workflow model: every `OrderSensitive`
    /// cell whose two concerns are both planned becomes an auto-derived
    /// `OrderConstraint::Before(required_order)`. `Conflicts` cells are
    /// deliberately *not* turned into constraints — hard rejection is
    /// the admission gate's job, and it must stay loud (a workflow
    /// constraint would make the engine silently skip the step).
    pub fn constrain(&self, mut workflow: WorkflowModel) -> WorkflowModel {
        let planned: BTreeSet<String> =
            workflow.steps().iter().map(|s| s.concern.clone()).collect();
        for (first, second) in self.required_orders() {
            if planned.contains(&first) && planned.contains(&second) {
                workflow = workflow.constraint(OrderConstraint::Before(first, second));
            }
        }
        workflow
    }

    /// Stable JSON rendering; cells appear in name-sorted pair order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"concerns\": [");
        let names: Vec<String> = self.concerns.iter().map(|c| format!("\"{c}\"")).collect();
        out.push_str(&names.join(", "));
        out.push_str("],\n  \"cells\": [\n");
        let last = self.cells.len().saturating_sub(1);
        for (i, ((a, b), verdict)) in self.cells.iter().enumerate() {
            let detail = match verdict {
                Verdict::Commutes => String::new(),
                Verdict::OrderSensitive { required_order: [x, y] } => {
                    format!(", \"required_order\": [\"{x}\", \"{y}\"]")
                }
                Verdict::Conflicts { evidence } => {
                    format!(", \"evidence\": \"{}\"", evidence.replace('"', "'"))
                }
            };
            out.push_str(&format!(
                "    {{\"a\": \"{a}\", \"b\": \"{b}\", \"verdict\": \"{}\"{detail}}}{}\n",
                verdict.tag(),
                if i == last { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for InteractionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "interaction matrix over {} concern(s), {} pair(s):",
            self.concerns.len(),
            self.cells.len()
        )?;
        for ((a, b), verdict) in &self.cells {
            match verdict {
                Verdict::Commutes => writeln!(f, "  {a} × {b}: commutes (oracle-proven)")?,
                Verdict::OrderSensitive { required_order: [x, y] } => {
                    writeln!(f, "  {a} × {b}: order-sensitive ({x} before {y})")?
                }
                Verdict::Conflicts { evidence } => {
                    writeln!(f, "  {a} × {b}: CONFLICT — {evidence}")?
                }
            }
        }
        Ok(())
    }
}

/// Builds the [`InteractionMatrix`] for `bindings` over `probe`:
/// extracts every footprint, then analyzes each unordered pair with the
/// static detectors and the weave-both-orders differential oracle.
///
/// The result is a pure function of `(probe, bodies, bindings)` — all
/// intermediate state lives in ordered collections, so equal inputs
/// render byte-identical matrices.
///
/// # Errors
/// Fails when a binding does not specialize, cannot apply alone on the
/// probe, or a concern name is bound twice.
pub fn build_matrix(
    probe: &Model,
    bodies: &BodyProvider,
    bindings: &[(ConcernPair, ParamSet)],
) -> Result<InteractionMatrix, InteractionError> {
    let mut concerns = Vec::new();
    let mut footprints = Vec::new();
    for (pair, si) in bindings {
        let name = pair.concern().to_owned();
        if concerns.contains(&name) {
            return Err(InteractionError::DuplicateConcern(name));
        }
        footprints.push(extract_footprint(probe, bodies, pair, si)?);
        concerns.push(name);
    }
    let mut cells = BTreeMap::new();
    for i in 0..bindings.len() {
        for j in (i + 1)..bindings.len() {
            let verdict = analyze_cell(
                probe,
                bodies,
                &bindings[i],
                &bindings[j],
                &footprints[i],
                &footprints[j],
            );
            cells.insert(pair_key(&concerns[i], &concerns[j]), verdict);
        }
    }
    Ok(InteractionMatrix { concerns, cells })
}
