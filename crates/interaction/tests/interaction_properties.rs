//! Property and oracle tests for the interaction matrix.
//!
//! * the matrix is a pure function of its inputs (building twice gives
//!   byte-identical artifacts) and symmetric (`verdict(a, b)` equals
//!   `verdict(b, a)`) over arbitrary concern subsets and orders;
//! * every `Commutes` cell over all C(7,2) = 21 standard-pair
//!   combinations is re-validated against the weave-both-orders
//!   differential oracle — no cell may claim commutation without
//!   byte-identical artifacts in both orders.

use comet_aspectgen::ConcernPair;
use comet_codegen::BodyProvider;
use comet_interaction::{build_matrix, weave_in_order, InteractionMatrix, Verdict};
use comet_model::sample::banking_pim;
use comet_transform::{ParamSet, ParamValue};
use proptest::prelude::*;

const CONCERNS: [&str; 7] = [
    "distribution",
    "transactions",
    "security",
    "logging",
    "concurrency",
    "persistence",
    "faulttolerance",
];

/// Binds each standard concern to the sample banking PIM. The
/// concurrency and fault-tolerance bindings meet on `Account.withdraw`
/// («Synchronized» × «Retryable») — the deliberate `Conflicts` cell —
/// while transactions (`Bank.transfer`) and concurrency
/// (`Account.withdraw`) have fully disjoint footprints.
fn binding(concern: &str) -> (ConcernPair, ParamSet) {
    let pair = comet_concerns::by_name(concern).expect("standard concern exists");
    let list = |items: &[&str]| {
        ParamValue::from(items.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    };
    let si = match concern {
        "distribution" => ParamSet::new()
            .with("server_class", ParamValue::from("Bank"))
            .with("node", ParamValue::from("server"))
            .with("operations", list(&["transfer", "openAccount"])),
        "transactions" => ParamSet::new().with("methods", list(&["Bank.transfer"])),
        "security" => ParamSet::new().with("protected", list(&["Bank.transfer:teller"])),
        "logging" => ParamSet::new().with("targets", list(&["Bank.transfer"])),
        "concurrency" => ParamSet::new().with("methods", list(&["Account.withdraw"])),
        "persistence" => ParamSet::new()
            .with("class", ParamValue::from("Account"))
            .with("key_attr", ParamValue::from("number"))
            .with("mutators", list(&["deposit", "withdraw"])),
        "faulttolerance" => ParamSet::new()
            .with("methods", list(&["Bank.transfer", "Account.withdraw"]))
            .with("idempotent", list(&["Account.withdraw"])),
        other => panic!("no test binding for `{other}`"),
    };
    (pair, si)
}

fn matrix_for(names: &[&str]) -> InteractionMatrix {
    let bindings: Vec<_> = names.iter().map(|n| binding(n)).collect();
    build_matrix(&banking_pim(), &BodyProvider::default(), &bindings)
        .expect("every test binding probes cleanly")
}

#[test]
fn all_21_standard_cells_exist_and_commutes_cells_pass_the_oracle() {
    let matrix = matrix_for(&CONCERNS);
    let probe = banking_pim();
    let bodies = BodyProvider::default();
    let mut commutes = 0usize;
    for (i, a) in CONCERNS.iter().enumerate() {
        for b in &CONCERNS[i + 1..] {
            let verdict = matrix.verdict(a, b).expect("every unordered pair has a cell");
            match verdict {
                Verdict::Commutes => {
                    commutes += 1;
                    let ab = weave_in_order(&probe, &bodies, &binding(a), &binding(b))
                        .expect("Commutes implies the a-then-b order weaves");
                    let ba = weave_in_order(&probe, &bodies, &binding(b), &binding(a))
                        .expect("Commutes implies the b-then-a order weaves");
                    assert_eq!(ab, ba, "`{a}` × `{b}` claims Commutes but the orders diverge");
                }
                Verdict::OrderSensitive { required_order: [x, y] } => {
                    weave_in_order(&probe, &bodies, &binding(x), &binding(y))
                        .expect("the required order must itself weave");
                }
                Verdict::Conflicts { .. } => {}
            }
        }
    }
    assert!(commutes >= 1, "expected at least one oracle-proven Commutes cell");
}

#[test]
fn disjoint_footprints_commute() {
    let matrix = matrix_for(&["transactions", "concurrency"]);
    assert_eq!(matrix.verdict("transactions", "concurrency"), Some(&Verdict::Commutes));
}

#[test]
fn concurrency_faulttolerance_is_a_static_conflict() {
    let matrix = matrix_for(&CONCERNS);
    let verdict = matrix.verdict("concurrency", "faulttolerance").expect("cell exists");
    let Verdict::Conflicts { evidence } = verdict else {
        panic!("expected Conflicts, got {verdict:?}");
    };
    assert!(
        evidence.contains("Retryable") && evidence.contains("Synchronized"),
        "evidence names the exclusive stereotypes: {evidence}"
    );
    let conflicts = matrix.conflicts();
    assert_eq!(conflicts.len(), 1);
    assert_eq!(
        (conflicts[0].0.as_str(), conflicts[0].1.as_str()),
        ("concurrency", "faulttolerance")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Building the matrix twice over any subset in any order yields
    /// equal values and byte-identical JSON, and lookups are symmetric.
    #[test]
    fn matrix_is_deterministic_and_symmetric(mask in 0u64..128, perm_seed in any::<u64>()) {
        // Subset via the bitmask, binding order via a seeded
        // Fisher–Yates shuffle: arbitrary concern subsets and orders,
        // capped at 4 concerns to bound the per-case weave count.
        let mut names: Vec<&str> = CONCERNS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        let mut rng = TestRng::new(perm_seed);
        for i in (1..names.len()).rev() {
            names.swap(i, rng.below((i + 1) as u64) as usize);
        }
        names.truncate(4);
        let first = matrix_for(&names);
        let second = matrix_for(&names);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.to_json(), second.to_json());
        for a in &names {
            for b in &names {
                if a != b {
                    prop_assert_eq!(first.verdict(a, b), first.verdict(b, a));
                }
            }
        }
    }
}
