//! # comet-workflow — guided refinement workflows
//!
//! Section 3 of the paper: *"Guidance in the refinement process. A
//! workflow model could track the refinement of a PIM or PSM through
//! transformations. The workflow model could define which generic
//! transformations can be applied at a certain refinement step, and
//! therefore could determine the allowed sequence of transformations."*
//!
//! * [`WorkflowModel`] — the planned concerns and ordering constraints;
//! * [`WorkflowEngine`] — tracks applied concerns, answers "what can I
//!   apply next?" and "what remains?", and rejects out-of-order steps.
//!
//! ## Example
//!
//! ```
//! use comet_workflow::{OrderConstraint, WorkflowEngine, WorkflowModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = WorkflowModel::new("fig2")
//!     .step("distribution", false)
//!     .step("transactions", false)
//!     .step("security", false)
//!     .constraint(OrderConstraint::Before("distribution".into(), "security".into()));
//! let mut engine = WorkflowEngine::new(model);
//! assert_eq!(engine.allowed_next(), vec!["distribution", "transactions"]);
//! engine.record("distribution")?;
//! assert!(engine.allowed_next().contains(&"security"));
//! # Ok(())
//! # }
//! ```

use comet_transform::ConcreteTransformation;
use std::fmt;

/// Ordering constraints between planned concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderConstraint {
    /// `Before(a, b)`: when both are applied, `a` must come first; `b`
    /// is not allowed until `a` has been applied.
    Before(String, String),
    /// `Requires(a, b)`: applying `a` requires `b` to be applied already.
    Requires(String, String),
    /// At most one of the two may ever be applied.
    MutuallyExclusive(String, String),
}

/// One planned refinement step (a concern dimension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDef {
    /// The concern name.
    pub concern: String,
    /// Optional steps do not block completion.
    pub optional: bool,
}

/// The workflow model: planned steps plus constraints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkflowModel {
    name: String,
    steps: Vec<StepDef>,
    constraints: Vec<OrderConstraint>,
}

impl WorkflowModel {
    /// Creates an empty workflow model.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowModel { name: name.into(), ..WorkflowModel::default() }
    }

    /// Adds a planned step, builder style.
    pub fn step(mut self, concern: &str, optional: bool) -> Self {
        self.steps.push(StepDef { concern: concern.to_owned(), optional });
        self
    }

    /// Adds an ordering constraint, builder style.
    pub fn constraint(mut self, c: OrderConstraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Planned steps in order.
    pub fn steps(&self) -> &[StepDef] {
        &self.steps
    }

    /// Ordering constraints in declaration order.
    pub fn constraints(&self) -> &[OrderConstraint] {
        &self.constraints
    }

    /// Checks the model itself for construction mistakes: duplicate
    /// steps, self-referential constraints (`Before(a, a)` can never be
    /// satisfied, the other kinds of `(a, a)` are vacuous), and
    /// constraints naming concerns the plan does not contain — all of
    /// which would otherwise sit in the model as silently-dead (or
    /// silently-deadlocking) rules.
    ///
    /// # Errors
    /// Returns the first [`WorkflowBuildError`] found.
    pub fn validate(&self) -> Result<(), WorkflowBuildError> {
        let mut seen = std::collections::BTreeSet::new();
        for step in &self.steps {
            if !seen.insert(step.concern.as_str()) {
                return Err(WorkflowBuildError::DuplicateStep(step.concern.clone()));
            }
        }
        for constraint in &self.constraints {
            let (kind, a, b) = match constraint {
                OrderConstraint::Before(a, b) => ("Before", a, b),
                OrderConstraint::Requires(a, b) => ("Requires", a, b),
                OrderConstraint::MutuallyExclusive(a, b) => ("MutuallyExclusive", a, b),
            };
            if a == b {
                return Err(WorkflowBuildError::SelfConstraint {
                    constraint: kind.to_owned(),
                    concern: a.clone(),
                });
            }
            for concern in [a, b] {
                if !seen.contains(concern.as_str()) {
                    return Err(WorkflowBuildError::UnplannedConcern {
                        constraint: kind.to_owned(),
                        concern: concern.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Construction mistakes in a [`WorkflowModel`], caught by
/// [`WorkflowModel::validate`] / [`WorkflowEngine::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowBuildError {
    /// The same concern was planned as a step twice.
    DuplicateStep(String),
    /// A constraint names the same concern on both sides.
    SelfConstraint {
        /// The constraint kind (`Before`, `Requires`, ...).
        constraint: String,
        /// The concern named twice.
        concern: String,
    },
    /// A constraint names a concern that is not a planned step.
    UnplannedConcern {
        /// The constraint kind.
        constraint: String,
        /// The unplanned concern.
        concern: String,
    },
}

impl fmt::Display for WorkflowBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowBuildError::DuplicateStep(c) => {
                write!(f, "step `{c}` is planned twice")
            }
            WorkflowBuildError::SelfConstraint { constraint, concern } => {
                write!(f, "{constraint} constraint names `{concern}` on both sides")
            }
            WorkflowBuildError::UnplannedConcern { constraint, concern } => {
                write!(f, "{constraint} constraint names unplanned concern `{concern}`")
            }
        }
    }
}

impl std::error::Error for WorkflowBuildError {}

/// Workflow enforcement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The concern is not part of the plan.
    NotPlanned(String),
    /// The concern was already applied.
    AlreadyApplied(String),
    /// A constraint forbids the concern right now.
    ConstraintViolated {
        /// The concern being applied.
        concern: String,
        /// Why.
        detail: String,
    },
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::NotPlanned(c) => write!(f, "concern `{c}` is not in the workflow plan"),
            WorkflowError::AlreadyApplied(c) => write!(f, "concern `{c}` was already applied"),
            WorkflowError::ConstraintViolated { concern, detail } => {
                write!(f, "cannot apply `{concern}`: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Tracks one refinement in progress.
#[derive(Debug, Clone)]
pub struct WorkflowEngine {
    model: WorkflowModel,
    applied: Vec<String>,
}

impl WorkflowEngine {
    /// Starts an engine with nothing applied. The model is taken as-is;
    /// construction-checked entry points (the MDA lifecycle and the
    /// serving profile) go through [`WorkflowEngine::try_new`] instead.
    pub fn new(model: WorkflowModel) -> Self {
        WorkflowEngine { model, applied: Vec::new() }
    }

    /// Starts an engine after [`WorkflowModel::validate`]-ing the model,
    /// so duplicate steps and dead or deadlocking constraints are typed
    /// construction errors rather than latent behavior.
    ///
    /// # Errors
    /// Propagates the model's first [`WorkflowBuildError`].
    pub fn try_new(model: WorkflowModel) -> Result<Self, WorkflowBuildError> {
        model.validate()?;
        Ok(WorkflowEngine::new(model))
    }

    /// The underlying workflow model.
    pub fn model(&self) -> &WorkflowModel {
        &self.model
    }

    /// Concerns applied so far, in application order. This order is what
    /// the MDA lifecycle hands to the weaver as aspect precedence.
    pub fn applied(&self) -> &[String] {
        &self.applied
    }

    fn is_applied(&self, concern: &str) -> bool {
        self.applied.iter().any(|c| c == concern)
    }

    fn check(&self, concern: &str) -> Result<(), WorkflowError> {
        self.check_with(concern, &[])
    }

    /// The constraint check, treating `staged` as applied on top of the
    /// recorded state. Borrow-based so hypothetical sequences
    /// ([`WorkflowEngine::validate_sequence`]) need no engine or model
    /// clone.
    fn check_with(&self, concern: &str, staged: &[&str]) -> Result<(), WorkflowError> {
        let applied = |c: &str| self.is_applied(c) || staged.contains(&c);
        if !self.model.steps.iter().any(|s| s.concern == concern) {
            return Err(WorkflowError::NotPlanned(concern.to_owned()));
        }
        if applied(concern) {
            return Err(WorkflowError::AlreadyApplied(concern.to_owned()));
        }
        for c in &self.model.constraints {
            match c {
                OrderConstraint::Before(a, b) if b == concern && !applied(a) => {
                    return Err(WorkflowError::ConstraintViolated {
                        concern: concern.to_owned(),
                        detail: format!("`{a}` must be applied before `{b}`"),
                    });
                }
                OrderConstraint::Requires(a, b) if a == concern && !applied(b) => {
                    return Err(WorkflowError::ConstraintViolated {
                        concern: concern.to_owned(),
                        detail: format!("`{a}` requires `{b}`"),
                    });
                }
                OrderConstraint::MutuallyExclusive(a, b) => {
                    let other = if a == concern {
                        Some(b)
                    } else if b == concern {
                        Some(a)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if applied(o) {
                            return Err(WorkflowError::ConstraintViolated {
                                concern: concern.to_owned(),
                                detail: format!("mutually exclusive with applied `{o}`"),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The concerns that may be applied next, in plan order.
    pub fn allowed_next(&self) -> Vec<&str> {
        self.model
            .steps
            .iter()
            .map(|s| s.concern.as_str())
            .filter(|c| self.check(c).is_ok())
            .collect()
    }

    /// Planned-but-unapplied concerns (the paper's "list of the remaining
    /// concerns"), in plan order.
    pub fn remaining(&self) -> Vec<&str> {
        self.model
            .steps
            .iter()
            .map(|s| s.concern.as_str())
            .filter(|c| !self.is_applied(c))
            .collect()
    }

    /// True when every non-optional step has been applied.
    pub fn is_complete(&self) -> bool {
        self.model.steps.iter().filter(|s| !s.optional).all(|s| self.is_applied(&s.concern))
    }

    /// Records that `concern` was applied.
    ///
    /// # Errors
    /// Rejects unplanned, duplicate, or constraint-violating applications.
    pub fn record(&mut self, concern: &str) -> Result<(), WorkflowError> {
        self.check(concern)?;
        self.applied.push(concern.to_owned());
        Ok(())
    }

    /// Compensates the most recent [`WorkflowEngine::record`]: pops the
    /// last applied entry if (and only if) it is `concern`. Returns
    /// whether anything was undone. Used by the MDA lifecycle to unwind
    /// the workflow when a later stage of an atomic refinement step
    /// fails.
    pub fn unrecord(&mut self, concern: &str) -> bool {
        if self.applied.last().map(String::as_str) == Some(concern) {
            self.applied.pop();
            true
        } else {
            false
        }
    }

    /// Records a concrete transformation by its concern — the convenience
    /// used by the MDA lifecycle.
    ///
    /// # Errors
    /// Same as [`WorkflowEngine::record`].
    pub fn record_transformation(
        &mut self,
        cmt: &ConcreteTransformation,
    ) -> Result<(), WorkflowError> {
        self.record(cmt.concern())
    }

    /// Checks a whole sequence against the plan without mutating state.
    /// Allocation-light: the hypothetical steps are tracked as borrows
    /// on top of the live state instead of cloning the whole model and
    /// applied list per call.
    ///
    /// # Errors
    /// Reports the first violating step.
    pub fn validate_sequence(&self, sequence: &[&str]) -> Result<(), WorkflowError> {
        let mut staged: Vec<&str> = Vec::with_capacity(sequence.len());
        for c in sequence {
            self.check_with(c, &staged)?;
            staged.push(c);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_model() -> WorkflowModel {
        WorkflowModel::new("fig2")
            .step("distribution", false)
            .step("transactions", false)
            .step("security", false)
            .step("logging", true)
            .constraint(OrderConstraint::Before("distribution".into(), "security".into()))
    }

    #[test]
    fn allowed_next_respects_before_constraint() {
        let mut e = WorkflowEngine::new(fig2_model());
        assert_eq!(e.allowed_next(), vec!["distribution", "transactions", "logging"]);
        assert_eq!(
            e.record("security").unwrap_err(),
            WorkflowError::ConstraintViolated {
                concern: "security".into(),
                detail: "`distribution` must be applied before `security`".into()
            }
        );
        e.record("distribution").unwrap();
        assert!(e.allowed_next().contains(&"security"));
        e.record("security").unwrap();
        assert_eq!(e.applied(), &["distribution".to_owned(), "security".to_owned()]);
    }

    #[test]
    fn remaining_and_completion() {
        let mut e = WorkflowEngine::new(fig2_model());
        assert_eq!(e.remaining().len(), 4);
        assert!(!e.is_complete());
        e.record("distribution").unwrap();
        e.record("transactions").unwrap();
        e.record("security").unwrap();
        // Logging is optional: complete without it.
        assert!(e.is_complete());
        assert_eq!(e.remaining(), vec!["logging"]);
    }

    #[test]
    fn duplicates_and_unplanned_rejected() {
        let mut e = WorkflowEngine::new(fig2_model());
        e.record("transactions").unwrap();
        assert_eq!(
            e.record("transactions").unwrap_err(),
            WorkflowError::AlreadyApplied("transactions".into())
        );
        assert_eq!(
            e.record("astrology").unwrap_err(),
            WorkflowError::NotPlanned("astrology".into())
        );
    }

    #[test]
    fn requires_and_mutual_exclusion() {
        let model = WorkflowModel::new("w")
            .step("a", false)
            .step("b", false)
            .step("c", false)
            .constraint(OrderConstraint::Requires("a".into(), "b".into()))
            .constraint(OrderConstraint::MutuallyExclusive("b".into(), "c".into()));
        let mut e = WorkflowEngine::new(model);
        assert!(matches!(e.record("a"), Err(WorkflowError::ConstraintViolated { .. })));
        e.record("b").unwrap();
        e.record("a").unwrap();
        assert!(matches!(e.record("c"), Err(WorkflowError::ConstraintViolated { .. })));
    }

    #[test]
    fn validate_sequence_is_side_effect_free() {
        let e = WorkflowEngine::new(fig2_model());
        assert!(e.validate_sequence(&["distribution", "security"]).is_ok());
        assert!(e.validate_sequence(&["security"]).is_err());
        assert!(e.applied().is_empty());
    }

    #[test]
    fn record_transformation_uses_concern() {
        let gmt = comet_transform::TransformationBuilder::new("t", "transactions")
            .body(|_, _| Ok(()))
            .build();
        let cmt = comet_transform::specialize(gmt, comet_transform::ParamSet::new()).unwrap();
        let mut e = WorkflowEngine::new(fig2_model());
        e.record_transformation(&cmt).unwrap();
        assert_eq!(e.applied(), &["transactions".to_owned()]);
    }

    #[test]
    fn error_display() {
        assert!(WorkflowError::NotPlanned("x".into()).to_string().contains("not in the workflow"));
    }

    #[test]
    fn validate_accepts_wellformed_models() {
        fig2_model().validate().unwrap();
        WorkflowEngine::try_new(fig2_model()).unwrap();
        WorkflowModel::new("empty").validate().unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_steps() {
        let model = WorkflowModel::new("w").step("a", false).step("a", true);
        assert_eq!(model.validate(), Err(WorkflowBuildError::DuplicateStep("a".into())));
        assert!(WorkflowEngine::try_new(model).is_err());
    }

    #[test]
    fn validate_rejects_self_constraints() {
        let model = WorkflowModel::new("w")
            .step("a", false)
            .constraint(OrderConstraint::Before("a".into(), "a".into()));
        assert_eq!(
            model.validate(),
            Err(WorkflowBuildError::SelfConstraint {
                constraint: "Before".into(),
                concern: "a".into()
            })
        );
        let model = WorkflowModel::new("w")
            .step("a", false)
            .constraint(OrderConstraint::MutuallyExclusive("a".into(), "a".into()));
        assert!(matches!(model.validate(), Err(WorkflowBuildError::SelfConstraint { .. })));
    }

    #[test]
    fn validate_rejects_unplanned_constraint_concerns() {
        let model = WorkflowModel::new("w")
            .step("a", false)
            .constraint(OrderConstraint::Requires("a".into(), "ghost".into()));
        assert_eq!(
            model.validate(),
            Err(WorkflowBuildError::UnplannedConcern {
                constraint: "Requires".into(),
                concern: "ghost".into()
            })
        );
        let err = model.validate().unwrap_err();
        assert!(err.to_string().contains("unplanned concern `ghost`"));
    }
}
