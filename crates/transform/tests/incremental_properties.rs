//! Differential property tests for the incremental condition engine:
//! over random sequences of transformations (succeeding and failing),
//! [`ConcreteTransformation::apply_incremental`] with one shared
//! [`ConditionCache`] must produce the same outcomes, the same reports,
//! and byte-for-byte the same final model as the plain
//! [`ConcreteTransformation::apply`] — i.e. a cached condition verdict
//! is never allowed to differ from a fresh evaluation against the
//! current model.

use comet_model::sample::banking_pim;
use comet_model::{Model, Primitive};
use comet_transform::{
    specialize, ConcreteTransformation, ConditionCache, ParamSet, TransformError,
    TransformationBuilder,
};
use proptest::prelude::*;

/// Conditions with varied footprints and model-state-dependent
/// verdicts, so cache hits, evictions, and verdict flips all occur.
const CONDITIONS: [&str; 8] = [
    "Class.allInstances()->notEmpty()",
    "Class.allInstances()->exists(c | c.name = 'Bank')",
    "Class.allInstances()->forAll(c | c.operations->size() <= 9)",
    "Operation.allInstances()->size() >= 0",
    "Attribute.allInstances()->size() <= 30",
    "Class.allInstances()->exists(c | c.hasStereotype('Marked'))",
    "Class.allInstances()->size() <= 6",
    "Constraint.allInstances()->isEmpty()",
];

#[derive(Debug, Clone)]
enum BodyOp {
    AddClass(String),
    AddOperation(u8, String),
    AddAttribute(u8, String),
    Stereotype(u8),
    Rename(u8, String),
    Remove(u8),
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        "[A-Z][a-z]{2,6}".prop_map(BodyOp::AddClass),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| BodyOp::AddOperation(c, s)),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| BodyOp::AddAttribute(c, s)),
        any::<u8>().prop_map(BodyOp::Stereotype),
        (any::<u8>(), "[A-Z][a-z]{2,6}").prop_map(|(c, s)| BodyOp::Rename(c, s)),
        any::<u8>().prop_map(BodyOp::Remove),
    ]
}

fn run_body(model: &mut Model, ops: &[BodyOp]) -> Result<(), TransformError> {
    for op in ops {
        let classes = model.classes();
        let pick = |idx: u8| {
            if classes.is_empty() {
                None
            } else {
                Some(classes[idx as usize % classes.len()])
            }
        };
        match op {
            BodyOp::AddClass(name) => {
                let root = model.root();
                let _ = model.add_class(root, name);
            }
            BodyOp::AddOperation(c, name) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.add_operation(cl, name);
                }
            }
            BodyOp::AddAttribute(c, name) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.add_attribute(cl, name, Primitive::Int.into());
                }
            }
            BodyOp::Stereotype(c) => {
                if let Some(cl) = pick(*c) {
                    model.apply_stereotype(cl, "Marked")?;
                }
            }
            BodyOp::Rename(c, s) => {
                if let Some(cl) = pick(*c) {
                    model.element_mut(cl)?.core_mut().name = s.clone();
                }
            }
            BodyOp::Remove(c) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.remove_element(cl)?;
                }
            }
        }
    }
    Ok(())
}

/// `(body ops, fail flag, precondition seeds, postcondition seeds)`.
type StepSpec = (Vec<BodyOp>, bool, Vec<u8>, Vec<u8>);

fn build_cmt(step: &StepSpec) -> ConcreteTransformation {
    let (ops, fail, pres, posts) = step.clone();
    let mut builder =
        TransformationBuilder::new("prop-step", "prop-concern").body(move |model, _params| {
            run_body(model, &ops)?;
            if fail {
                return Err(TransformError::Custom("injected body failure".into()));
            }
            Ok(())
        });
    for seed in pres {
        builder = builder.precondition(CONDITIONS[seed as usize % CONDITIONS.len()]);
    }
    for seed in posts {
        builder = builder.postcondition(CONDITIONS[seed as usize % CONDITIONS.len()]);
    }
    specialize(builder.build(), ParamSet::new()).expect("empty schema validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential oracle: cached condition checking over a whole
    /// transformation sequence never changes any outcome, report, or
    /// final model relative to always-evaluate.
    #[test]
    fn incremental_apply_sequence_matches_plain_apply(
        steps in prop::collection::vec(
            (
                prop::collection::vec(arb_body_op(), 0..8),
                any::<u8>().prop_map(|b| b < 50),
                prop::collection::vec(any::<u8>(), 0..3),
                prop::collection::vec(any::<u8>(), 0..3),
            ),
            1..8,
        ),
    ) {
        let mut plain = banking_pim();
        let mut incremental = banking_pim();
        let mut cache = ConditionCache::new();
        for (i, step) in steps.iter().enumerate() {
            let cmt = build_cmt(step);
            let r1 = cmt.apply(&mut plain);
            let r2 = cmt.apply_incremental(&mut incremental, &mut cache);
            match (&r1, &r2) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "reports diverged at step {}", i),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "failure modes diverged at step {}", i
                ),
                _ => prop_assert!(false, "engines disagreed at step {i}: {r1:?} vs {r2:?}"),
            }
            prop_assert_eq!(&plain, &incremental, "models diverged at step {}", i);
            prop_assert!(!incremental.journal_active(), "leaked an open journal");
        }
        // The cache must have been exercised, not bypassed. Only
        // preconditions are guaranteed to be checked (a failing body
        // skips its postconditions), so key the expectation on those.
        prop_assert!(
            cache.hits() + cache.evaluations() > 0
                || steps.iter().all(|(_, _, pres, _)| pres.is_empty()),
            "cache never consulted despite preconditions"
        );
    }
}

/// Deterministic regression: a condition whose verdict flips when its
/// footprint kind changes is re-evaluated, while a disjoint-footprint
/// condition keeps hitting the cache.
#[test]
fn verdict_flips_when_footprint_kind_changes() {
    // Order matters: the Operation condition comes first so the second
    // application consults it (as a cache hit) before the re-evaluated
    // Class condition fails.
    let renamer = specialize(
        TransformationBuilder::new("rename-bank", "c")
            .precondition("Operation.allInstances()->size() >= 0")
            .precondition("Class.allInstances()->exists(c | c.name = 'Bank')")
            .body(|model, _| {
                let bank = model.find_class("Bank").expect("bank exists");
                model.element_mut(bank)?.core_mut().name = "Banque".into();
                Ok(())
            })
            .build(),
        ParamSet::new(),
    )
    .unwrap();
    let mut model = banking_pim();
    let mut cache = ConditionCache::new();
    renamer.apply_incremental(&mut model, &mut cache).unwrap();
    assert_eq!(cache.evaluations(), 2, "both preconditions evaluated once");
    // Second application: the Class condition was evicted by the rename
    // (Class footprint) and now evaluates to false; the Operation
    // condition must still be served from cache.
    let err = renamer.apply_incremental(&mut model, &mut cache).unwrap_err();
    assert!(
        matches!(err, TransformError::PreconditionFailed { .. }),
        "stale verdict served: {err:?}"
    );
    assert!(cache.hits() >= 1, "disjoint-footprint condition was not cached");
}
