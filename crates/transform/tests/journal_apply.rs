//! Differential tests for the two transformation engines:
//! [`ConcreteTransformation::apply`] (journal rollback, journal-derived
//! report) against [`ConcreteTransformation::apply_cloned`] (the
//! retained clone-and-sweep oracle). For arbitrary bodies — including
//! failing ones — both engines must produce the same outcome, the same
//! report, and byte-for-byte the same final model.

use comet_model::sample::banking_pim;
use comet_model::{Model, Primitive};
use comet_transform::{
    specialize, ConcreteTransformation, ParamSet, TransformError, TransformationBuilder,
};
use proptest::prelude::*;

/// One interpreted body instruction. Indices select targets modulo the
/// current class list, so every generated program is runnable.
#[derive(Debug, Clone)]
enum BodyOp {
    AddClass(String),
    AddOperation(u8, String),
    AddAttribute(u8, String),
    Stereotype(u8, String),
    Rename(u8, String),
    Remove(u8),
}

/// How the body/conditions should terminate.
#[derive(Debug, Clone)]
enum Outcome {
    Succeed,
    FailCustom,
    FailPostcondition,
    FailPrecondition,
}

fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        "[A-Z][a-z]{2,6}".prop_map(BodyOp::AddClass),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| BodyOp::AddOperation(c, s)),
        (any::<u8>(), "[a-z]{2,6}").prop_map(|(c, s)| BodyOp::AddAttribute(c, s)),
        (any::<u8>(), "[A-Z][a-z]{2,6}").prop_map(|(c, s)| BodyOp::Stereotype(c, s)),
        (any::<u8>(), "[A-Z][a-z]{2,6}").prop_map(|(c, s)| BodyOp::Rename(c, s)),
        any::<u8>().prop_map(BodyOp::Remove),
    ]
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Succeed),
        Just(Outcome::Succeed),
        Just(Outcome::Succeed),
        Just(Outcome::FailCustom),
        Just(Outcome::FailPostcondition),
        Just(Outcome::FailPrecondition),
    ]
}

fn run_body(model: &mut Model, ops: &[BodyOp]) -> Result<(), TransformError> {
    for op in ops {
        let classes = model.classes();
        let pick = |idx: u8| {
            if classes.is_empty() {
                None
            } else {
                Some(classes[idx as usize % classes.len()])
            }
        };
        match op {
            BodyOp::AddClass(name) => {
                let root = model.root();
                let _ = model.add_class(root, name);
            }
            BodyOp::AddOperation(c, name) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.add_operation(cl, name);
                }
            }
            BodyOp::AddAttribute(c, name) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.add_attribute(cl, name, Primitive::Int.into());
                }
            }
            BodyOp::Stereotype(c, s) => {
                if let Some(cl) = pick(*c) {
                    model.apply_stereotype(cl, s)?;
                }
            }
            BodyOp::Rename(c, s) => {
                if let Some(cl) = pick(*c) {
                    model.element_mut(cl)?.core_mut().name = s.clone();
                }
            }
            BodyOp::Remove(c) => {
                if let Some(cl) = pick(*c) {
                    let _ = model.remove_element(cl)?;
                }
            }
        }
    }
    Ok(())
}

fn build_cmt(ops: Vec<BodyOp>, outcome: &Outcome) -> ConcreteTransformation {
    let fail = matches!(outcome, Outcome::FailCustom);
    let mut builder =
        TransformationBuilder::new("prop-body", "prop-concern").body(move |model, _params| {
            run_body(model, &ops)?;
            if fail {
                return Err(TransformError::Custom("injected body failure".into()));
            }
            Ok(())
        });
    match outcome {
        Outcome::FailPostcondition => builder = builder.postcondition("false"),
        Outcome::FailPrecondition => builder = builder.precondition("false"),
        _ => {}
    }
    specialize(builder.build(), ParamSet::new()).expect("empty schema validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn journaled_apply_equals_cloned_apply(
        ops in prop::collection::vec(arb_body_op(), 0..20),
        outcome in arb_outcome(),
    ) {
        let cmt = build_cmt(ops, &outcome);
        let mut journaled = banking_pim();
        let mut cloned = banking_pim();
        let r1 = cmt.apply(&mut journaled);
        let r2 = cmt.apply_cloned(&mut cloned);
        match (&r1, &r2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "reports diverged"),
            (Err(_), Err(_)) => {
                // Both failed: both models must equal the pristine input.
                prop_assert_eq!(&journaled, &banking_pim(), "journal rollback left residue");
            }
            _ => prop_assert!(false, "engines disagreed: {:?} vs {:?}", r1, r2),
        }
        prop_assert_eq!(&journaled, &cloned, "final models diverged");
        prop_assert!(!journaled.journal_active(), "apply leaked an open journal");
    }
}

#[test]
fn journaled_apply_reports_and_colors_like_the_oracle() {
    let gmt = TransformationBuilder::new("mixed", "audit")
        .body(|model, _| {
            let root = model.root();
            let created = model.add_class(root, "AuditLog")?;
            model.add_operation(created, "append")?;
            let bank = model.find_class("Bank").expect("bank exists");
            model.apply_stereotype(bank, "Audited")?;
            let customer = model.find_class("Customer").expect("customer exists");
            model.remove_element(customer)?;
            Ok(())
        })
        .build();
    let cmt = specialize(gmt, ParamSet::new()).unwrap();
    let mut a = banking_pim();
    let mut b = banking_pim();
    let ra = cmt.apply(&mut a).unwrap();
    let rb = cmt.apply_cloned(&mut b).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(a, b);
    assert_eq!(ra.created.len(), 2, "class + operation created");
    assert!(!ra.removed.is_empty(), "customer cascade recorded");
    // Created elements are concern-colored in both engines.
    let log = a.find_class("AuditLog").unwrap();
    assert_eq!(a.concern_of(log), Some("audit"));
}

#[test]
fn failed_apply_preserves_id_watermark() {
    // After a rollback the next allocation must reuse the rolled-back
    // ids — otherwise repeated failed attempts leak id space and the
    // journal path would diverge from clone restore.
    let failing = specialize(
        TransformationBuilder::new("boom", "c")
            .body(|model, _| {
                let root = model.root();
                model.add_class(root, "Doomed")?;
                Err(TransformError::Custom("bang".into()))
            })
            .build(),
        ParamSet::new(),
    )
    .unwrap();
    let adding = specialize(
        TransformationBuilder::new("add", "c")
            .body(|model, _| {
                let root = model.root();
                model.add_class(root, "Kept")?;
                Ok(())
            })
            .build(),
        ParamSet::new(),
    )
    .unwrap();
    let mut with_failure = banking_pim();
    assert!(failing.apply(&mut with_failure).is_err());
    let report_after_failure = adding.apply(&mut with_failure).unwrap();

    let mut pristine = banking_pim();
    let report_pristine = adding.apply(&mut pristine).unwrap();
    assert_eq!(report_after_failure, report_pristine);
    assert_eq!(with_failure, pristine);
}
