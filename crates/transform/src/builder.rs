//! A closure-based [`GenericTransformation`] builder, used by tests,
//! examples and simple concerns.

use crate::params::{ParamSchema, ParamSet};
use crate::transform::{GenericTransformation, MappingKind, TransformError};
use comet_model::Model;
use std::sync::Arc;

type Body = dyn Fn(&mut Model, &ParamSet) -> Result<(), TransformError> + Send + Sync;
type CondFn = dyn Fn(&ParamSet) -> Vec<String> + Send + Sync;

/// Builds a [`GenericTransformation`] from closures.
pub struct TransformationBuilder {
    name: String,
    concern: String,
    kind: MappingKind,
    schema: ParamSchema,
    pre: Vec<String>,
    post: Vec<String>,
    pre_fn: Option<Box<CondFn>>,
    post_fn: Option<Box<CondFn>>,
    body: Option<Box<Body>>,
}

impl TransformationBuilder {
    /// Starts a builder for a transformation refining `concern`.
    pub fn new(name: &str, concern: &str) -> Self {
        TransformationBuilder {
            name: name.to_owned(),
            concern: concern.to_owned(),
            kind: MappingKind::PimToPsm,
            schema: ParamSchema::new(),
            pre: Vec::new(),
            post: Vec::new(),
            pre_fn: None,
            post_fn: None,
            body: None,
        }
    }

    /// Sets the MDA mapping kind (default PIM-to-PSM).
    pub fn mapping_kind(mut self, kind: MappingKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the parameter schema.
    pub fn schema(mut self, schema: ParamSchema) -> Self {
        self.schema = schema;
        self
    }

    /// Adds a fixed (parameter-independent) precondition.
    pub fn precondition(mut self, ocl: &str) -> Self {
        self.pre.push(ocl.to_owned());
        self
    }

    /// Adds a fixed (parameter-independent) postcondition.
    pub fn postcondition(mut self, ocl: &str) -> Self {
        self.post.push(ocl.to_owned());
        self
    }

    /// Sets a function generating *specialized* preconditions from the
    /// parameter set (appended to the fixed ones).
    pub fn preconditions_fn(
        mut self,
        f: impl Fn(&ParamSet) -> Vec<String> + Send + Sync + 'static,
    ) -> Self {
        self.pre_fn = Some(Box::new(f));
        self
    }

    /// Sets a function generating *specialized* postconditions.
    pub fn postconditions_fn(
        mut self,
        f: impl Fn(&ParamSet) -> Vec<String> + Send + Sync + 'static,
    ) -> Self {
        self.post_fn = Some(Box::new(f));
        self
    }

    /// Sets the transformation body.
    pub fn body(
        mut self,
        f: impl Fn(&mut Model, &ParamSet) -> Result<(), TransformError> + Send + Sync + 'static,
    ) -> Self {
        self.body = Some(Box::new(f));
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics when no body was provided — a transformation without a body
    /// is a programming error, caught at construction.
    pub fn build(self) -> Arc<dyn GenericTransformation> {
        Arc::new(FnTransformation {
            name: self.name,
            concern: self.concern,
            kind: self.kind,
            schema: self.schema,
            pre: self.pre,
            post: self.post,
            pre_fn: self.pre_fn,
            post_fn: self.post_fn,
            body: self.body.expect("TransformationBuilder requires a body"),
        })
    }
}

struct FnTransformation {
    name: String,
    concern: String,
    kind: MappingKind,
    schema: ParamSchema,
    pre: Vec<String>,
    post: Vec<String>,
    pre_fn: Option<Box<CondFn>>,
    post_fn: Option<Box<CondFn>>,
    body: Box<Body>,
}

impl GenericTransformation for FnTransformation {
    fn name(&self) -> &str {
        &self.name
    }

    fn concern(&self) -> &str {
        &self.concern
    }

    fn mapping_kind(&self) -> MappingKind {
        self.kind
    }

    fn parameter_schema(&self) -> ParamSchema {
        self.schema.clone()
    }

    fn preconditions(&self, params: &ParamSet) -> Vec<String> {
        let mut out = self.pre.clone();
        if let Some(f) = &self.pre_fn {
            out.extend(f(params));
        }
        out
    }

    fn postconditions(&self, params: &ParamSet) -> Vec<String> {
        let mut out = self.post.clone();
        if let Some(f) = &self.post_fn {
            out.extend(f(params));
        }
        out
    }

    fn transform(&self, model: &mut Model, params: &ParamSet) -> Result<(), TransformError> {
        (self.body)(model, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamValue;
    use crate::transform::specialize;
    use comet_model::sample::banking_pim;

    #[test]
    fn specialized_conditions_from_params() {
        let gmt = TransformationBuilder::new("t", "c")
            .mapping_kind(MappingKind::PimToPim)
            .schema(ParamSchema::new().string("class", true, None))
            .precondition("true")
            .preconditions_fn(|p| {
                vec![format!(
                    "Class.allInstances()->exists(c | c.name = '{}')",
                    p.str("class").unwrap_or("?")
                )]
            })
            .postconditions_fn(|p| {
                vec![format!(
                    "Class.allInstances()->any(c | c.name = '{}').hasStereotype('X')",
                    p.str("class").unwrap_or("?")
                )]
            })
            .body(|model, p| {
                let class = model
                    .find_class(p.str("class")?)
                    .ok_or_else(|| TransformError::Custom("no such class".into()))?;
                model.apply_stereotype(class, "X")?;
                Ok(())
            })
            .build();
        assert_eq!(gmt.mapping_kind(), MappingKind::PimToPim);

        let ok =
            specialize(Arc::clone(&gmt), ParamSet::new().with("class", ParamValue::from("Bank")))
                .unwrap();
        assert_eq!(ok.preconditions().len(), 2);
        assert!(ok.preconditions()[1].contains("'Bank'"));
        let mut m = banking_pim();
        ok.apply(&mut m).unwrap();

        // Specialized precondition fails for a class that is absent.
        let missing =
            specialize(gmt, ParamSet::new().with("class", ParamValue::from("Ghost"))).unwrap();
        let mut m2 = banking_pim();
        assert!(missing.apply(&mut m2).is_err());
    }

    #[test]
    #[should_panic(expected = "requires a body")]
    fn build_without_body_panics() {
        let _ = TransformationBuilder::new("t", "c").build();
    }
}
