//! # comet-transform — generic concern-oriented model transformations
//!
//! This crate is the left-hand side of the paper's Fig. 1:
//!
//! * [`GenericTransformation`] — a GMT_Ci: a named, concern-scoped model
//!   transformation with a typed **parameter schema** and OCL pre- and
//!   postconditions, both *specialized* by a parameter set;
//! * [`ParamSet`] — the paper's `Si = Set(P_ik)`: the application-specific
//!   parameter values. **The same `ParamSet` also specializes the paired
//!   generic aspect** in `comet-aspectgen`, which is the paper's answer
//!   to the semantic-coupling problem;
//! * [`specialize`] / [`ConcreteTransformation`] — a CMT_Ci: the GMT
//!   closed over validated parameters, applied atomically with
//!   precondition checking, automatic concern "coloring" of created
//!   elements, well-formedness re-validation and postcondition checking
//!   (failures roll the model back);
//! * [`MappingKind`] — the four MDA mapping types (Section 2).
//!
//! ## Example
//!
//! ```
//! use comet_model::sample::banking_pim;
//! use comet_transform::{
//!     specialize, ParamSchema, ParamSet, ParamValue, TransformationBuilder,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gmt = TransformationBuilder::new("mark-entities", "persistence")
//!     .schema(ParamSchema::new().string("stereotype", true, None))
//!     .precondition("Class.allInstances()->notEmpty()")
//!     .body(|model, params| {
//!         let stereo = params.str("stereotype")?.to_owned();
//!         for class in model.classes() {
//!             model.apply_stereotype(class, &stereo)?;
//!         }
//!         Ok(())
//!     })
//!     .build();
//! let si = ParamSet::new().with("stereotype", ParamValue::from("Entity"));
//! let cmt = specialize(gmt, si)?;
//! let mut model = banking_pim();
//! let report = cmt.apply(&mut model)?;
//! assert_eq!(report.modified.len(), 3);
//! # Ok(())
//! # }
//! ```

mod builder;
mod incremental;
mod params;
mod transform;

pub use builder::TransformationBuilder;
pub use incremental::{ConditionCache, Footprint};
pub use params::{ParamError, ParamSchema, ParamSet, ParamSpec, ParamType, ParamValue};
pub use transform::{
    specialize, ApplyReport, ConcreteTransformation, GenericTransformation, MappingKind,
    TransformError,
};
