//! Incremental OCL condition checking: footprint analysis + a dirty-set
//! driven verdict cache.
//!
//! Pre/postconditions are re-evaluated on every apply, yet most of them
//! query a couple of metamodel kinds (`Class.allInstances()->exists(…)`)
//! while a typical delta touches operations and attributes. The
//! [`Footprint`] of a condition is the set of element *kinds* whose
//! change could alter its verdict, derived by a conservative walk of
//! the parsed expression; the [`ConditionCache`] keeps each condition's
//! last verdict and evicts it only when a delta's kind set intersects
//! the footprint. Anything the walk cannot account for (`self`, `owner`
//! chains, unknown properties) degrades to [`Footprint::All`], which
//! intersects every delta — correctness never depends on the analysis
//! being sharp, only on it being a superset. Full evaluation
//! ([`comet_ocl::evaluate_bool`]) is the differential oracle; the
//! property suite asserts cached verdicts match it on random apply
//! sequences.

use comet_model::Model;
use comet_ocl::{evaluate_bool, Context, Expr, OclError};
use std::collections::{BTreeSet, HashMap, HashSet};

/// All metamodel kind names, as `kind_name()` spells them — the walk
/// interns dynamic names into these statics.
const KIND_NAMES: &[&str] = &[
    "Package",
    "Class",
    "Interface",
    "DataType",
    "Enumeration",
    "Attribute",
    "Operation",
    "Parameter",
    "Association",
    "Generalization",
    "Dependency",
    "Constraint",
];

/// Properties that read only the receiving element itself — covered by
/// whatever kind put the receiver into the footprint.
const LOCAL_PROPS: &[&str] = &[
    "name",
    "kind",
    "stereotypes",
    "concern",
    "visibility",
    "isAbstract",
    "isStatic",
    "isQuery",
    "body",
    "literals",
];

/// The set of element kinds a condition's verdict can depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// The walk could not bound the dependency — treat every change as
    /// relevant.
    All,
    /// The verdict depends only on elements of these kinds.
    Kinds(BTreeSet<&'static str>),
}

impl Footprint {
    /// Derives the footprint of an OCL condition source. Unparseable
    /// conditions get [`Footprint::All`] (evaluation will surface the
    /// error; the footprint just must not hide it behind a stale hit).
    pub fn of_condition(source: &str) -> Footprint {
        let Ok(expr) = comet_ocl::parse(source) else {
            return Footprint::All;
        };
        let mut kinds = BTreeSet::new();
        let mut bound = HashSet::new();
        if walk(&expr, &mut bound, &mut kinds) {
            Footprint::Kinds(kinds)
        } else {
            Footprint::All
        }
    }

    /// Whether a delta touching `dirty_kinds` could change the verdict.
    pub fn may_depend_on(&self, dirty_kinds: &BTreeSet<&'static str>) -> bool {
        match self {
            Footprint::All => true,
            Footprint::Kinds(kinds) => kinds.iter().any(|k| dirty_kinds.contains(k)),
        }
    }
}

fn intern_kind(name: &str) -> Option<&'static str> {
    KIND_NAMES.iter().find(|k| **k == name).copied()
}

/// Walks `expr` accumulating the kinds it reads. Returns `false` the
/// moment something unanalyzable appears (the caller degrades to
/// [`Footprint::All`]).
fn walk(expr: &Expr, bound: &mut HashSet<String>, kinds: &mut BTreeSet<&'static str>) -> bool {
    match expr {
        Expr::Int(_) | Expr::Real(_) | Expr::Str(_) | Expr::Bool(_) => true,
        // `self` can be any element and navigate anywhere.
        Expr::SelfRef => false,
        Expr::Var(name) => bound.contains(name) || intern_kind(name).is_some(),
        Expr::Unary { operand, .. } => walk(operand, bound, kinds),
        Expr::Binary { lhs, rhs, .. } => walk(lhs, bound, kinds) && walk(rhs, bound, kinds),
        Expr::If { cond, then_branch, else_branch } => {
            walk(cond, bound, kinds)
                && walk(then_branch, bound, kinds)
                && walk(else_branch, bound, kinds)
        }
        Expr::Let { var, value, body } => {
            if !walk(value, bound, kinds) {
                return false;
            }
            let fresh = bound.insert(var.clone());
            let ok = walk(body, bound, kinds);
            if fresh {
                bound.remove(var);
            }
            ok
        }
        Expr::Property { recv, prop } => {
            if !walk(recv, bound, kinds) {
                return false;
            }
            match prop.as_str() {
                p if LOCAL_PROPS.contains(&p) => true,
                "attributes" => {
                    kinds.insert("Attribute");
                    true
                }
                "operations" => {
                    kinds.insert("Operation");
                    true
                }
                "parameters" => {
                    kinds.insert("Parameter");
                    true
                }
                "constraints" => {
                    kinds.insert("Constraint");
                    true
                }
                // Parent navigation depends on the generalization graph
                // and reads the classifier elements it reaches.
                "parents" | "ancestors" => {
                    kinds.extend([
                        "Generalization",
                        "Class",
                        "Interface",
                        "DataType",
                        "Enumeration",
                    ]);
                    true
                }
                // owner / qualifiedName / ownedElements / participants /
                // type / returnType / constrained and anything unknown
                // can reach arbitrary elements.
                _ => false,
            }
        }
        Expr::MethodCall { recv, method, args } => {
            // `K.allInstances()` with an unbound type-name receiver: the
            // entry point that makes the whole analysis possible.
            if method == "allInstances" {
                if let Expr::Var(type_name) = recv.as_ref() {
                    if !bound.contains(type_name) {
                        return match intern_kind(type_name) {
                            Some(k) => {
                                kinds.insert(k);
                                true
                            }
                            None => false,
                        };
                    }
                }
                // Dynamic receiver (`s.allInstances()`): not boundable.
                return false;
            }
            if !walk(recv, bound, kinds) || !args.iter().all(|a| walk(a, bound, kinds)) {
                return false;
            }
            match method.as_str() {
                "oclIsUndefined" | "oclIsKindOf" | "oclIsTypeOf" | "hasStereotype"
                | "taggedValue" | "size" | "concat" | "toUpper" | "toLower" | "contains"
                | "startsWith" | "substring" | "abs" | "max" | "min" => true,
                "operation" => {
                    kinds.insert("Operation");
                    true
                }
                "attribute" => {
                    kinds.insert("Attribute");
                    true
                }
                _ => false,
            }
        }
        Expr::CollectionCall { recv, args, .. } => {
            walk(recv, bound, kinds) && args.iter().all(|a| walk(a, bound, kinds))
        }
        Expr::Iterate { recv, var, body, .. } => {
            if !walk(recv, bound, kinds) {
                return false;
            }
            let fresh = bound.insert(var.clone());
            let ok = walk(body, bound, kinds);
            if fresh {
                bound.remove(var);
            }
            ok
        }
    }
}

/// Verdict cache for specialized OCL conditions, evicted by dirty-kind
/// intersection. One instance lives per model lineage (the lifecycle
/// owns one); it must be [`ConditionCache::invalidate_all`]-ed whenever
/// the model is replaced wholesale (undo restore, snapshot load).
#[derive(Debug, Default)]
pub struct ConditionCache {
    entries: HashMap<String, (Footprint, bool)>,
    hits: u64,
    evaluations: u64,
}

impl ConditionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the condition's verdict, evaluating only when no valid
    /// cached verdict exists. The differential-oracle property: this is
    /// always equal to a fresh [`evaluate_bool`] against `model`,
    /// provided every model change since the last call was reported via
    /// [`ConditionCache::note_delta`].
    ///
    /// # Errors
    /// Propagates parse/evaluation errors (never cached).
    pub fn check(&mut self, condition: &str, model: &Model) -> Result<bool, OclError> {
        if let Some((_, verdict)) = self.entries.get(condition) {
            self.hits += 1;
            return Ok(*verdict);
        }
        self.evaluations += 1;
        let ctx = Context::for_model(model);
        let verdict = evaluate_bool(condition, &ctx)?;
        self.entries.insert(condition.to_owned(), (Footprint::of_condition(condition), verdict));
        Ok(verdict)
    }

    /// Reports a committed (or in-flight, pre-postcondition) delta:
    /// evicts every entry whose footprint intersects the touched kinds.
    /// `None` means the delta could not be localized — drop everything.
    pub fn note_delta(&mut self, dirty_kinds: Option<&BTreeSet<&'static str>>) {
        match dirty_kinds {
            None => self.entries.clear(),
            Some(kinds) => self.entries.retain(|_, (fp, _)| !fp.may_depend_on(kinds)),
        }
    }

    /// Drops every entry (model replaced or rolled back under us).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Checks answered from cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checks that ran a full evaluation since construction.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Currently cached conditions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    fn kinds(fp: &Footprint) -> Vec<&'static str> {
        match fp {
            Footprint::All => panic!("expected bounded footprint"),
            Footprint::Kinds(k) => k.iter().copied().collect(),
        }
    }

    #[test]
    fn all_instances_footprint_is_the_queried_kind() {
        let fp = Footprint::of_condition("Class.allInstances()->exists(c | c.name = 'Bank')");
        assert_eq!(kinds(&fp), vec!["Class"]);
    }

    #[test]
    fn navigation_adds_reached_kinds() {
        let fp =
            Footprint::of_condition("Class.allInstances()->forAll(c | c.operations->size() >= 0)");
        assert_eq!(kinds(&fp), vec!["Class", "Operation"]);
        let fp =
            Footprint::of_condition("Class.allInstances()->forAll(c | c.ancestors->isEmpty())");
        assert!(kinds(&fp).contains(&"Generalization"));
    }

    #[test]
    fn unanalyzable_constructs_degrade_to_all() {
        assert_eq!(Footprint::of_condition("self.name = 'x'"), Footprint::All);
        assert_eq!(
            Footprint::of_condition("Class.allInstances()->forAll(c | c.owner.name = 'm')"),
            Footprint::All
        );
        assert_eq!(Footprint::of_condition("not valid ocl (("), Footprint::All);
    }

    #[test]
    fn stereotype_query_stays_bounded() {
        let fp = Footprint::of_condition(
            "Class.allInstances()->select(c | c.hasStereotype('Remote'))->notEmpty()",
        );
        assert_eq!(kinds(&fp), vec!["Class"]);
    }

    #[test]
    fn cache_hits_until_footprint_intersects() {
        let m = banking_pim();
        let mut cache = ConditionCache::new();
        let cond = "Class.allInstances()->exists(c | c.name = 'Bank')";
        assert!(cache.check(cond, &m).unwrap());
        assert!(cache.check(cond, &m).unwrap());
        assert_eq!(cache.evaluations(), 1);
        assert_eq!(cache.hits(), 1);
        // An operation-only delta leaves the Class-footprint entry alone.
        cache.note_delta(Some(&["Operation", "Parameter"].into()));
        assert_eq!(cache.len(), 1);
        // A class delta evicts it.
        cache.note_delta(Some(&["Class"].into()));
        assert!(cache.is_empty());
        assert!(cache.check(cond, &m).unwrap());
        assert_eq!(cache.evaluations(), 2);
    }

    #[test]
    fn unknown_delta_clears_everything() {
        let m = banking_pim();
        let mut cache = ConditionCache::new();
        cache.check("Class.allInstances()->notEmpty()", &m).unwrap();
        cache.note_delta(None);
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let m = banking_pim();
        let mut cache = ConditionCache::new();
        assert!(cache.check("this is not ocl ((", &m).is_err());
        assert!(cache.is_empty());
        assert!(cache.check("this is not ocl ((", &m).is_err());
        assert_eq!(cache.evaluations(), 2);
    }

    #[test]
    fn false_verdicts_are_cached_too() {
        let m = banking_pim();
        let mut cache = ConditionCache::new();
        let cond = "Class.allInstances()->exists(c | c.name = 'Ghost')";
        assert!(!cache.check(cond, &m).unwrap());
        assert!(!cache.check(cond, &m).unwrap());
        assert_eq!(cache.evaluations(), 1);
    }
}
