//! The transformation trait, specialization, and the application engine
//! with pre/postcondition checking and automatic concern coloring.

use crate::incremental::ConditionCache;
use crate::params::{ParamError, ParamSchema, ParamSet};
use comet_model::{ElementId, Model};
use comet_obs::Collector;
use comet_ocl::{evaluate_bool, Context, OclError};
use std::fmt;
use std::sync::Arc;

/// The four MDA model-to-model mapping types (paper, Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Platform-independent refinement.
    PimToPim,
    /// Projection onto an execution infrastructure.
    PimToPsm,
    /// Platform-dependent refinement.
    PsmToPsm,
    /// Abstraction of an implementation back to a PIM.
    PsmToPim,
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingKind::PimToPim => "PIM-to-PIM",
            MappingKind::PimToPsm => "PIM-to-PSM",
            MappingKind::PsmToPsm => "PSM-to-PSM",
            MappingKind::PsmToPim => "PSM-to-PIM",
        };
        f.write_str(s)
    }
}

/// A generic model transformation GMT_Ci: one concern dimension, a typed
/// parameter schema, and parameter-specialized OCL conditions.
///
/// Implementations must be deterministic functions of `(model, params)`.
pub trait GenericTransformation: Send + Sync {
    /// Transformation name, e.g. `"distribution"`.
    fn name(&self) -> &str;

    /// The concern dimension this transformation refines.
    fn concern(&self) -> &str;

    /// Which of the four MDA mapping types this is.
    fn mapping_kind(&self) -> MappingKind {
        MappingKind::PimToPsm
    }

    /// The parameter schema (the declared `P_ik` slots).
    fn parameter_schema(&self) -> ParamSchema;

    /// OCL preconditions, already specialized by `params`. All must hold
    /// on the input model.
    fn preconditions(&self, params: &ParamSet) -> Vec<String> {
        let _ = params;
        Vec::new()
    }

    /// OCL postconditions, already specialized by `params`. All must hold
    /// on the output model.
    fn postconditions(&self, params: &ParamSet) -> Vec<String> {
        let _ = params;
        Vec::new()
    }

    /// The transformation body. Runs between condition checks; created
    /// elements are concern-colored automatically by the engine.
    ///
    /// # Errors
    /// Implementations report domain failures as
    /// [`TransformError::Custom`] or propagate model errors.
    fn transform(&self, model: &mut Model, params: &ParamSet) -> Result<(), TransformError>;
}

/// Failures of specialization or application.
#[derive(Debug)]
pub enum TransformError {
    /// Parameter validation failed.
    Param(ParamError),
    /// A precondition evaluated to false.
    PreconditionFailed {
        /// The transformation.
        transformation: String,
        /// The failing OCL expression.
        condition: String,
    },
    /// A postcondition evaluated to false (model was rolled back).
    PostconditionFailed {
        /// The transformation.
        transformation: String,
        /// The failing OCL expression.
        condition: String,
    },
    /// A condition failed to parse or evaluate.
    Condition {
        /// The OCL expression.
        condition: String,
        /// The underlying OCL error.
        source: OclError,
    },
    /// The output model is not well-formed (model was rolled back).
    WellFormedness(Vec<comet_model::Violation>),
    /// A model mutation failed.
    Model(comet_model::ModelError),
    /// Domain-specific failure from the transformation body.
    Custom(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Param(e) => write!(f, "parameter error: {e}"),
            TransformError::PreconditionFailed { transformation, condition } => {
                write!(f, "precondition of `{transformation}` failed: {condition}")
            }
            TransformError::PostconditionFailed { transformation, condition } => {
                write!(f, "postcondition of `{transformation}` failed: {condition}")
            }
            TransformError::Condition { condition, source } => {
                write!(f, "condition `{condition}` could not be evaluated: {source}")
            }
            TransformError::WellFormedness(v) => {
                write!(f, "transformed model is ill-formed ({} violation(s))", v.len())
            }
            TransformError::Model(e) => write!(f, "model error: {e}"),
            TransformError::Custom(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<ParamError> for TransformError {
    fn from(e: ParamError) -> Self {
        TransformError::Param(e)
    }
}

impl From<comet_model::ModelError> for TransformError {
    fn from(e: comet_model::ModelError) -> Self {
        TransformError::Model(e)
    }
}

/// What one application changed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApplyReport {
    /// Elements created by the transformation (auto-colored).
    pub created: Vec<ElementId>,
    /// Pre-existing elements the transformation modified.
    pub modified: Vec<ElementId>,
    /// Elements removed.
    pub removed: Vec<ElementId>,
}

impl ApplyReport {
    /// Total elements touched.
    pub fn touched(&self) -> usize {
        self.created.len() + self.modified.len() + self.removed.len()
    }
}

/// A concrete model transformation CMT_Ci: a GMT closed over a validated
/// parameter set.
#[derive(Clone)]
pub struct ConcreteTransformation {
    gmt: Arc<dyn GenericTransformation>,
    params: ParamSet,
}

impl fmt::Debug for ConcreteTransformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConcreteTransformation({})", self.full_name())
    }
}

/// Specializes a generic transformation with `Si`, validating the
/// parameters against the schema (defaults filled in).
///
/// # Errors
/// Propagates [`ParamError`] from schema validation.
pub fn specialize(
    gmt: Arc<dyn GenericTransformation>,
    params: ParamSet,
) -> Result<ConcreteTransformation, ParamError> {
    let effective = gmt.parameter_schema().validate(&params)?;
    Ok(ConcreteTransformation { gmt, params: effective })
}

impl ConcreteTransformation {
    /// The underlying generic transformation.
    pub fn generic(&self) -> &Arc<dyn GenericTransformation> {
        &self.gmt
    }

    /// The effective (validated, default-filled) parameter set — the
    /// `Si` that also specializes the paired aspect.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// The concern dimension.
    pub fn concern(&self) -> &str {
        self.gmt.concern()
    }

    /// `name<p1=v1, ...>`, the paper's `Ti<pi1, pi2, ...>` notation.
    pub fn full_name(&self) -> String {
        format!("{}{}", self.gmt.name(), self.params.angle_signature())
    }

    /// The specialized preconditions.
    pub fn preconditions(&self) -> Vec<String> {
        self.gmt.preconditions(&self.params)
    }

    /// The specialized postconditions.
    pub fn postconditions(&self) -> Vec<String> {
        self.gmt.postconditions(&self.params)
    }

    /// Applies the transformation atomically:
    ///
    /// 1. checks every specialized precondition on the input model;
    /// 2. opens a change-journal segment and runs the body;
    /// 3. colors every created element with the concern;
    /// 4. re-validates well-formedness and checks every specialized
    ///    postcondition — on any failure the journal segment is rolled
    ///    back, restoring the model to its input state in O(delta).
    ///
    /// The [`ApplyReport`] is derived from the committed journal
    /// segment, not from a before/after sweep of the whole arena. The
    /// pre-journal clone-based engine is retained as
    /// [`ConcreteTransformation::apply_cloned`] and serves as the
    /// differential oracle in the test suite.
    ///
    /// # Errors
    /// See [`TransformError`]; the model is unchanged on every error.
    pub fn apply(&self, model: &mut Model) -> Result<ApplyReport, TransformError> {
        self.check_conditions(model, self.preconditions(), /* pre: */ true)?;
        model.begin_journal();
        let result = self.apply_body_journaled(model);
        match result {
            Ok(()) => {
                let summary = model.commit_journal().expect("journal opened above");
                Ok(ApplyReport {
                    created: summary.created,
                    modified: summary.modified,
                    removed: summary.removed,
                })
            }
            Err(e) => {
                model.rollback_journal();
                Err(e)
            }
        }
    }

    /// [`ConcreteTransformation::apply`] wrapped in a trace span: the
    /// application runs under an `apply:<full_name>` span tagged with
    /// the concern, the CMT name and the specialization `Si`, and on
    /// success every journal-delta entry becomes a
    /// `model.created|modified|removed` event naming the element — the
    /// model-level end of the provenance chain. Outcome (including the
    /// error, if any) is recorded as a span attribute. With a disabled
    /// collector this is exactly `apply` plus one branch.
    ///
    /// # Errors
    /// See [`ConcreteTransformation::apply`].
    pub fn apply_traced(
        &self,
        model: &mut Model,
        obs: &Collector,
    ) -> Result<ApplyReport, TransformError> {
        if !obs.is_enabled() {
            return self.apply(model);
        }
        self.apply_traced_inner(model, obs, |cmt, m| cmt.apply(m))
    }

    /// Journaled application with cached pre/postcondition checking.
    ///
    /// Identical to [`ConcreteTransformation::apply`] except that every
    /// condition verdict is looked up in `cache` first and only
    /// evaluated on a miss; after the body runs, the open journal
    /// segment's dirty kinds are reported to the cache (evicting stale
    /// entries) before the postconditions are checked. The caller owns
    /// the cache across applications on one model lineage and must
    /// [`ConditionCache::invalidate_all`] it whenever the model changes
    /// outside this method (undo, snapshot restore, direct edits
    /// without a reported delta).
    ///
    /// # Errors
    /// See [`TransformError`]; the model is unchanged on every error
    /// (the cache is cleared on rollback, trading re-evaluation for
    /// simplicity on the failure path).
    pub fn apply_incremental(
        &self,
        model: &mut Model,
        cache: &mut ConditionCache,
    ) -> Result<ApplyReport, TransformError> {
        self.check_conditions_cached(model, cache, self.preconditions(), /* pre: */ true)?;
        model.begin_journal();
        let result = self.apply_body_incremental(model, cache);
        match result {
            Ok(()) => {
                let summary = model.commit_journal().expect("journal opened above");
                Ok(ApplyReport {
                    created: summary.created,
                    modified: summary.modified,
                    removed: summary.removed,
                })
            }
            Err(e) => {
                model.rollback_journal();
                cache.invalidate_all();
                Err(e)
            }
        }
    }

    /// [`ConcreteTransformation::apply_incremental`] under the same
    /// trace span and journal-delta events as
    /// [`ConcreteTransformation::apply_traced`].
    ///
    /// # Errors
    /// See [`ConcreteTransformation::apply_incremental`].
    pub fn apply_incremental_traced(
        &self,
        model: &mut Model,
        obs: &Collector,
        cache: &mut ConditionCache,
    ) -> Result<ApplyReport, TransformError> {
        if !obs.is_enabled() {
            return self.apply_incremental(model, cache);
        }
        self.apply_traced_inner(model, obs, |cmt, m| cmt.apply_incremental(m, cache))
    }

    fn apply_traced_inner(
        &self,
        model: &mut Model,
        obs: &Collector,
        apply: impl FnOnce(&Self, &mut Model) -> Result<ApplyReport, TransformError>,
    ) -> Result<ApplyReport, TransformError> {
        let span = obs.begin_span("transform", &format!("apply:{}", self.full_name()), 0);
        obs.span_attr(span, "concern", self.concern());
        obs.span_attr(span, "cmt", &self.full_name());
        obs.span_attr(span, "si", &self.params.angle_signature());
        let result = apply(self, model);
        match &result {
            Ok(report) => {
                obs.span_attr(span, "outcome", "ok");
                for (action, ids) in [
                    ("model.created", &report.created),
                    ("model.modified", &report.modified),
                    ("model.removed", &report.removed),
                ] {
                    for id in ids {
                        let mut attrs = vec![("id".to_owned(), id.to_string())];
                        if let Ok(e) = model.element(*id) {
                            attrs.push(("element".to_owned(), e.name().to_owned()));
                            attrs.push(("kind".to_owned(), e.kind().kind_name().to_owned()));
                        }
                        obs.event("transform", action, 0, attrs);
                    }
                }
            }
            Err(e) => obs.span_attr(span, "outcome", &format!("error: {e}")),
        }
        obs.end_span(span, 0);
        result
    }

    /// The pre-journal engine: snapshots the whole model up front,
    /// restores the snapshot on failure, and derives the report from a
    /// before/after element sweep. O(model) per application regardless
    /// of how little the body touches — kept as the differential oracle
    /// for [`ConcreteTransformation::apply`] and as the "before"
    /// baseline in the transform benchmarks.
    ///
    /// # Errors
    /// See [`TransformError`]; the model is unchanged on every error.
    pub fn apply_cloned(&self, model: &mut Model) -> Result<ApplyReport, TransformError> {
        self.check_conditions(model, self.preconditions(), /* pre: */ true)?;
        let before = model.clone();
        let result = self.apply_body_cloned(model, &before);
        if result.is_err() {
            *model = before;
        }
        result
    }

    fn check_conditions(
        &self,
        model: &Model,
        conditions: Vec<String>,
        pre: bool,
    ) -> Result<(), TransformError> {
        for condition in conditions {
            let ctx = Context::for_model(model);
            match evaluate_bool(&condition, &ctx) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(if pre {
                        TransformError::PreconditionFailed {
                            transformation: self.full_name(),
                            condition,
                        }
                    } else {
                        TransformError::PostconditionFailed {
                            transformation: self.full_name(),
                            condition,
                        }
                    })
                }
                Err(e) => return Err(TransformError::Condition { condition, source: e }),
            }
        }
        Ok(())
    }

    /// [`ConcreteTransformation::check_conditions`] answering from the
    /// cache where possible; verdicts and error mapping are identical.
    fn check_conditions_cached(
        &self,
        model: &Model,
        cache: &mut ConditionCache,
        conditions: Vec<String>,
        pre: bool,
    ) -> Result<(), TransformError> {
        for condition in conditions {
            match cache.check(&condition, model) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(if pre {
                        TransformError::PreconditionFailed {
                            transformation: self.full_name(),
                            condition,
                        }
                    } else {
                        TransformError::PostconditionFailed {
                            transformation: self.full_name(),
                            condition,
                        }
                    })
                }
                Err(e) => return Err(TransformError::Condition { condition, source: e }),
            }
        }
        Ok(())
    }

    /// [`ConcreteTransformation::apply_body_journaled`] with cached
    /// postconditions: the open segment's dirty kinds evict stale cache
    /// entries *before* the postconditions consult the cache.
    fn apply_body_incremental(
        &self,
        model: &mut Model,
        cache: &mut ConditionCache,
    ) -> Result<(), TransformError> {
        self.gmt.transform(model, &self.params)?;
        for id in model.journal_created() {
            model.mark_concern(id, self.gmt.concern())?;
        }
        if let Err(violations) = model.validate() {
            return Err(TransformError::WellFormedness(violations));
        }
        let kinds = model.journal_dirty().and_then(|d| d.kinds(model));
        cache.note_delta(kinds.as_ref());
        self.check_conditions_cached(model, cache, self.postconditions(), /* pre: */ false)
    }

    /// Body + coloring + postcondition phase of the journaled engine.
    /// Runs entirely inside the caller's journal segment; the caller
    /// commits or rolls back.
    fn apply_body_journaled(&self, model: &mut Model) -> Result<(), TransformError> {
        self.gmt.transform(model, &self.params)?;
        // Color created elements straight off the journal — no snapshot
        // diff needed to know what the body created.
        for id in model.journal_created() {
            model.mark_concern(id, self.gmt.concern())?;
        }
        if let Err(violations) = model.validate() {
            return Err(TransformError::WellFormedness(violations));
        }
        self.check_conditions(model, self.postconditions(), /* pre: */ false)
    }

    fn apply_body_cloned(
        &self,
        model: &mut Model,
        before: &Model,
    ) -> Result<ApplyReport, TransformError> {
        self.gmt.transform(model, &self.params)?;
        // Color created elements; compute the report.
        let mut report = ApplyReport::default();
        let created: Vec<ElementId> =
            model.iter().map(|e| e.id()).filter(|id| !before.contains(*id)).collect();
        for id in &created {
            model.mark_concern(*id, self.gmt.concern())?;
        }
        report.created = created;
        for e in before.iter() {
            match model.element(e.id()) {
                Err(_) => report.removed.push(e.id()),
                Ok(now) => {
                    if now != e {
                        report.modified.push(e.id());
                    }
                }
            }
        }
        if let Err(violations) = model.validate() {
            return Err(TransformError::WellFormedness(violations));
        }
        self.check_conditions(model, self.postconditions(), /* pre: */ false)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TransformationBuilder;
    use crate::params::ParamValue;
    use comet_model::sample::banking_pim;

    fn add_class_gmt() -> Arc<dyn GenericTransformation> {
        TransformationBuilder::new("add-class", "testing")
            .schema(ParamSchema::new().string("name", true, None))
            .precondition("Class.allInstances()->notEmpty()")
            .postcondition("Class.allInstances()->exists(c | c.concern = 'testing')")
            .body(|model, params| {
                let name = params.str("name")?.to_owned();
                let root = model.root();
                model.add_class(root, &name)?;
                Ok(())
            })
            .build()
    }

    #[test]
    fn specialize_validates_and_names() {
        let gmt = add_class_gmt();
        let cmt =
            specialize(Arc::clone(&gmt), ParamSet::new().with("name", ParamValue::from("Proxy")))
                .unwrap();
        assert_eq!(cmt.full_name(), "add-class<name=Proxy>");
        assert_eq!(cmt.concern(), "testing");
        assert_eq!(cmt.generic().name(), "add-class");
        assert!(matches!(specialize(gmt, ParamSet::new()), Err(ParamError::Missing(_))));
    }

    #[test]
    fn apply_creates_colors_and_reports() {
        let cmt =
            specialize(add_class_gmt(), ParamSet::new().with("name", ParamValue::from("Proxy")))
                .unwrap();
        let mut m = banking_pim();
        let report = cmt.apply(&mut m).unwrap();
        assert_eq!(report.created.len(), 1);
        assert_eq!(report.touched(), 1);
        let proxy = m.find_class("Proxy").unwrap();
        assert_eq!(m.concern_of(proxy), Some("testing"));
    }

    #[test]
    fn precondition_failure_blocks_application() {
        let gmt = TransformationBuilder::new("t", "c")
            .precondition("Class.allInstances()->exists(c | c.name = 'Ghost')")
            .body(|_, _| Ok(()))
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let mut m = banking_pim();
        let snapshot = m.clone();
        let err = cmt.apply(&mut m).unwrap_err();
        assert!(matches!(err, TransformError::PreconditionFailed { .. }));
        assert_eq!(m, snapshot);
    }

    #[test]
    fn postcondition_failure_rolls_back() {
        let gmt = TransformationBuilder::new("t", "c")
            .postcondition("false")
            .body(|model, _| {
                let root = model.root();
                model.add_class(root, "Garbage")?;
                Ok(())
            })
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let mut m = banking_pim();
        let snapshot = m.clone();
        let err = cmt.apply(&mut m).unwrap_err();
        assert!(matches!(err, TransformError::PostconditionFailed { .. }));
        assert_eq!(m, snapshot, "model must be restored");
    }

    #[test]
    fn body_error_rolls_back() {
        let gmt = TransformationBuilder::new("t", "c")
            .body(|model, _| {
                let root = model.root();
                model.add_class(root, "Partial")?;
                Err(TransformError::Custom("bang".into()))
            })
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let mut m = banking_pim();
        let snapshot = m.clone();
        assert!(cmt.apply(&mut m).is_err());
        assert_eq!(m, snapshot);
    }

    #[test]
    fn malformed_condition_reported() {
        let gmt = TransformationBuilder::new("t", "c")
            .precondition("this is not ocl ((")
            .body(|_, _| Ok(()))
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let mut m = banking_pim();
        let err = cmt.apply(&mut m).unwrap_err();
        assert!(matches!(err, TransformError::Condition { .. }));
        assert!(err.to_string().contains("could not be evaluated"));
    }

    #[test]
    fn modified_elements_reported() {
        let gmt = TransformationBuilder::new("t", "c")
            .body(|model, _| {
                let bank = model.find_class("Bank").expect("bank exists");
                model.apply_stereotype(bank, "Touched")?;
                Ok(())
            })
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let mut m = banking_pim();
        let report = cmt.apply(&mut m).unwrap();
        assert_eq!(report.created.len(), 0);
        assert_eq!(report.modified.len(), 1);
    }

    #[test]
    fn apply_traced_spans_and_delta_events() {
        let cmt =
            specialize(add_class_gmt(), ParamSet::new().with("name", ParamValue::from("Proxy")))
                .unwrap();
        let obs = comet_obs::Collector::enabled();
        let mut m = banking_pim();
        cmt.apply_traced(&mut m, &obs).unwrap();
        let trace = obs.take();
        assert_eq!(trace.spans.len(), 1);
        let span = &trace.spans[0];
        assert_eq!(span.name, "apply:add-class<name=Proxy>");
        assert_eq!(comet_obs::Trace::attr(&span.attrs, "concern"), Some("testing"));
        assert_eq!(comet_obs::Trace::attr(&span.attrs, "si"), Some("<name=Proxy>"));
        assert_eq!(comet_obs::Trace::attr(&span.attrs, "outcome"), Some("ok"));
        let created: Vec<&comet_obs::Event> =
            trace.events.iter().filter(|e| e.name == "model.created").collect();
        assert_eq!(created.len(), 1);
        assert_eq!(comet_obs::Trace::attr(&created[0].attrs, "element"), Some("Proxy"));
        assert_eq!(comet_obs::Trace::attr(&created[0].attrs, "kind"), Some("Class"));
        assert_eq!(created[0].span, Some(span.id));
    }

    #[test]
    fn apply_traced_records_failure_and_rolls_back() {
        let gmt = TransformationBuilder::new("t", "c")
            .postcondition("false")
            .body(|model, _| {
                let root = model.root();
                model.add_class(root, "Garbage")?;
                Ok(())
            })
            .build();
        let cmt = specialize(gmt, ParamSet::new()).unwrap();
        let obs = comet_obs::Collector::enabled();
        let mut m = banking_pim();
        let snapshot = m.clone();
        assert!(cmt.apply_traced(&mut m, &obs).is_err());
        assert_eq!(m, snapshot);
        let trace = obs.take();
        let outcome = comet_obs::Trace::attr(&trace.spans[0].attrs, "outcome").unwrap();
        assert!(outcome.starts_with("error:"), "{outcome}");
        assert!(trace.events.is_empty(), "no delta events on rollback");
    }

    #[test]
    fn apply_traced_disabled_matches_apply() {
        let cmt =
            specialize(add_class_gmt(), ParamSet::new().with("name", ParamValue::from("Proxy")))
                .unwrap();
        let obs = comet_obs::Collector::disabled();
        let (mut a, mut b) = (banking_pim(), banking_pim());
        let traced = cmt.apply_traced(&mut a, &obs).unwrap();
        let plain = cmt.apply(&mut b).unwrap();
        assert_eq!(traced, plain);
        assert_eq!(a, b);
        assert!(obs.take().is_empty());
    }

    #[test]
    fn mapping_kind_display() {
        assert_eq!(MappingKind::PimToPsm.to_string(), "PIM-to-PSM");
        assert_eq!(MappingKind::PsmToPim.to_string(), "PSM-to-PIM");
    }
}
