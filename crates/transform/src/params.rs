//! Parameter sets (`Si = Set(P_ik)`) and typed parameter schemas.

use std::collections::BTreeMap;
use std::fmt;

/// A parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// String parameter.
    Str(String),
    /// Integer parameter.
    Int(i64),
    /// Boolean parameter.
    Bool(bool),
    /// List-of-strings parameter (e.g. the methods to make transactional).
    StrList(Vec<String>),
}

impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_owned())
    }
}

impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}

impl From<i64> for ParamValue {
    fn from(i: i64) -> Self {
        ParamValue::Int(i)
    }
}

impl From<bool> for ParamValue {
    fn from(b: bool) -> Self {
        ParamValue::Bool(b)
    }
}

impl From<Vec<String>> for ParamValue {
    fn from(v: Vec<String>) -> Self {
        ParamValue::StrList(v)
    }
}

impl From<&[&str]> for ParamValue {
    fn from(v: &[&str]) -> Self {
        ParamValue::StrList(v.iter().map(|s| (*s).to_owned()).collect())
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Str(s) => write!(f, "{s}"),
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::StrList(v) => write!(f, "[{}]", v.join(", ")),
        }
    }
}

/// Declared type of a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamType {
    /// Any string.
    Str,
    /// Any integer.
    Int,
    /// A boolean.
    Bool,
    /// A list of strings.
    StrList,
    /// A string restricted to the given choices.
    Choice(Vec<String>),
}

impl ParamType {
    fn accepts(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (ParamType::Str, ParamValue::Str(_)) => true,
            (ParamType::Int, ParamValue::Int(_)) => true,
            (ParamType::Bool, ParamValue::Bool(_)) => true,
            (ParamType::StrList, ParamValue::StrList(_)) => true,
            (ParamType::Choice(options), ParamValue::Str(s)) => options.iter().any(|o| o == s),
            _ => false,
        }
    }
}

/// One parameter declaration (a `P_ik` slot).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
    /// Whether the specialization must supply it.
    pub required: bool,
    /// Default used when not required and absent.
    pub default: Option<ParamValue>,
    /// Human-facing description (shown by configuration wizards).
    pub doc: String,
}

/// The typed parameter schema of a generic transformation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamSchema {
    specs: Vec<ParamSpec>,
}

impl ParamSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary spec, builder style.
    pub fn param(mut self, spec: ParamSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds a string parameter.
    pub fn string(self, name: &str, required: bool, default: Option<&str>) -> Self {
        self.param(ParamSpec {
            name: name.to_owned(),
            ty: ParamType::Str,
            required,
            default: default.map(ParamValue::from),
            doc: String::new(),
        })
    }

    /// Adds a string-list parameter.
    pub fn str_list(self, name: &str, required: bool) -> Self {
        self.param(ParamSpec {
            name: name.to_owned(),
            ty: ParamType::StrList,
            required,
            default: Some(ParamValue::StrList(Vec::new())),
            doc: String::new(),
        })
    }

    /// Adds a choice parameter with a default.
    pub fn choice(self, name: &str, options: &[&str], default: &str) -> Self {
        self.param(ParamSpec {
            name: name.to_owned(),
            ty: ParamType::Choice(options.iter().map(|s| (*s).to_owned()).collect()),
            required: false,
            default: Some(ParamValue::from(default)),
            doc: String::new(),
        })
    }

    /// Adds an integer parameter with a default.
    pub fn integer(self, name: &str, default: i64) -> Self {
        self.param(ParamSpec {
            name: name.to_owned(),
            ty: ParamType::Int,
            required: false,
            default: Some(ParamValue::Int(default)),
            doc: String::new(),
        })
    }

    /// Adds a boolean parameter with a default.
    pub fn boolean(self, name: &str, default: bool) -> Self {
        self.param(ParamSpec {
            name: name.to_owned(),
            ty: ParamType::Bool,
            required: false,
            default: Some(ParamValue::Bool(default)),
            doc: String::new(),
        })
    }

    /// The declared specs in order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    /// Validates a parameter set against this schema and returns the
    /// *effective* set: defaults filled in, every value type-checked.
    ///
    /// # Errors
    /// Reports the first missing, unknown or ill-typed parameter.
    pub fn validate(&self, params: &ParamSet) -> Result<ParamSet, ParamError> {
        for key in params.values.keys() {
            if !self.specs.iter().any(|s| &s.name == key) {
                return Err(ParamError::Unknown(key.clone()));
            }
        }
        let mut effective = ParamSet::new();
        for spec in &self.specs {
            match params.values.get(&spec.name) {
                Some(v) => {
                    if !spec.ty.accepts(v) {
                        return Err(ParamError::WrongType {
                            name: spec.name.clone(),
                            expected: format!("{:?}", spec.ty),
                            found: v.to_string(),
                        });
                    }
                    effective.values.insert(spec.name.clone(), v.clone());
                }
                None => {
                    if spec.required {
                        return Err(ParamError::Missing(spec.name.clone()));
                    }
                    if let Some(d) = &spec.default {
                        effective.values.insert(spec.name.clone(), d.clone());
                    }
                }
            }
        }
        Ok(effective)
    }
}

/// The paper's `Si`: concrete parameter values for one specialization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamSet {
    values: BTreeMap<String, ParamValue>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a value, builder style.
    pub fn with(mut self, name: &str, value: ParamValue) -> Self {
        self.values.insert(name.to_owned(), value);
        self
    }

    /// Raw lookup.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// String lookup.
    ///
    /// # Errors
    /// Fails when absent or not a string.
    pub fn str(&self, name: &str) -> Result<&str, ParamError> {
        match self.values.get(name) {
            Some(ParamValue::Str(s)) => Ok(s),
            Some(other) => Err(ParamError::WrongType {
                name: name.to_owned(),
                expected: "Str".into(),
                found: other.to_string(),
            }),
            None => Err(ParamError::Missing(name.to_owned())),
        }
    }

    /// Integer lookup.
    ///
    /// # Errors
    /// Fails when absent or not an integer.
    pub fn int(&self, name: &str) -> Result<i64, ParamError> {
        match self.values.get(name) {
            Some(ParamValue::Int(i)) => Ok(*i),
            Some(other) => Err(ParamError::WrongType {
                name: name.to_owned(),
                expected: "Int".into(),
                found: other.to_string(),
            }),
            None => Err(ParamError::Missing(name.to_owned())),
        }
    }

    /// Boolean lookup.
    ///
    /// # Errors
    /// Fails when absent or not a boolean.
    pub fn bool(&self, name: &str) -> Result<bool, ParamError> {
        match self.values.get(name) {
            Some(ParamValue::Bool(b)) => Ok(*b),
            Some(other) => Err(ParamError::WrongType {
                name: name.to_owned(),
                expected: "Bool".into(),
                found: other.to_string(),
            }),
            None => Err(ParamError::Missing(name.to_owned())),
        }
    }

    /// String-list lookup.
    ///
    /// # Errors
    /// Fails when absent or not a string list.
    pub fn str_list(&self, name: &str) -> Result<&[String], ParamError> {
        match self.values.get(name) {
            Some(ParamValue::StrList(v)) => Ok(v),
            Some(other) => Err(ParamError::WrongType {
                name: name.to_owned(),
                expected: "StrList".into(),
                found: other.to_string(),
            }),
            None => Err(ParamError::Missing(name.to_owned())),
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders `<p1=v1, p2=v2>`; used to name concrete transformations
    /// and aspects (`T1<p11, p12, ...>` in the paper's Fig. 2).
    pub fn angle_signature(&self) -> String {
        let inner: Vec<String> = self.values.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("<{}>", inner.join(", "))
    }
}

impl fmt::Display for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.angle_signature())
    }
}

/// Parameter validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A required parameter is absent.
    Missing(String),
    /// A supplied parameter is not in the schema.
    Unknown(String),
    /// A supplied value has the wrong type or is outside the choices.
    WrongType {
        /// Parameter name.
        name: String,
        /// Declared type.
        expected: String,
        /// Offending value.
        found: String,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Missing(n) => write!(f, "missing required parameter `{n}`"),
            ParamError::Unknown(n) => write!(f, "unknown parameter `{n}`"),
            ParamError::WrongType { name, expected, found } => {
                write!(f, "parameter `{name}` expects {expected}, got `{found}`")
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ParamSchema {
        ParamSchema::new()
            .string("node", true, None)
            .choice("isolation", &["read-committed", "serializable"], "read-committed")
            .str_list("methods", false)
            .boolean("audit", false)
    }

    #[test]
    fn validate_fills_defaults() {
        let s = schema();
        let effective =
            s.validate(&ParamSet::new().with("node", ParamValue::from("server"))).unwrap();
        assert_eq!(effective.str("node").unwrap(), "server");
        assert_eq!(effective.str("isolation").unwrap(), "read-committed");
        assert_eq!(effective.str_list("methods").unwrap().len(), 0);
        assert!(!effective.bool("audit").unwrap());
        assert_eq!(effective.len(), 4);
    }

    #[test]
    fn validate_rejects_missing_unknown_illtyped() {
        let s = schema();
        assert_eq!(s.validate(&ParamSet::new()), Err(ParamError::Missing("node".into())));
        assert_eq!(
            s.validate(
                &ParamSet::new()
                    .with("node", ParamValue::from("n"))
                    .with("ghost", ParamValue::from("x"))
            ),
            Err(ParamError::Unknown("ghost".into()))
        );
        assert!(matches!(
            s.validate(&ParamSet::new().with("node", ParamValue::Int(3))),
            Err(ParamError::WrongType { .. })
        ));
        // Choice outside options.
        assert!(matches!(
            s.validate(
                &ParamSet::new()
                    .with("node", ParamValue::from("n"))
                    .with("isolation", ParamValue::from("chaotic"))
            ),
            Err(ParamError::WrongType { .. })
        ));
    }

    #[test]
    fn typed_lookups() {
        let p = ParamSet::new()
            .with("s", ParamValue::from("x"))
            .with("i", ParamValue::Int(3))
            .with("b", ParamValue::Bool(true))
            .with("l", ParamValue::from(vec!["a".to_owned()]));
        assert_eq!(p.str("s").unwrap(), "x");
        assert_eq!(p.int("i").unwrap(), 3);
        assert!(p.bool("b").unwrap());
        assert_eq!(p.str_list("l").unwrap(), &["a".to_owned()]);
        assert!(matches!(p.str("i"), Err(ParamError::WrongType { .. })));
        assert!(matches!(p.int("missing"), Err(ParamError::Missing(_))));
        assert!(!p.is_empty());
    }

    #[test]
    fn angle_signature_matches_paper_notation() {
        let p = ParamSet::new().with("p11", ParamValue::from("a")).with("p12", ParamValue::Int(2));
        assert_eq!(p.angle_signature(), "<p11=a, p12=2>");
        assert_eq!(p.to_string(), "<p11=a, p12=2>");
    }

    #[test]
    fn from_impls() {
        assert_eq!(ParamValue::from("x"), ParamValue::Str("x".into()));
        assert_eq!(ParamValue::from(5i64), ParamValue::Int(5));
        assert_eq!(ParamValue::from(true), ParamValue::Bool(true));
        let slice: &[&str] = &["a", "b"];
        assert_eq!(ParamValue::from(slice), ParamValue::StrList(vec!["a".into(), "b".into()]));
    }
}
