//! # comet-aspectgen — generic aspects and aspect generators
//!
//! The right-hand side of the paper's Fig. 1, and its central claim:
//!
//! > *each model transformation (generic or concrete) has associated an
//! > aspect (generic or concrete, respectively) ... the set of parameters
//! > `Si`, used to specialize the generic model transformation, could be
//! > used to specialize the corresponding generic aspect as well, thus
//! > overcoming the problem of semantic coupling.*
//!
//! * [`GenericAspect`] — a GA_Ci: a parameterized aspect template whose
//!   schema matches the paired transformation's;
//! * [`ConcernPair`] — the 1–1 GMT⇄GA association; its
//!   [`specialize`](ConcernPair::specialize) hands **one** `Si` to both
//!   sides and returns the `(CMT_Ci, CA_Ci)` pair;
//! * [`AspectBuilder`] — closure-based GA construction;
//! * [`AspectBackend`] — "aspect generator plug-ins for specific
//!   technology platforms": renders a concrete aspect as a platform
//!   artifact. [`AspectJBackend`] emits AspectJ-flavoured source text;
//!   actual execution weaves the IR via `comet-aop`.

mod backend;
mod generic;
mod pair;

pub use backend::{AspectBackend, AspectJBackend};
pub use generic::{AspectBuilder, AspectGenError, GenericAspect};
pub use pair::ConcernPair;
