//! The 1–1 association between a generic model transformation and its
//! generic aspect — the structure of the paper's Fig. 1.

use crate::generic::{AspectGenError, GenericAspect};
use comet_aop::Aspect;
use comet_transform::{
    specialize as specialize_gmt, ConcreteTransformation, GenericTransformation, ParamSet,
};
use std::fmt;
use std::sync::Arc;

/// A concern module: GMT_Ci paired with GA_Ci.
///
/// One parameter set `Si` specializes *both* sides — this shared
/// specialization is what lets a generic aspect acquire the
/// application-specific knowledge it needs (Kienzle & Guerraoui's
/// semantic-coupling objection, answered).
#[derive(Clone)]
pub struct ConcernPair {
    gmt: Arc<dyn GenericTransformation>,
    ga: Arc<dyn GenericAspect>,
}

impl fmt::Debug for ConcernPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConcernPair({} ⇄ {})", self.gmt.name(), self.ga.name())
    }
}

impl ConcernPair {
    /// Pairs a transformation with its aspect.
    ///
    /// # Panics
    /// Panics when the two sides disagree on the concern name — the
    /// pairing is 1–1 per concern dimension by construction.
    pub fn new(gmt: Arc<dyn GenericTransformation>, ga: Arc<dyn GenericAspect>) -> Self {
        assert_eq!(
            gmt.concern(),
            ga.concern(),
            "a ConcernPair must pair a transformation and an aspect of the same concern"
        );
        ConcernPair { gmt, ga }
    }

    /// The concern dimension.
    pub fn concern(&self) -> &str {
        self.gmt.concern()
    }

    /// The generic transformation side.
    pub fn transformation(&self) -> &Arc<dyn GenericTransformation> {
        &self.gmt
    }

    /// The generic aspect side.
    pub fn aspect(&self) -> &Arc<dyn GenericAspect> {
        &self.ga
    }

    /// Specializes both sides with **one** parameter set `Si`:
    /// validates `Si` against the transformation schema (filling
    /// defaults) and hands the same effective set to the aspect
    /// template. Returns `(CMT_Ci, CA_Ci)`.
    ///
    /// # Errors
    /// Propagates parameter validation and aspect-template failures.
    pub fn specialize(
        &self,
        si: ParamSet,
    ) -> Result<(ConcreteTransformation, Aspect), AspectGenError> {
        let cmt = specialize_gmt(Arc::clone(&self.gmt), si)?;
        // The effective (default-filled) Si from the transformation side
        // is exactly what the aspect receives: one Si, two artifacts.
        let ca = self.ga.specialize(cmt.params())?;
        Ok((cmt, ca))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::AspectBuilder;
    use comet_aop::{parse_pointcut, Advice, AdviceKind};
    use comet_codegen::Block;
    use comet_transform::{ParamSchema, ParamValue, TransformationBuilder};

    fn pair() -> ConcernPair {
        let schema =
            || ParamSchema::new().string("class", true, None).choice("mode", &["a", "b"], "a");
        let gmt = TransformationBuilder::new("mark", "security")
            .schema(schema())
            .body(|model, params| {
                let class = model
                    .find_class(params.str("class")?)
                    .ok_or_else(|| comet_transform::TransformError::Custom("missing".into()))?;
                model.apply_stereotype(class, "Secured")?;
                Ok(())
            })
            .build();
        let ga = AspectBuilder::new("guard", "security")
            .schema(schema())
            .advice_fn(|params| {
                let class = params.str("class")?;
                let mode = params.str("mode")?;
                let pc = parse_pointcut(&format!("execution({class}.*)"))
                    .map_err(|e| AspectGenError::Pointcut(e.to_string()))?;
                let mut a = Advice::new(AdviceKind::Before, pc, Block::default());
                // Mode feeds the advice in real concerns; here we only
                // check it arrived.
                assert!(!mode.is_empty());
                Ok(vec![a.clone()]).map(|v| {
                    a = v[0].clone();
                    v
                })
            })
            .build();
        ConcernPair::new(gmt, ga)
    }

    #[test]
    fn one_si_specializes_both_sides() {
        let p = pair();
        assert_eq!(p.concern(), "security");
        let si = ParamSet::new().with("class", ParamValue::from("Bank"));
        let (cmt, ca) = p.specialize(si).unwrap();
        // Both carry the same effective Si, defaults included.
        assert_eq!(cmt.full_name(), "mark<class=Bank, mode=a>");
        assert_eq!(ca.name, "guard<class=Bank, mode=a>");
        assert_eq!(cmt.params().str("mode").unwrap(), "a");
        assert_eq!(p.transformation().name(), "mark");
        assert_eq!(p.aspect().name(), "guard");
    }

    #[test]
    fn invalid_si_rejected_once_for_both() {
        let p = pair();
        let err = p.specialize(ParamSet::new()).unwrap_err();
        assert!(matches!(err, AspectGenError::Param(_)));
    }

    #[test]
    #[should_panic(expected = "same concern")]
    fn mismatched_concerns_panic() {
        let gmt = TransformationBuilder::new("t", "a").body(|_, _| Ok(())).build();
        let ga = AspectBuilder::new("g", "b").advice_fn(|_| Ok(vec![])).build();
        let _ = ConcernPair::new(gmt, ga);
    }
}
