//! Generic aspects (GA_Ci) and their specialization into concrete
//! aspects (CA_Ci).

use comet_aop::{Advice, Aspect};
use comet_transform::{ParamError, ParamSchema, ParamSet};
use std::fmt;
use std::sync::Arc;

/// Aspect-generation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum AspectGenError {
    /// Parameter validation failed.
    Param(ParamError),
    /// A pointcut template rendered into an unparsable pointcut.
    Pointcut(String),
    /// Domain-specific failure.
    Custom(String),
}

impl fmt::Display for AspectGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspectGenError::Param(e) => write!(f, "parameter error: {e}"),
            AspectGenError::Pointcut(m) => write!(f, "pointcut template error: {m}"),
            AspectGenError::Custom(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for AspectGenError {}

impl From<ParamError> for AspectGenError {
    fn from(e: ParamError) -> Self {
        AspectGenError::Param(e)
    }
}

/// A generic aspect GA_Ci: an aspect template specialized by the same
/// parameter set `Si` as the paired generic model transformation.
pub trait GenericAspect: Send + Sync {
    /// Aspect name, e.g. `"transactions-aspect"`.
    fn name(&self) -> &str;

    /// The concern dimension the aspect implements at code level.
    fn concern(&self) -> &str;

    /// The parameter schema; must accept the same `Si` as the paired
    /// transformation ([`crate::ConcernPair`] enforces this at
    /// specialization time by validating once and passing the effective
    /// set to both sides).
    fn parameter_schema(&self) -> ParamSchema;

    /// Produces the concrete aspect CA_Ci for the given (already
    /// validated) parameters.
    ///
    /// # Errors
    /// Returns [`AspectGenError`] when the parameters cannot be turned
    /// into advice (e.g. a pointcut template renders invalid).
    fn specialize(&self, params: &ParamSet) -> Result<Aspect, AspectGenError>;
}

type AdviceFn = dyn Fn(&ParamSet) -> Result<Vec<Advice>, AspectGenError> + Send + Sync;

/// Closure-based [`GenericAspect`] builder.
///
/// ```
/// use comet_aop::{Advice, AdviceKind, parse_pointcut};
/// use comet_aspectgen::AspectBuilder;
/// use comet_codegen::Block;
/// use comet_transform::{ParamSchema, ParamSet, ParamValue};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ga = AspectBuilder::new("logging-aspect", "logging")
///     .schema(ParamSchema::new().string("class", true, None))
///     .advice_fn(|params| {
///         let class = params.str("class")?;
///         let pc = parse_pointcut(&format!("execution({class}.*)"))
///             .map_err(|e| comet_aspectgen::AspectGenError::Pointcut(e.to_string()))?;
///         Ok(vec![Advice::new(AdviceKind::Before, pc, Block::default())])
///     })
///     .build();
/// let ca = ga.specialize(&ParamSet::new().with("class", ParamValue::from("Bank")))?;
/// assert_eq!(ca.advices.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct AspectBuilder {
    name: String,
    concern: String,
    schema: ParamSchema,
    advice_fn: Option<Box<AdviceFn>>,
}

impl AspectBuilder {
    /// Starts a builder.
    pub fn new(name: &str, concern: &str) -> Self {
        AspectBuilder {
            name: name.to_owned(),
            concern: concern.to_owned(),
            schema: ParamSchema::new(),
            advice_fn: None,
        }
    }

    /// Sets the parameter schema.
    pub fn schema(mut self, schema: ParamSchema) -> Self {
        self.schema = schema;
        self
    }

    /// Sets the advice-template function.
    pub fn advice_fn(
        mut self,
        f: impl Fn(&ParamSet) -> Result<Vec<Advice>, AspectGenError> + Send + Sync + 'static,
    ) -> Self {
        self.advice_fn = Some(Box::new(f));
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics when no advice function was provided.
    pub fn build(self) -> Arc<dyn GenericAspect> {
        Arc::new(FnAspect {
            name: self.name,
            concern: self.concern,
            schema: self.schema,
            advice_fn: self.advice_fn.expect("AspectBuilder requires an advice function"),
        })
    }
}

struct FnAspect {
    name: String,
    concern: String,
    schema: ParamSchema,
    advice_fn: Box<AdviceFn>,
}

impl GenericAspect for FnAspect {
    fn name(&self) -> &str {
        &self.name
    }

    fn concern(&self) -> &str {
        &self.concern
    }

    fn parameter_schema(&self) -> ParamSchema {
        self.schema.clone()
    }

    fn specialize(&self, params: &ParamSet) -> Result<Aspect, AspectGenError> {
        let advices = (self.advice_fn)(params)?;
        let mut aspect = Aspect::new(format!("{}{}", self.name, params.angle_signature()));
        aspect.advices = advices;
        Ok(aspect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_aop::{parse_pointcut, AdviceKind};
    use comet_codegen::Block;
    use comet_transform::ParamValue;

    fn ga() -> Arc<dyn GenericAspect> {
        AspectBuilder::new("tx-aspect", "transactions")
            .schema(ParamSchema::new().str_list("methods", true))
            .advice_fn(|params| {
                let mut advices = Vec::new();
                for m in params.str_list("methods")? {
                    let (class, method) = m
                        .split_once('.')
                        .ok_or_else(|| AspectGenError::Custom(format!("bad method `{m}`")))?;
                    let pc = parse_pointcut(&format!("execution({class}.{method})"))
                        .map_err(|e| AspectGenError::Pointcut(e.to_string()))?;
                    advices.push(Advice::new(AdviceKind::Around, pc, Block::default()));
                }
                Ok(advices)
            })
            .build()
    }

    #[test]
    fn specialization_renders_pointcuts_from_params() {
        let ga = ga();
        assert_eq!(ga.concern(), "transactions");
        let si = ParamSet::new().with(
            "methods",
            ParamValue::from(vec!["Bank.transfer".to_owned(), "Account.withdraw".to_owned()]),
        );
        let effective = ga.parameter_schema().validate(&si).unwrap();
        let ca = ga.specialize(&effective).unwrap();
        assert_eq!(ca.advices.len(), 2);
        assert!(ca.name.starts_with("tx-aspect<"));
        assert!(ca.name.contains("Bank.transfer"));
    }

    #[test]
    fn bad_params_reported() {
        let ga = ga();
        let si = ParamSet::new().with("methods", ParamValue::from(vec!["nodot".to_owned()]));
        let effective = ga.parameter_schema().validate(&si).unwrap();
        assert!(matches!(ga.specialize(&effective), Err(AspectGenError::Custom(_))));
    }
}
