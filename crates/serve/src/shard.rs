//! Per-tenant closed-loop scheduler and per-shard execution.
//!
//! # Determinism across shard counts
//!
//! Every tenant is its own little world: a single-server FIFO queue fed
//! by C closed-loop simulated clients, a private `StdRng` derived from
//! the plan seed and the tenant's *global* name (never its shard), and
//! a private sim-time axis starting at 0. Shards merely group tenants
//! for real parallelism — they contribute no state of their own, so the
//! per-tenant outcome is a pure function of `(plan, fault plan, tenant
//! name)`. Reports then aggregate tenants in name order and traces
//! merge in name order, which is why the same seed and plan produce a
//! byte-identical `ServeReport` whether the server runs 1 shard or 8,
//! on 1 weaver thread or 16.
//!
//! # The event loop
//!
//! Sim time advances from event to event:
//!
//! * **Arrival** — a thinking client issues its next request. Admission
//!   control runs first: a full queue rejects with
//!   `ServeError::Overloaded { retry_after_us }` (the attempt is
//!   consumed and the client backs off), so queue memory is bounded by
//!   construction. Admitted requests are drawn from the plan's seeded
//!   mix and join the FIFO.
//! * **Pickup** — when the server is idle and the queue non-empty, the
//!   head is picked up. Requests that out-waited the plan's deadline
//!   are shed here (`DeadlineExceeded`, counted as degraded, client
//!   released). Consecutive read-only `Query` requests at the head are
//!   batched and answered from one engine pass, charged one service
//!   cost. Execution happens at pickup; the service time (plan base
//!   cost + jitter draw + sim time the engine itself consumed, e.g.
//!   latency faults) determines the completion event.
//! * **Completion** — latency is recorded and the batch's clients go
//!   back to thinking. Completions tie-break before arrivals; same-time
//!   arrivals process in client-index order.
//!
//! Engine failures (injected middleware faults surfacing as
//! `ServeError::Engine`) mark that one request `failed` and the loop
//! carries on — a fault degrades a request, never a shard.

use crate::core::RunConfig;
use crate::error::ServeError;
use crate::fnv1a64;
use crate::plan::{SampleMode, WorkloadPlan, DEFAULT_BACKEND};
use crate::report::TenantStats;
use crate::request::{EngineFactory, QuerySelector, Request, TenantEngine};
use comet_metrics::{
    CounterHandle, HistogramHandle, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    SloVerdict, WindowHandle,
};
use comet_obs::{Collector, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Everything one tenant's run produced (plain data; crosses threads).
#[derive(Debug)]
pub(crate) struct TenantOutcome {
    /// Tenant name (`t00`, ...).
    pub tenant: String,
    /// Aggregated per-tenant stats.
    pub stats: TenantStats,
    /// Per-request queue+service latencies, completion order.
    pub latencies: Vec<u64>,
    /// The tenant's trace, when tracing was requested.
    pub trace: Option<Trace>,
    /// The tenant's metrics snapshot, when metrics were requested.
    pub metrics: Option<MetricsSnapshot>,
    /// The tenant's SLO verdict, when the plan carries a policy.
    pub slo: Option<SloVerdict>,
}

/// One client of the closed loop.
struct Client {
    /// When this client next issues (valid while thinking).
    next_us: u64,
    /// Attempts left before the client retires.
    remaining: u64,
    /// True while a request of this client is queued or in service.
    waiting: bool,
}

/// One admitted request waiting in (or leaving) the queue.
struct Queued {
    client: usize,
    req: Request,
    enqueued_us: u64,
}

/// The server's in-service batch (queries) or single request.
struct InService {
    until: u64,
    /// Sim time of pickup (queue-wait boundary for the whole batch).
    started_us: u64,
    batch: Vec<Queued>,
    /// Per-member success flags, aligned with `batch` — carried from
    /// execution (at pickup) to completion so the SLO window can
    /// classify each member at its completion tick.
    oks: Vec<bool>,
}

/// The five request kinds, in [`kind_index`] order.
const KINDS: [&str; 5] = ["apply", "undo", "generate", "query", "snapshot"];

fn kind_index(req: &Request) -> usize {
    match req {
        Request::ApplyConcern { .. } => 0,
        Request::UndoLast => 1,
        Request::Generate { .. } => 2,
        Request::Query(_) => 3,
        Request::Snapshot => 4,
    }
}

/// Pre-registered handles for every series the scheduler records.
/// Registration happens once in `new()`, so the hot path is pure
/// vector indexing (or a single branch when metrics are off).
struct Meters {
    requests: [CounterHandle; 5],
    queue_wait: [HistogramHandle; 5],
    service: [HistogramHandle; 5],
    e2e: [HistogramHandle; 5],
    rejections: CounterHandle,
    sheds: CounterHandle,
    failures: CounterHandle,
    conflicts: CounterHandle,
    trace_kept: CounterHandle,
    trace_dropped: CounterHandle,
    slo_window: WindowHandle,
}

impl Meters {
    fn register(reg: &mut MetricsRegistry, tenant: &str, window_us: u64) -> Meters {
        let per_kind_counter = |reg: &mut MetricsRegistry, name: &str| {
            KINDS.map(|kind| reg.counter(name, &[("tenant", tenant), ("kind", kind)]))
        };
        let per_kind_hist = |reg: &mut MetricsRegistry, name: &str| {
            KINDS.map(|kind| reg.histogram(name, &[("tenant", tenant), ("kind", kind)]))
        };
        let tenant_counter =
            |reg: &mut MetricsRegistry, name: &str| reg.counter(name, &[("tenant", tenant)]);
        Meters {
            requests: per_kind_counter(reg, "comet_serve_requests_total"),
            queue_wait: per_kind_hist(reg, "comet_serve_queue_wait_us"),
            service: per_kind_hist(reg, "comet_serve_service_us"),
            e2e: per_kind_hist(reg, "comet_serve_latency_us"),
            rejections: tenant_counter(reg, "comet_serve_rejections_total"),
            sheds: tenant_counter(reg, "comet_serve_deadline_sheds_total"),
            failures: tenant_counter(reg, "comet_serve_failures_total"),
            conflicts: tenant_counter(reg, "comet_serve_conflicts_total"),
            trace_kept: tenant_counter(reg, "comet_serve_trace_sampled_total"),
            trace_dropped: tenant_counter(reg, "comet_serve_trace_dropped_total"),
            slo_window: reg.window("comet_serve_slo_requests", &[("tenant", tenant)], window_us),
        }
    }
}

pub(crate) struct TenantScheduler<'a, E: TenantEngine> {
    plan: &'a WorkloadPlan,
    tenant: String,
    engine: E,
    obs: Collector,
    rng: StdRng,
    query_pool: Vec<QuerySelector>,
    clients: Vec<Client>,
    queue: VecDeque<Queued>,
    in_service: Option<InService>,
    now: u64,
    /// Applies admitted minus undos admitted — gates `UndoLast` draws.
    planned_depth: u64,
    stats: TenantStats,
    latencies: Vec<u64>,
    hash: u64,
    metrics: MetricsRegistry,
    meters: Meters,
    /// This tenant's SLO latency target (`u64::MAX` without a policy).
    slo_target_us: u64,
    /// Pre-decided `PerTenantHash` verdict: the whole tenant samples
    /// together, decided from its name hash alone.
    sample_tenant_kept: bool,
}

impl<'a, E: TenantEngine> TenantScheduler<'a, E> {
    pub(crate) fn new<F>(plan: &'a WorkloadPlan, tenant: &str, factory: &F, cfg: &RunConfig) -> Self
    where
        F: EngineFactory<Engine = E>,
    {
        let obs = if cfg.traced { Collector::enabled() } else { Collector::disabled() };
        let engine = factory.create(tenant, &obs);
        let clients = (0..plan.clients)
            .map(|_| Client { next_us: 0, remaining: plan.requests, waiting: false })
            .collect();
        // An SLO policy implies metrics: verdicts need the histograms.
        let mut metrics = if cfg.metrics || plan.slo.is_some() {
            MetricsRegistry::enabled()
        } else {
            MetricsRegistry::disabled()
        };
        let window_us = plan.slo.as_ref().map_or(1_000_000, |s| s.window_us);
        let meters = Meters::register(&mut metrics, tenant, window_us);
        let sample_tenant_kept = match plan.sampling {
            SampleMode::PerTenantHash { rate } => {
                // FNV-1a's high bits barely move for short, similar
                // names ("t00".."t07" all share the same top bits), so
                // run the hash through a 64-bit avalanche finalizer
                // before taking the top 53 bits as a uniform draw in
                // [0, 1) — still a pure function of the tenant name.
                let mut h = fnv1a64(tenant.as_bytes());
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
                h ^= h >> 33;
                ((h >> 11) as f64) < rate * (1u64 << 53) as f64
            }
            _ => true,
        };
        TenantScheduler {
            plan,
            tenant: tenant.to_owned(),
            engine,
            obs,
            rng: StdRng::seed_from_u64(plan.seed ^ fnv1a64(tenant.as_bytes())),
            query_pool: factory.query_pool(),
            clients,
            queue: VecDeque::new(),
            in_service: None,
            now: 0,
            planned_depth: 0,
            stats: TenantStats::default(),
            latencies: Vec::new(),
            hash: 0xcbf29ce484222325, // FNV offset basis
            metrics,
            meters,
            slo_target_us: plan.slo.as_ref().map_or(u64::MAX, |s| s.target_for(tenant)),
            sample_tenant_kept,
        }
    }

    /// Runs the tenant to quiescence and returns its outcome.
    pub(crate) fn run(mut self) -> TenantOutcome {
        loop {
            if self.in_service.is_none() && !self.queue.is_empty() {
                self.start_service();
                continue;
            }
            let completion = self.in_service.as_ref().map(|s| s.until);
            let arrival = self
                .clients
                .iter()
                .filter(|c| !c.waiting && c.remaining > 0)
                .map(|c| c.next_us)
                .min();
            match (completion, arrival) {
                (None, None) => break,
                (Some(c), None) => self.complete(c),
                (None, Some(a)) => self.arrivals_at(a),
                // Completions tie-break before same-time arrivals.
                (Some(c), Some(a)) if c <= a => self.complete(c),
                (Some(_), Some(a)) => self.arrivals_at(a),
            }
        }
        self.stats.end_us = self.now;
        self.stats.applied = self.engine.applied();
        self.stats.fault_records = self.engine.fault_log().len() as u64;
        let applied = std::mem::take(&mut self.stats.applied);
        for concern in &applied {
            self.fold(concern.as_bytes());
        }
        self.stats.applied = applied;
        self.stats.outcome_hash = self.hash;
        let metrics = if self.metrics.is_enabled() {
            // Bridge session-level counters into the registry,
            // record-for-record: every middleware fault-log entry and
            // every engine-exposed counter (weave-cache hits, WAL
            // fsyncs, ...) lands in a `comet_serve_*_total` series.
            let tenant = self.tenant.clone();
            let faults =
                self.metrics.counter("comet_serve_fault_injections_total", &[("tenant", &tenant)]);
            self.metrics.add(faults, self.stats.fault_records);
            for (name, value) in self.engine.counters() {
                let series = format!("comet_serve_{name}_total");
                let h = self.metrics.counter(&series, &[("tenant", &tenant)]);
                self.metrics.add(h, value);
            }
            Some(self.metrics.snapshot())
        } else {
            None
        };
        let slo = match (&self.plan.slo, &metrics) {
            (Some(policy), Some(snap)) => {
                // The registry is per-tenant, so every latency series
                // in it is ours: merge the per-kind end-to-end
                // histograms into the tenant's latency distribution.
                let mut latency = HistogramSnapshot::default();
                for (key, h) in &snap.histograms {
                    if key.name == "comet_serve_latency_us" {
                        latency.merge(h);
                    }
                }
                let window = snap
                    .windows
                    .iter()
                    .find(|(key, _)| key.name == "comet_serve_slo_requests")
                    .map(|(_, w)| w);
                Some(policy.evaluate(&self.tenant, &latency, window))
            }
            _ => None,
        };
        TenantOutcome {
            tenant: self.tenant,
            stats: self.stats,
            latencies: self.latencies,
            trace: if self.obs.is_enabled() { Some(self.obs.take()) } else { None },
            metrics,
            slo,
        }
    }

    /// FNV-1a fold of one bookkeeping record into the outcome hash.
    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x100000001b3);
        }
        self.hash ^= 0xff;
        self.hash = self.hash.wrapping_mul(0x100000001b3);
    }

    fn think_jitter(&mut self) -> u64 {
        self.plan.service.think_us + self.rng.gen_range(0..=self.plan.service.jitter_us)
    }

    /// Processes every client arriving at time `at`, in index order.
    fn arrivals_at(&mut self, at: u64) {
        self.now = at;
        for i in 0..self.clients.len() {
            let c = &self.clients[i];
            if c.waiting || c.remaining == 0 || c.next_us != at {
                continue;
            }
            self.issue(i);
        }
    }

    /// One client issues one request (the attempt is consumed either way).
    fn issue(&mut self, client: usize) {
        self.clients[client].remaining -= 1;
        self.stats.issued += 1;
        if self.queue.len() >= self.plan.limits.queue_depth {
            // Admission control: bounded queue, typed backpressure.
            let retry_after_us = self.backlog_estimate_us().max(1);
            let err = ServeError::Overloaded { retry_after_us };
            self.stats.rejected += 1;
            self.fold(format!("reject:{client}@{}:{err}", self.now).as_bytes());
            self.obs.event(
                "serve",
                "serve.reject",
                self.now,
                vec![
                    ("tenant".into(), self.tenant.clone()),
                    ("client".into(), client.to_string()),
                    ("retry_after_us".into(), retry_after_us.to_string()),
                ],
            );
            self.metrics.add(self.meters.rejections, 1);
            self.metrics.record_window(self.meters.slo_window, self.now, false);
            let backoff = retry_after_us + self.think_jitter();
            self.clients[client].next_us = self.now + backoff;
            return;
        }
        let req = self.draw_request();
        self.queue.push_back(Queued { client, req, enqueued_us: self.now });
        self.clients[client].waiting = true;
    }

    /// Honest deterministic backlog estimate backing `retry_after_us`.
    fn backlog_estimate_us(&self) -> u64 {
        let s = &self.plan.service;
        let avg = (s.apply_us + s.undo_us + s.generate_us + s.query_us + s.snapshot_us) / 5;
        let in_service = self.in_service.as_ref().map_or(0, |b| b.until.saturating_sub(self.now));
        in_service + self.queue.len() as u64 * avg
    }

    /// Draws the next request from the plan's seeded mix.
    fn draw_request(&mut self) -> Request {
        let m = &self.plan.mix;
        let x = self.rng.gen::<f64>() * m.total();
        if x < m.apply {
            if let Some(req) = self.engine.next_apply() {
                self.planned_depth += 1;
                return req;
            }
            // Workflow complete: degrade to a read.
            return Request::Query(self.draw_query());
        }
        if x < m.apply + m.undo {
            if self.planned_depth > 0 {
                self.planned_depth -= 1;
                return Request::UndoLast;
            }
            return Request::Query(self.draw_query());
        }
        if x < m.apply + m.undo + m.generate {
            return Request::Generate { backend: self.draw_backend() };
        }
        if x < m.apply + m.undo + m.generate + m.query {
            return Request::Query(self.draw_query());
        }
        Request::Snapshot
    }

    /// The backend a `Generate` draw targets. Without a
    /// `[mix.generate]` section this pins [`DEFAULT_BACKEND`] and
    /// consumes no random number, so pre-factory plans keep their
    /// exact request streams; with one, a secondary weighted draw
    /// walks the backends in plan order.
    fn draw_backend(&mut self) -> String {
        let backends = &self.plan.mix.generate_backends;
        if backends.is_empty() {
            return DEFAULT_BACKEND.to_owned();
        }
        let total: f64 = backends.iter().map(|(_, w)| w).sum();
        let mut x = self.rng.gen::<f64>() * total;
        for (backend, weight) in backends {
            x -= weight;
            if x < 0.0 {
                return backend.clone();
            }
        }
        backends.last().expect("non-empty").0.clone()
    }

    fn draw_query(&mut self) -> QuerySelector {
        if self.query_pool.is_empty() {
            return QuerySelector::Classes;
        }
        let i = self.rng.gen_range(0..self.query_pool.len());
        self.query_pool[i].clone()
    }

    /// Picks up the queue head (shedding expired requests), executes it
    /// — batching consecutive queries — and schedules the completion.
    fn start_service(&mut self) {
        let deadline = self.plan.limits.deadline_us;
        while let Some(head) = self.queue.front() {
            let waited = self.now - head.enqueued_us;
            if deadline == 0 || waited <= deadline {
                break;
            }
            let shed = self.queue.pop_front().expect("head exists");
            let err = ServeError::DeadlineExceeded { waited_us: waited, deadline_us: deadline };
            self.stats.deadline_dropped += 1;
            self.fold(
                format!("shed:{}:{}@{}:{err}", shed.req.kind(), shed.client, self.now).as_bytes(),
            );
            self.obs.event(
                "serve",
                "serve.deadline",
                self.now,
                vec![
                    ("tenant".into(), self.tenant.clone()),
                    ("client".into(), shed.client.to_string()),
                    ("kind".into(), shed.req.kind().to_string()),
                    ("waited_us".into(), waited.to_string()),
                ],
            );
            self.metrics.add(self.meters.sheds, 1);
            self.metrics.record_window(self.meters.slo_window, self.now, false);
            self.release(shed.client);
        }
        let Some(first) = self.queue.pop_front() else { return };
        let mut batch = vec![first];
        if matches!(batch[0].req, Request::Query(_)) {
            while matches!(self.queue.front().map(|q| &q.req), Some(Request::Query(_))) {
                batch.push(self.queue.pop_front().expect("front exists"));
            }
        }
        let base = match &batch[0].req {
            Request::ApplyConcern { .. } => self.plan.service.apply_us,
            Request::UndoLast => self.plan.service.undo_us,
            Request::Generate { .. } => self.plan.service.generate_us,
            // One pass, one service cost — that is the batching win.
            Request::Query(_) => self.plan.service.query_us,
            Request::Snapshot => self.plan.service.snapshot_us,
        };
        let jitter = self.rng.gen_range(0..=self.plan.service.jitter_us);
        // Pickup point: the queue-wait of every batch member ends here.
        let started_us = self.now;
        for q in &batch {
            self.metrics
                .observe(self.meters.queue_wait[kind_index(&q.req)], started_us - q.enqueued_us);
        }
        let (until, oks) = self.execute(&batch, base + jitter);
        self.in_service = Some(InService { until, started_us, batch, oks });
    }

    /// Executes the batch under `serve.request` spans and returns the
    /// completion time plus per-member success flags. Outcomes are
    /// carried as display text — `Err` holds the rendered `ServeError`
    /// — since the scheduler only counts, hashes, and tags them.
    ///
    /// The sampling decision also lives here: the engine runs at
    /// pickup, so by the end of this method the batch's outcome,
    /// fault-log growth and completion latency are all known — exactly
    /// what tail-based sampling needs to decide keep-or-discard while
    /// the speculative span region is still the newest thing in the
    /// collector (interleaved arrival events come later and must not
    /// be truncated with it).
    fn execute(&mut self, batch: &[Queued], sched_cost: u64) -> (u64, Vec<bool>) {
        let mark = if self.obs.is_enabled() && !matches!(self.plan.sampling, SampleMode::Always) {
            Some(self.obs.mark())
        } else {
            None
        };
        let faults_before = if matches!(self.plan.sampling, SampleMode::TailOnError) {
            self.engine.fault_log().len()
        } else {
            0
        };
        self.engine.take_service_us(); // discard pre-request drift
        let outcomes: Vec<Result<String, String>> = if let Request::Query(_) = &batch[0].req {
            let selectors: Vec<QuerySelector> = batch
                .iter()
                .map(|q| match &q.req {
                    Request::Query(sel) => sel.clone(),
                    other => unreachable!("query batch holds {other}"),
                })
                .collect();
            if batch.len() > 1 {
                self.stats.batches += 1;
                self.stats.batched_queries += batch.len() as u64;
            }
            let span = self.begin_request_span(&batch[0], batch.len());
            let outs: Vec<Result<String, String>> =
                match self.engine.execute_queries(&selectors, &self.obs) {
                    Ok(counts) => counts.iter().map(|n| Ok(format!("ok:{n}"))).collect(),
                    // One failed pass degrades the whole batch —
                    // every member is a read, none saw bad data.
                    Err(err) => {
                        let text = err.to_string();
                        batch.iter().map(|_| Err(text.clone())).collect()
                    }
                };
            self.end_request_span(span, outs.first());
            // Batch members beyond the head get their own
            // (zero-length) request spans for provenance.
            for (q, out) in batch.iter().zip(&outs).skip(1) {
                let s = self.begin_request_span(q, batch.len());
                self.end_request_span(s, Some(out));
            }
            outs
        } else {
            let span = self.begin_request_span(&batch[0], 1);
            let result = match self.engine.execute(&batch[0].req, &self.obs) {
                Ok(token) => Ok(token),
                Err(err) => {
                    // Count typed admission-gate rejections before the
                    // error degrades to display text for hashing.
                    if let ServeError::Conflict { .. } = err {
                        self.stats.conflicts += 1;
                        self.metrics.add(self.meters.conflicts, 1);
                    }
                    Err(err.to_string())
                }
            };
            self.end_request_span(span, Some(&result));
            vec![result]
        };
        for (q, out) in batch.iter().zip(&outcomes) {
            match out {
                Ok(token) => {
                    self.stats.ok += 1;
                    self.fold(
                        format!("ok:{}:{}@{}:{token}", q.req.kind(), q.client, self.now).as_bytes(),
                    );
                }
                Err(err) => {
                    self.stats.failed += 1;
                    self.metrics.add(self.meters.failures, 1);
                    self.fold(
                        format!("fail:{}:{}@{}:{err}", q.req.kind(), q.client, self.now).as_bytes(),
                    );
                }
            }
        }
        let until = self.now + sched_cost + self.engine.take_service_us();
        if let Some(mark) = mark {
            let keep = match self.plan.sampling {
                SampleMode::Always => true,
                SampleMode::Never => false,
                SampleMode::PerTenantHash { .. } => self.sample_tenant_kept,
                SampleMode::TailOnError => {
                    let any_err = outcomes.iter().any(Result::is_err);
                    let faulted = self.engine.fault_log().len() > faults_before;
                    let breach = batch.iter().any(|q| until - q.enqueued_us > self.slo_target_us);
                    any_err || faulted || breach
                }
            };
            if keep {
                self.metrics.add(self.meters.trace_kept, 1);
            } else {
                self.obs.discard_to(mark);
                self.metrics.add(self.meters.trace_dropped, 1);
            }
        }
        (until, outcomes.iter().map(Result::is_ok).collect())
    }

    fn begin_request_span(&mut self, q: &Queued, batch_len: usize) -> comet_obs::SpanId {
        let span = self.obs.begin_span("serve", "serve.request", self.now);
        if self.obs.is_enabled() {
            self.obs.span_attr(span, "tenant", &self.tenant);
            self.obs.span_attr(span, "kind", q.req.kind());
            self.obs.span_attr(span, "client", &q.client.to_string());
            if batch_len > 1 {
                self.obs.span_attr(span, "batch", &batch_len.to_string());
            }
        }
        span
    }

    fn end_request_span(
        &mut self,
        span: comet_obs::SpanId,
        outcome: Option<&Result<String, String>>,
    ) {
        if self.obs.is_enabled() {
            let text = match outcome {
                Some(Ok(token)) => token.clone(),
                Some(Err(err)) => format!("error:{err}"),
                None => "unknown".to_owned(),
            };
            self.obs.span_attr(span, "outcome", &text);
        }
        self.obs.end_span(span, self.now);
    }

    /// The in-service batch finishes at `at`.
    fn complete(&mut self, at: u64) {
        self.now = at;
        let done = self.in_service.take().expect("completion without service");
        for (q, &ok) in done.batch.iter().zip(&done.oks) {
            self.stats.completed += 1;
            let e2e = at - q.enqueued_us;
            self.latencies.push(e2e);
            let kind = kind_index(&q.req);
            self.metrics.add(self.meters.requests[kind], 1);
            self.metrics.observe(self.meters.service[kind], at - done.started_us);
            self.metrics.observe(self.meters.e2e[kind], e2e);
            // SLO accounting: a request is "good" only if it succeeded
            // AND met the tenant's latency target.
            self.metrics.record_window(self.meters.slo_window, at, ok && e2e <= self.slo_target_us);
            self.release(q.client);
        }
        self.obs.incr("serve.completed", done.batch.len() as u64);
    }

    /// Returns a client to thinking; its next issue is jittered.
    fn release(&mut self, client: usize) {
        let think = self.think_jitter();
        let c = &mut self.clients[client];
        c.waiting = false;
        c.next_us = self.now + think;
    }
}

/// Runs every tenant of one shard sequentially on the calling (rayon
/// worker) thread. Engines are created here precisely because they may
/// be `!Send` — nothing but the plain-data outcomes leaves this call.
pub(crate) fn run_shard<F: EngineFactory>(
    plan: &WorkloadPlan,
    tenants: &[String],
    factory: &F,
    cfg: &RunConfig,
) -> Vec<TenantOutcome> {
    tenants.iter().map(|t| TenantScheduler::new(plan, t, factory, cfg).run()).collect()
}
