//! The server: tenant→shard routing and the parallel run loop.

use crate::error::ServeError;
use crate::fnv1a64;
use crate::plan::WorkloadPlan;
use crate::report::ServeReport;
use crate::request::EngineFactory;
use crate::shard::{run_shard, TenantOutcome};
use comet_obs::Trace;
use rayon::prelude::*;

/// What a run produces: the byte-comparable report, plus the merged
/// trace when tracing was requested.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The shard-count-invariant report.
    pub report: ServeReport,
    /// Per-tenant traces merged in tenant order, if tracing was on.
    pub trace: Option<Trace>,
}

/// A sharded multi-tenant transformation server.
///
/// The core owns nothing but the routing decision: tenants hash to
/// shards by FNV-1a of their name, each shard runs its tenants on one
/// rayon worker (sessions are constructed inside the worker because
/// middleware state is `!Send`), and per-tenant outcomes — plain data —
/// come back to be folded in tenant-name order. Since tenants share no
/// state and the fold is order-canonical, the shard count is purely a
/// parallelism knob: it changes wall time, never a byte of the report
/// or trace.
pub struct ServerCore<'a, F: EngineFactory> {
    plan: &'a WorkloadPlan,
    factory: &'a F,
    shards: usize,
}

impl<'a, F: EngineFactory> ServerCore<'a, F> {
    /// Builds a server over a validated plan.
    ///
    /// # Errors
    /// Returns `ServeError::Plan` when the plan is not runnable; a
    /// shard count of 0 is rounded up to 1.
    pub fn new(plan: &'a WorkloadPlan, factory: &'a F, shards: usize) -> Result<Self, ServeError> {
        plan.validate()?;
        Ok(ServerCore { plan, factory, shards: shards.max(1) })
    }

    /// The shard that owns `tenant`.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (fnv1a64(tenant.as_bytes()) % self.shards as u64) as usize
    }

    /// Runs the whole workload to quiescence; shards execute in
    /// parallel. `traced` turns on per-request span collection.
    pub fn run(&self, traced: bool) -> ServeOutcome {
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); self.shards];
        for tenant in self.plan.tenant_names() {
            let shard = self.shard_of(&tenant);
            groups[shard].push(tenant);
        }
        let per_shard: Vec<Vec<TenantOutcome>> = groups
            .par_iter()
            .map(|tenants| run_shard(self.plan, tenants, self.factory, traced))
            .collect();
        let mut outcomes: Vec<TenantOutcome> = per_shard.into_iter().flatten().collect();
        // Canonical order: by tenant name, independent of grouping.
        outcomes.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let report = ServeReport::assemble(&outcomes);
        let trace = if traced {
            let traces: Vec<Trace> = outcomes.into_iter().filter_map(|o| o.trace).collect();
            Some(Trace::merge(&traces))
        } else {
            None
        };
        ServeOutcome { report, trace }
    }
}
