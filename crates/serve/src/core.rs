//! The server: tenant→shard routing and the parallel run loop.

use crate::error::ServeError;
use crate::fnv1a64;
use crate::plan::WorkloadPlan;
use crate::report::ServeReport;
use crate::request::EngineFactory;
use crate::shard::{run_shard, TenantOutcome};
use comet_metrics::MetricsSnapshot;
use comet_obs::Trace;
use rayon::prelude::*;

/// Per-run switches that are not part of the workload plan: what to
/// collect, not what to do. Both default to off; an `[slo]` section in
/// the plan turns metrics on regardless, since verdicts need the
/// histograms.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Collect per-request span trees.
    pub traced: bool,
    /// Collect counters/histograms/windows into a `MetricsSnapshot`.
    pub metrics: bool,
}

/// What a run produces: the byte-comparable report, plus the merged
/// trace when tracing was requested and the merged metrics snapshot
/// when metrics were requested (or implied by an SLO policy).
#[derive(Debug)]
pub struct ServeOutcome {
    /// The shard-count-invariant report.
    pub report: ServeReport,
    /// Per-tenant traces merged in tenant order, if tracing was on.
    pub trace: Option<Trace>,
    /// Per-tenant metrics merged in tenant order, if metrics were on.
    pub metrics: Option<MetricsSnapshot>,
}

/// A sharded multi-tenant transformation server.
///
/// The core owns nothing but the routing decision: tenants hash to
/// shards by FNV-1a of their name, each shard runs its tenants on one
/// rayon worker (sessions are constructed inside the worker because
/// middleware state is `!Send`), and per-tenant outcomes — plain data —
/// come back to be folded in tenant-name order. Since tenants share no
/// state and the fold is order-canonical, the shard count is purely a
/// parallelism knob: it changes wall time, never a byte of the report,
/// trace, or metrics snapshot.
pub struct ServerCore<'a, F: EngineFactory> {
    plan: &'a WorkloadPlan,
    factory: &'a F,
    shards: usize,
}

impl<'a, F: EngineFactory> ServerCore<'a, F> {
    /// Builds a server over a validated plan.
    ///
    /// # Errors
    /// Returns `ServeError::Plan` when the plan is not runnable; a
    /// shard count of 0 is rounded up to 1.
    pub fn new(plan: &'a WorkloadPlan, factory: &'a F, shards: usize) -> Result<Self, ServeError> {
        plan.validate()?;
        Ok(ServerCore { plan, factory, shards: shards.max(1) })
    }

    /// The shard that owns `tenant`.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (fnv1a64(tenant.as_bytes()) % self.shards as u64) as usize
    }

    /// Runs the whole workload to quiescence; shards execute in
    /// parallel. `traced` turns on per-request span collection.
    pub fn run(&self, traced: bool) -> ServeOutcome {
        self.run_with(&RunConfig { traced, metrics: false })
    }

    /// Runs the whole workload to quiescence with explicit collection
    /// switches; shards execute in parallel.
    pub fn run_with(&self, cfg: &RunConfig) -> ServeOutcome {
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); self.shards];
        for tenant in self.plan.tenant_names() {
            let shard = self.shard_of(&tenant);
            groups[shard].push(tenant);
        }
        let per_shard: Vec<Vec<TenantOutcome>> = groups
            .par_iter()
            .map(|tenants| run_shard(self.plan, tenants, self.factory, cfg))
            .collect();
        let mut outcomes: Vec<TenantOutcome> = per_shard.into_iter().flatten().collect();
        // Canonical order: by tenant name, independent of grouping.
        outcomes.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let report = ServeReport::assemble(&outcomes);
        // Fold metrics in tenant order; the snapshot merge is
        // commutative anyway, but the canonical order keeps this
        // honest-by-construction.
        let mut metrics: Option<MetricsSnapshot> = None;
        for o in &outcomes {
            if let Some(m) = &o.metrics {
                metrics.get_or_insert_with(MetricsSnapshot::default).merge(m);
            }
        }
        let trace = if cfg.traced {
            let traces: Vec<Trace> = outcomes.into_iter().filter_map(|o| o.trace).collect();
            Some(Trace::merge(&traces))
        } else {
            None
        };
        ServeOutcome { report, trace, metrics }
    }
}
