//! The deterministic run report.
//!
//! A [`ServeReport`] is the byte-comparable artefact of a serving run:
//! same seed + same workload plan (+ same fault plan) must render the
//! identical report regardless of how many shards or weaver threads
//! executed it. To that end every field is derived from per-tenant
//! outcomes in ways that cannot observe the grouping: tenants aggregate
//! in name order (a `BTreeMap`), latency percentiles are computed over
//! the globally sorted latency multiset, the makespan is the max over
//! per-tenant end times, and — deliberately — the shard count itself
//! appears nowhere in the report.

use crate::shard::TenantOutcome;
use comet_metrics::SloVerdict;
use std::collections::BTreeMap;
use std::fmt;

/// Per-tenant aggregate, part of [`ServeReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests the tenant's clients attempted (incl. rejected).
    pub issued: u64,
    /// Requests that ran to completion (`ok` + `failed`).
    pub completed: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests rejected at admission (`Overloaded`).
    pub rejected: u64,
    /// Requests shed at pickup (`DeadlineExceeded`).
    pub deadline_dropped: u64,
    /// Requests degraded by an engine failure (injected faults etc.).
    pub failed: u64,
    /// Apply requests rejected by the interaction admission gate
    /// (`ServeError::Conflict`); a subset of `failed`.
    pub conflicts: u64,
    /// Multi-request query batches executed.
    pub batches: u64,
    /// Queries answered inside those batches.
    pub batched_queries: u64,
    /// Applied concerns in application order (§3 precedence).
    pub applied: Vec<String>,
    /// Middleware fault-log records for this tenant's session.
    pub fault_records: u64,
    /// FNV-1a fold of every per-request outcome — cheap divergence
    /// detector between runs that "look" equal.
    pub outcome_hash: u64,
    /// Sim time at which the tenant went quiescent.
    pub end_us: u64,
}

/// The aggregated, shard-count-invariant result of a serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Total requests attempted.
    pub issued: u64,
    /// Total requests completed (`ok` + `failed`).
    pub completed: u64,
    /// Total successful requests.
    pub ok: u64,
    /// Total admission rejections.
    pub rejected: u64,
    /// Total deadline sheds.
    pub deadline_dropped: u64,
    /// Total engine-degraded requests.
    pub failed: u64,
    /// Total conflict rejections (subset of `failed`).
    pub conflicts: u64,
    /// Total multi-request query batches.
    pub batches: u64,
    /// Total queries answered in batches.
    pub batched_queries: u64,
    /// Median request latency (queue + service), sim-µs.
    pub p50_us: u64,
    /// 99th-percentile request latency, sim-µs.
    pub p99_us: u64,
    /// Max per-tenant quiescence time, sim-µs.
    pub makespan_us: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Per-tenant breakdown, in tenant-name order.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Per-tenant SLO verdicts, in tenant-name order; empty when the
    /// plan declares no `[slo]` policy, which keeps the rendered report
    /// byte-identical to pre-SLO runs.
    pub slo: BTreeMap<String, SloVerdict>,
}

/// Nearest-rank percentile over a sorted slice; 0 when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeReport {
    /// Folds per-tenant outcomes (any order) into the canonical report.
    pub(crate) fn assemble(outcomes: &[TenantOutcome]) -> ServeReport {
        let mut report = ServeReport::default();
        let mut latencies: Vec<u64> = Vec::new();
        for out in outcomes {
            let s = &out.stats;
            report.issued += s.issued;
            report.completed += s.completed;
            report.ok += s.ok;
            report.rejected += s.rejected;
            report.deadline_dropped += s.deadline_dropped;
            report.failed += s.failed;
            report.conflicts += s.conflicts;
            report.batches += s.batches;
            report.batched_queries += s.batched_queries;
            report.makespan_us = report.makespan_us.max(s.end_us);
            latencies.extend_from_slice(&out.latencies);
            report.tenants.insert(out.tenant.clone(), s.clone());
            if let Some(v) = &out.slo {
                report.slo.insert(out.tenant.clone(), v.clone());
            }
        }
        latencies.sort_unstable();
        report.p50_us = percentile(&latencies, 50.0);
        report.p99_us = percentile(&latencies, 99.0);
        report.throughput_rps = if report.makespan_us == 0 {
            0.0
        } else {
            report.completed as f64 * 1_000_000.0 / report.makespan_us as f64
        };
        report
    }

    /// True when any tenant's SLO verdict is a breach.
    pub fn slo_breached(&self) -> bool {
        self.slo.values().any(|v| v.breached)
    }

    /// Stable JSON rendering (fixed 6-decimal floats — byte-comparable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"issued\": {},\n", self.issued));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"ok\": {},\n", self.ok));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"deadline_dropped\": {},\n", self.deadline_dropped));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"conflicts\": {},\n", self.conflicts));
        out.push_str(&format!("  \"batches\": {},\n", self.batches));
        out.push_str(&format!("  \"batched_queries\": {},\n", self.batched_queries));
        out.push_str(&format!("  \"p50_us\": {},\n", self.p50_us));
        out.push_str(&format!("  \"p99_us\": {},\n", self.p99_us));
        out.push_str(&format!("  \"makespan_us\": {},\n", self.makespan_us));
        out.push_str(&format!("  \"throughput_rps\": {:.6},\n", self.throughput_rps));
        if !self.slo.is_empty() {
            out.push_str("  \"slo\": {\n");
            let last = self.slo.len().saturating_sub(1);
            for (i, (name, v)) in self.slo.iter().enumerate() {
                out.push_str(&format!(
                    "    \"{name}\": {{\"percentile\": {:.1}, \"observed_us\": {}, \
                     \"target_us\": {}, \"total\": {}, \"bad\": {}, \
                     \"max_burn_milli\": {}, \"breached\": {}}}{}\n",
                    v.percentile,
                    v.observed_us,
                    v.target_us,
                    v.total,
                    v.bad,
                    v.max_burn_milli,
                    v.breached,
                    if i == last { "" } else { "," },
                ));
            }
            out.push_str("  },\n");
        }
        out.push_str("  \"tenants\": {\n");
        let last = self.tenants.len().saturating_sub(1);
        for (i, (name, t)) in self.tenants.iter().enumerate() {
            let applied: Vec<String> = t.applied.iter().map(|c| format!("\"{c}\"")).collect();
            out.push_str(&format!(
                "    \"{name}\": {{\"issued\": {}, \"completed\": {}, \"ok\": {}, \
                 \"rejected\": {}, \"deadline_dropped\": {}, \"failed\": {}, \
                 \"conflicts\": {}, \"applied\": [{}], \"fault_records\": {}, \
                 \"outcome_hash\": \"{:016x}\", \"end_us\": {}}}{}\n",
                t.issued,
                t.completed,
                t.ok,
                t.rejected,
                t.deadline_dropped,
                t.failed,
                t.conflicts,
                applied.join(", "),
                t.fault_records,
                t.outcome_hash,
                t.end_us,
                if i == last { "" } else { "," },
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} issued, {} completed ({} ok, {} failed), {} rejected, {} shed, \
             {} conflicts",
            self.issued,
            self.completed,
            self.ok,
            self.failed,
            self.rejected,
            self.deadline_dropped,
            self.conflicts
        )?;
        writeln!(
            f,
            "  latency p50 {}µs p99 {}µs · makespan {}µs · {:.1} req/s · {} batches ({} queries)",
            self.p50_us,
            self.p99_us,
            self.makespan_us,
            self.throughput_rps,
            self.batches,
            self.batched_queries
        )?;
        for (name, t) in &self.tenants {
            writeln!(
                f,
                "  {name}: {}/{} ok, {} rejected, {} shed, {} failed ({} conflicts), \
                 {} faults, applied [{}], hash {:016x}",
                t.ok,
                t.issued,
                t.rejected,
                t.deadline_dropped,
                t.failed,
                t.conflicts,
                t.fault_records,
                t.applied.join(", "),
                t.outcome_hash
            )?;
        }
        for v in self.slo.values() {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [10, 20, 30, 40];
        assert_eq!(percentile(&v, 50.0), 20);
        assert_eq!(percentile(&v, 99.0), 40);
        assert_eq!(percentile(&v, 100.0), 40);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
    }
}
