//! Seeded workload description for the serving harness.
//!
//! A [`WorkloadPlan`] is to the serving layer what `FaultPlan` is to the
//! middleware: a small, seeded, declarative description of *what the
//! world does to the system*, parsed from the same hand-rolled TOML
//! subset (`key = value` lines, `[section]` headers, `#` comments — no
//! TOML dependency). The plan fixes the tenant/client population, the
//! closed-loop request mix, the admission limits, and the simulated
//! service costs; together with the seed it fully determines every
//! request the simulated clients will ever issue, which is what makes
//! `ServeReport`s byte-comparable across shard and thread counts.

use std::fmt;

use comet_metrics::SloPolicy;

/// Errors from [`WorkloadPlan::parse_toml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadPlanError {
    /// A line that is neither `key = value`, a section header, a
    /// comment, nor blank — or a key unknown in its section.
    BadLine(String),
    /// A value that failed to parse as the expected number.
    BadValue(String),
    /// A plan whose numbers cannot describe a runnable workload
    /// (zero tenants, zero clients, an all-zero request mix, ...).
    Invalid(String),
    /// A key or section header appeared twice. The payload is the key
    /// (or `[section]`) as written; the message format is shared
    /// verbatim with the fault-plan parser in `comet-middleware`.
    Duplicate(String),
    /// A `[workflow]` step named a concern no registered `ConcernPair`
    /// provides (checked via
    /// [`validate_concerns`](WorkloadPlan::validate_concerns)).
    UnknownConcern(String),
    /// A `[mix.generate]` entry named a backend the host's generator
    /// factory does not register (checked via
    /// [`validate_backends`](WorkloadPlan::validate_backends)).
    UnknownBackend(String),
    /// A planned concern exists but its serving binding is unusable.
    BadConcern {
        /// The concern as named by the plan.
        concern: String,
        /// Why the binding cannot serve.
        detail: String,
    },
}

impl fmt::Display for WorkloadPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadPlanError::BadLine(l) => write!(f, "unparseable plan line `{l}`"),
            WorkloadPlanError::BadValue(v) => write!(f, "bad numeric value `{v}`"),
            WorkloadPlanError::Invalid(why) => write!(f, "invalid plan: {why}"),
            WorkloadPlanError::Duplicate(k) => write!(f, "duplicate plan entry `{k}`"),
            WorkloadPlanError::UnknownConcern(c) => {
                write!(f, "workflow step names unknown concern `{c}`")
            }
            WorkloadPlanError::UnknownBackend(b) => {
                write!(f, "generate mix names unknown backend `{b}`")
            }
            WorkloadPlanError::BadConcern { concern, detail } => {
                write!(f, "workflow step `{concern}` cannot serve: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadPlanError {}

/// The backend a `Generate` request targets when the plan has no
/// `[mix.generate]` section. This is the pre-factory behaviour — the
/// Java functional target every earlier serving plan exercised.
pub const DEFAULT_BACKEND: &str = "java-functional";

/// Relative weights of the five request kinds in the generated stream.
///
/// Weights are relative, not probabilities — they are normalised over
/// their sum when a client draws its next request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMix {
    /// Weight of `ApplyConcern` requests.
    pub apply: f64,
    /// Weight of `UndoLast` requests.
    pub undo: f64,
    /// Weight of `Generate` requests.
    pub generate: f64,
    /// Weight of read-only `Query` requests (batchable).
    pub query: f64,
    /// Weight of `Snapshot` requests.
    pub snapshot: f64,
    /// Relative weights of the generation backends a `Generate`
    /// request targets, from the `[mix.generate]` section (key =
    /// backend id, value = weight). Empty means every `Generate` uses
    /// [`DEFAULT_BACKEND`] and the workload generator draws no extra
    /// random number — existing plans keep their exact request
    /// streams. Order is the plan's textual order, which the secondary
    /// weighted draw walks deterministically.
    pub generate_backends: Vec<(String, f64)>,
}

impl RequestMix {
    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.apply + self.undo + self.generate + self.query + self.snapshot
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix {
            apply: 0.25,
            undo: 0.05,
            generate: 0.10,
            query: 0.50,
            snapshot: 0.10,
            generate_backends: Vec::new(),
        }
    }
}

/// Admission-control limits applied per tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Bounded ingress queue depth; an arrival beyond this is rejected
    /// with `ServeError::Overloaded`.
    pub queue_depth: usize,
    /// Per-request queueing deadline in sim-µs; `0` disables deadline
    /// shedding.
    pub deadline_us: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { queue_depth: 4, deadline_us: 0 }
    }
}

/// Simulated service costs (sim-µs) charged by the scheduler, on top of
/// whatever sim time the engine itself consumes (e.g. middleware
/// latency faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCosts {
    /// Client think time between a completion and the next issue.
    pub think_us: u64,
    /// Max uniform jitter added to each service and think time.
    pub jitter_us: u64,
    /// Base cost of `ApplyConcern`.
    pub apply_us: u64,
    /// Base cost of `UndoLast`.
    pub undo_us: u64,
    /// Base cost of `Generate`.
    pub generate_us: u64,
    /// Base cost of one `Query` batch (batching amortises this).
    pub query_us: u64,
    /// Base cost of `Snapshot`.
    pub snapshot_us: u64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        ServiceCosts {
            think_us: 300,
            jitter_us: 50,
            apply_us: 900,
            undo_us: 250,
            generate_us: 1500,
            query_us: 120,
            snapshot_us: 400,
        }
    }
}

/// When the scheduler keeps a request's recorded span tree.
///
/// Sampling is decided from plan data alone (tenant-name hash, request
/// outcome, SLO target), never from wall clocks or global state, so
/// the sampled trace for a given seed + plan is byte-identical at any
/// shard count — and always a subset of the `Always` trace's spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleMode {
    /// Keep every request's spans (the default; full fidelity).
    Always,
    /// Record no per-request spans (scheduler events still fire).
    Never,
    /// Keep all requests of tenants whose FNV-1a name hash falls under
    /// `rate` (0.0 ..= 1.0); whole tenants sample together so a kept
    /// tenant's trace is complete, not request-diced.
    PerTenantHash {
        /// Fraction of tenants to keep.
        rate: f64,
    },
    /// Tail-based sampling: keep a request's spans only when it
    /// failed, was injected with a fault, or missed its SLO latency
    /// target — every interesting request keeps its full span tree,
    /// everything healthy is discarded.
    TailOnError,
}

/// A complete, seeded workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// Master seed; every per-tenant RNG derives from it.
    pub seed: u64,
    /// Number of tenants (`t00`, `t01`, ...).
    pub tenants: usize,
    /// Closed-loop clients per tenant.
    pub clients: usize,
    /// Requests each client attempts before retiring (rejections count
    /// as attempts — the workload is bounded even under overload).
    pub requests: u64,
    /// Request-kind weights.
    pub mix: RequestMix,
    /// Per-tenant admission limits.
    pub limits: Limits,
    /// Simulated service costs.
    pub service: ServiceCosts,
    /// Concern steps each tenant's workflow plans, in order. Empty
    /// means "use the engine's default workflow"; names are validated
    /// against the concern registry via
    /// [`validate_concerns`](WorkloadPlan::validate_concerns).
    pub workflow: Vec<String>,
    /// Optional SLO policy from the `[slo]` / `[slo.tenants]`
    /// sections. When present, metrics collection is implied and the
    /// `ServeReport` carries per-tenant `SloVerdict`s.
    pub slo: Option<SloPolicy>,
    /// Trace-sampling mode from the `[sampling]` section.
    pub sampling: SampleMode,
}

impl Default for WorkloadPlan {
    fn default() -> Self {
        WorkloadPlan {
            seed: 7,
            tenants: 4,
            clients: 2,
            requests: 8,
            mix: RequestMix::default(),
            limits: Limits::default(),
            service: ServiceCosts::default(),
            workflow: Vec::new(),
            slo: None,
            sampling: SampleMode::Always,
        }
    }
}

impl WorkloadPlan {
    /// A default plan re-seeded with `seed`.
    pub fn new(seed: u64) -> WorkloadPlan {
        WorkloadPlan { seed, ..WorkloadPlan::default() }
    }

    /// The canonical zero-padded tenant names, `t00` .. `tNN`.
    pub fn tenant_names(&self) -> Vec<String> {
        (0..self.tenants).map(|i| format!("t{i:02}")).collect()
    }

    /// Validates that the plan describes a runnable workload.
    ///
    /// # Errors
    /// Returns [`WorkloadPlanError::Invalid`] naming the first problem.
    pub fn validate(&self) -> Result<(), WorkloadPlanError> {
        let invalid = |why: &str| Err(WorkloadPlanError::Invalid(why.to_owned()));
        if self.tenants == 0 {
            return invalid("tenants must be >= 1");
        }
        if self.clients == 0 {
            return invalid("clients must be >= 1");
        }
        if self.requests == 0 {
            return invalid("requests must be >= 1");
        }
        if self.limits.queue_depth == 0 {
            return invalid("queue_depth must be >= 1");
        }
        let total = self.mix.total();
        if !total.is_finite() || total <= 0.0 {
            return invalid("request mix weights must sum to a positive finite value");
        }
        if !self.mix.generate_backends.is_empty() {
            let backend_total: f64 = self.mix.generate_backends.iter().map(|(_, w)| w).sum();
            if !backend_total.is_finite() || backend_total <= 0.0 {
                return invalid("generate backend weights must sum to a positive finite value");
            }
        }
        if let Some(slo) = &self.slo {
            if !(slo.percentile > 0.0 && slo.percentile <= 100.0) {
                return invalid("slo percentile must be in (0, 100]");
            }
            if !(slo.error_budget > 0.0 && slo.error_budget <= 1.0) {
                return invalid("slo error_budget must be in (0, 1]");
            }
            if slo.window_us == 0 {
                return invalid("slo window_us must be >= 1");
            }
        }
        if let SampleMode::PerTenantHash { rate } = self.sampling {
            if !(0.0..=1.0).contains(&rate) {
                return invalid("sampling rate must be in [0, 1]");
            }
        }
        Ok(())
    }

    /// Checks every `[workflow]` step against the concern registry.
    ///
    /// The substrate does not depend on `comet-concerns`, so callers
    /// inject the registry as a predicate (`comet::run_banking_serve`
    /// passes `|c| by_name(c).is_some()`). Rejecting unknown names here
    /// — at plan-parse/admission time — keeps a typo from surfacing as
    /// a per-request engine failure deep inside a serving run.
    ///
    /// # Errors
    /// Returns [`WorkloadPlanError::UnknownConcern`] naming the first
    /// step no registered `ConcernPair` provides.
    pub fn validate_concerns(
        &self,
        is_known: impl Fn(&str) -> bool,
    ) -> Result<(), WorkloadPlanError> {
        for step in &self.workflow {
            if !is_known(step) {
                return Err(WorkloadPlanError::UnknownConcern(step.clone()));
            }
        }
        Ok(())
    }

    /// Checks every `[mix.generate]` backend against the host's
    /// generator registry — the same injected-predicate pattern as
    /// [`validate_concerns`](WorkloadPlan::validate_concerns), and for
    /// the same reason: the substrate does not depend on `comet-gen`,
    /// so `comet::run_banking_serve` passes
    /// `|b| comet_gen::Backend::parse(b).is_some()`. Rejecting a typo
    /// here keeps it from surfacing as a per-request
    /// `ServeError::UnknownBackend` deep inside a serving run.
    ///
    /// # Errors
    /// Returns [`WorkloadPlanError::UnknownBackend`] naming the first
    /// backend the registry does not know.
    pub fn validate_backends(
        &self,
        is_known: impl Fn(&str) -> bool,
    ) -> Result<(), WorkloadPlanError> {
        for (backend, _) in &self.mix.generate_backends {
            if !is_known(backend) {
                return Err(WorkloadPlanError::UnknownBackend(backend.clone()));
            }
        }
        Ok(())
    }

    /// Parses the TOML-subset plan format (mirrors `FaultPlan`):
    ///
    /// ```toml
    /// seed = 7
    /// tenants = 4
    /// clients = 2
    /// requests = 8
    ///
    /// [mix]
    /// apply = 0.25
    /// undo = 0.05
    /// generate = 0.10
    /// query = 0.50
    /// snapshot = 0.10
    ///
    /// [mix.generate]            # backend weights for Generate draws
    /// java-functional = 2.0     # omit the section to pin the default
    /// rust-skeleton = 1.0       # backend with no extra RNG draw
    ///
    /// [limits]
    /// queue_depth = 4
    /// deadline_us = 0
    ///
    /// [service]
    /// think_us = 300
    /// jitter_us = 50
    /// apply_us = 900
    /// undo_us = 250
    /// generate_us = 1500
    /// query_us = 120
    /// snapshot_us = 400
    ///
    /// [workflow]
    /// steps = "distribution, transactions, security"
    ///
    /// [slo]
    /// percentile = 99.0
    /// target_us = 50000
    /// error_budget = 0.01
    /// window_us = 1000000
    ///
    /// [slo.tenants]
    /// t00 = 20000
    ///
    /// [sampling]
    /// mode = "tail-on-error"   # always | never | per-tenant-hash | tail-on-error
    /// rate = 0.0625            # per-tenant-hash keep fraction
    /// ```
    ///
    /// Unspecified keys keep their defaults; the parsed plan is
    /// [`validate`](WorkloadPlan::validate)d before being returned.
    /// Duplicate keys, repeated section headers, and trailing garbage
    /// after a header are rejected (same rules and messages as
    /// `FaultPlan::parse_toml` in `comet-middleware`).
    ///
    /// # Errors
    /// Returns a [`WorkloadPlanError`] describing the first bad line.
    pub fn parse_toml(text: &str) -> Result<WorkloadPlan, WorkloadPlanError> {
        let mut plan = WorkloadPlan::default();
        let mut section = String::new();
        // `[sampling]` keys may arrive in any order; combined at the end.
        let mut sampling_mode: Option<String> = None;
        let mut sampling_rate: Option<f64> = None;
        let mut seen_sections: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        let mut seen_keys: std::collections::BTreeSet<(String, String)> =
            std::collections::BTreeSet::new();
        for raw in text.lines() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                // A header must be exactly `[name]` — anything trailing
                // the `]` (or a missing one) is garbage, not a key line.
                let name = line
                    .strip_prefix('[')
                    .and_then(|l| l.strip_suffix(']'))
                    .map(str::trim)
                    .filter(|n| !n.is_empty() && !n.contains('[') && !n.contains(']'))
                    .ok_or_else(|| WorkloadPlanError::BadLine(line.to_owned()))?;
                if !seen_sections.insert(name.to_owned()) {
                    return Err(WorkloadPlanError::Duplicate(format!("[{name}]")));
                }
                section = name.to_owned();
                // An `[slo]`/`[slo.tenants]` header enables the policy
                // even when every key keeps its default.
                if section == "slo" || section == "slo.tenants" {
                    plan.slo.get_or_insert_with(SloPolicy::default);
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().trim_matches('"'), v.trim().trim_matches('"')))
                .ok_or_else(|| WorkloadPlanError::BadLine(line.to_owned()))?;
            if !seen_keys.insert((section.clone(), key.to_owned())) {
                return Err(WorkloadPlanError::Duplicate(key.to_owned()));
            }
            let bad_value = || WorkloadPlanError::BadValue(value.to_owned());
            match section.as_str() {
                "" => match key {
                    "seed" => plan.seed = value.parse().map_err(|_| bad_value())?,
                    "tenants" => plan.tenants = value.parse().map_err(|_| bad_value())?,
                    "clients" => plan.clients = value.parse().map_err(|_| bad_value())?,
                    "requests" => plan.requests = value.parse().map_err(|_| bad_value())?,
                    _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                },
                "mix" => {
                    let w: f64 = value.parse().map_err(|_| bad_value())?;
                    let w = w.max(0.0);
                    match key {
                        "apply" => plan.mix.apply = w,
                        "undo" => plan.mix.undo = w,
                        "generate" => plan.mix.generate = w,
                        "query" => plan.mix.query = w,
                        "snapshot" => plan.mix.snapshot = w,
                        _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                    }
                }
                // Any key is a backend id; the value its draw weight.
                // Duplicate ids are caught by the shared key set.
                "mix.generate" => {
                    let w: f64 = value.parse().map_err(|_| bad_value())?;
                    plan.mix.generate_backends.push((key.to_owned(), w.max(0.0)));
                }
                "limits" => match key {
                    "queue_depth" => {
                        plan.limits.queue_depth = value.parse().map_err(|_| bad_value())?;
                    }
                    "deadline_us" => {
                        plan.limits.deadline_us = value.parse().map_err(|_| bad_value())?;
                    }
                    _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                },
                "workflow" => match key {
                    "steps" => {
                        let mut steps: Vec<String> = Vec::new();
                        for step in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                            if steps.iter().any(|s| s == step) {
                                return Err(WorkloadPlanError::Duplicate(step.to_owned()));
                            }
                            steps.push(step.to_owned());
                        }
                        plan.workflow = steps;
                    }
                    _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                },
                "service" => {
                    let us: u64 = value.parse().map_err(|_| bad_value())?;
                    match key {
                        "think_us" => plan.service.think_us = us,
                        "jitter_us" => plan.service.jitter_us = us,
                        "apply_us" => plan.service.apply_us = us,
                        "undo_us" => plan.service.undo_us = us,
                        "generate_us" => plan.service.generate_us = us,
                        "query_us" => plan.service.query_us = us,
                        "snapshot_us" => plan.service.snapshot_us = us,
                        _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                    }
                }
                "slo" => {
                    let slo = plan.slo.as_mut().expect("header handler inserted policy");
                    match key {
                        "percentile" => slo.percentile = value.parse().map_err(|_| bad_value())?,
                        "target_us" => slo.target_us = value.parse().map_err(|_| bad_value())?,
                        "error_budget" => {
                            slo.error_budget = value.parse().map_err(|_| bad_value())?;
                        }
                        "window_us" => slo.window_us = value.parse().map_err(|_| bad_value())?,
                        _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                    }
                }
                // Any key is a tenant name; the value its target_us.
                "slo.tenants" => {
                    let slo = plan.slo.as_mut().expect("header handler inserted policy");
                    let target: u64 = value.parse().map_err(|_| bad_value())?;
                    slo.tenant_targets.insert(key.to_owned(), target);
                }
                "sampling" => match key {
                    "mode" => sampling_mode = Some(value.to_owned()),
                    "rate" => sampling_rate = Some(value.parse().map_err(|_| bad_value())?),
                    _ => return Err(WorkloadPlanError::BadLine(line.to_owned())),
                },
                other => {
                    return Err(WorkloadPlanError::BadLine(format!("[{other}] {line}")));
                }
            }
        }
        if let Some(mode) = sampling_mode {
            plan.sampling = match mode.as_str() {
                "always" => SampleMode::Always,
                "never" => SampleMode::Never,
                "per-tenant-hash" => {
                    SampleMode::PerTenantHash { rate: sampling_rate.unwrap_or(1.0) }
                }
                "tail-on-error" => SampleMode::TailOnError,
                _ => return Err(WorkloadPlanError::BadValue(mode)),
            };
        }
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let text = r#"
            seed = 42          # master seed
            tenants = 3
            clients = 5
            requests = 20

            [mix]
            apply = 1.0
            query = 3.0
            snapshot = 0

            [limits]
            queue_depth = 2
            deadline_us = 1500

            [service]
            think_us = 100
            generate_us = 2000
        "#;
        let plan = WorkloadPlan::parse_toml(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.tenants, 3);
        assert_eq!(plan.clients, 5);
        assert_eq!(plan.requests, 20);
        assert_eq!(plan.mix.apply, 1.0);
        assert_eq!(plan.mix.query, 3.0);
        assert_eq!(plan.mix.snapshot, 0.0);
        // Unspecified keys keep defaults.
        assert_eq!(plan.mix.undo, RequestMix::default().undo);
        assert_eq!(plan.limits.queue_depth, 2);
        assert_eq!(plan.limits.deadline_us, 1500);
        assert_eq!(plan.service.think_us, 100);
        assert_eq!(plan.service.generate_us, 2000);
        assert_eq!(plan.service.apply_us, ServiceCosts::default().apply_us);
        assert_eq!(plan.tenant_names(), ["t00", "t01", "t02"]);
    }

    #[test]
    fn empty_text_is_the_default_plan() {
        assert_eq!(WorkloadPlan::parse_toml("").unwrap(), WorkloadPlan::default());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(WorkloadPlan::parse_toml("wat"), Err(WorkloadPlanError::BadLine(_))));
        assert!(matches!(
            WorkloadPlan::parse_toml("seed = banana"),
            Err(WorkloadPlanError::BadValue(_))
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix]\nwarp = 1.0"),
            Err(WorkloadPlanError::BadLine(_))
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("tenants = 0"),
            Err(WorkloadPlanError::Invalid(_))
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix]\napply=0\nundo=0\ngenerate=0\nquery=0\nsnapshot=0"),
            Err(WorkloadPlanError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_duplicates_and_header_garbage() {
        let e = WorkloadPlan::parse_toml("seed = 1\nseed = 2").unwrap_err();
        assert!(matches!(&e, WorkloadPlanError::Duplicate(k) if k == "seed"));
        assert_eq!(e.to_string(), "duplicate plan entry `seed`");
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix]\napply = 1.0\napply = 2.0"),
            Err(WorkloadPlanError::Duplicate(k)) if k == "apply"
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix]\napply = 1.0\n[mix]\nquery = 2.0"),
            Err(WorkloadPlanError::Duplicate(k)) if k == "[mix]"
        ));
        // The same key name in different sections stays legal.
        WorkloadPlan::parse_toml("[limits]\nqueue_depth = 2\n[service]\nthink_us = 9").unwrap();
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix] junk"),
            Err(WorkloadPlanError::BadLine(_))
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix]]\napply = 1.0"),
            Err(WorkloadPlanError::BadLine(_))
        ));
        assert!(matches!(WorkloadPlan::parse_toml("[]"), Err(WorkloadPlanError::BadLine(_))));
    }

    #[test]
    fn parses_workflow_steps() {
        let plan =
            WorkloadPlan::parse_toml("[workflow]\nsteps = \"distribution, transactions,security\"")
                .unwrap();
        assert_eq!(plan.workflow, ["distribution", "transactions", "security"]);
        assert!(WorkloadPlan::parse_toml("").unwrap().workflow.is_empty());
        assert!(matches!(
            WorkloadPlan::parse_toml("[workflow]\nsteps = \"security, security\""),
            Err(WorkloadPlanError::Duplicate(k)) if k == "security"
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[workflow]\norder = \"security\""),
            Err(WorkloadPlanError::BadLine(_))
        ));
    }

    #[test]
    fn parses_slo_and_sampling_sections() {
        let text = r#"
            [slo]
            percentile = 95.0
            target_us = 8000
            error_budget = 0.05
            window_us = 20000

            [slo.tenants]
            t01 = 3000

            [sampling]
            rate = 0.25
            mode = "per-tenant-hash"
        "#;
        let plan = WorkloadPlan::parse_toml(text).unwrap();
        let slo = plan.slo.expect("policy parsed");
        assert_eq!(slo.percentile, 95.0);
        assert_eq!(slo.target_us, 8000);
        assert_eq!(slo.error_budget, 0.05);
        assert_eq!(slo.window_us, 20000);
        assert_eq!(slo.target_for("t01"), 3000);
        assert_eq!(slo.target_for("t00"), 8000);
        assert_eq!(plan.sampling, SampleMode::PerTenantHash { rate: 0.25 });

        // A bare [slo] header enables the default policy.
        let bare = WorkloadPlan::parse_toml("[slo]").unwrap();
        assert_eq!(bare.slo, Some(comet_metrics::SloPolicy::default()));
        // No sections at all: no policy, full tracing.
        let none = WorkloadPlan::parse_toml("").unwrap();
        assert_eq!(none.slo, None);
        assert_eq!(none.sampling, SampleMode::Always);
        for mode in ["always", "never", "tail-on-error"] {
            WorkloadPlan::parse_toml(&format!("[sampling]\nmode = \"{mode}\"")).unwrap();
        }
    }

    #[test]
    fn rejects_bad_slo_and_sampling_values() {
        for bad in [
            "[slo]\npercentile = 0",
            "[slo]\npercentile = 101",
            "[slo]\nerror_budget = 0",
            "[slo]\nerror_budget = 1.5",
            "[slo]\nwindow_us = 0",
            "[sampling]\nmode = \"per-tenant-hash\"\nrate = 1.5",
        ] {
            assert!(
                matches!(WorkloadPlan::parse_toml(bad), Err(WorkloadPlanError::Invalid(_))),
                "accepted {bad:?}"
            );
        }
        assert!(matches!(
            WorkloadPlan::parse_toml("[sampling]\nmode = \"coin-flip\""),
            Err(WorkloadPlanError::BadValue(m)) if m == "coin-flip"
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[slo]\nbudget = 1"),
            Err(WorkloadPlanError::BadLine(_))
        ));
        assert!(matches!(
            WorkloadPlan::parse_toml("[slo.tenants]\nt00 = soon"),
            Err(WorkloadPlanError::BadValue(_))
        ));
    }

    #[test]
    fn parses_generate_backend_weights() {
        let text = r#"
            [mix]
            generate = 1.0

            [mix.generate]
            java-functional = 2.0
            rust-skeleton = 1.0
            report = -0.5          # clamped to zero, like [mix] weights
        "#;
        let plan = WorkloadPlan::parse_toml(text).unwrap();
        assert_eq!(
            plan.mix.generate_backends,
            [
                ("java-functional".to_owned(), 2.0),
                ("rust-skeleton".to_owned(), 1.0),
                ("report".to_owned(), 0.0),
            ]
        );
        // No section: empty list, Generate pins DEFAULT_BACKEND.
        assert!(WorkloadPlan::parse_toml("").unwrap().mix.generate_backends.is_empty());
        assert_eq!(DEFAULT_BACKEND, "java-functional");
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix.generate]\nreport = snail"),
            Err(WorkloadPlanError::BadValue(v)) if v == "snail"
        ));
        let dup = "[mix.generate]\nreport = 1.0\nreport = 2.0";
        let e = WorkloadPlan::parse_toml(dup).unwrap_err();
        assert!(matches!(&e, WorkloadPlanError::Duplicate(k) if k == "report"));
        assert_eq!(e.to_string(), "duplicate plan entry `report`");
        assert!(matches!(
            WorkloadPlan::parse_toml("[mix.generate]\nreport = 0\nrust-skeleton = 0"),
            Err(WorkloadPlanError::Invalid(_))
        ));
    }

    #[test]
    fn validates_generate_backends_against_injected_registry() {
        let plan =
            WorkloadPlan::parse_toml("[mix.generate]\njava-functional = 1.0\nquantum-foam = 1.0")
                .unwrap();
        plan.validate_backends(|_| true).unwrap();
        let err = plan.validate_backends(|b| b == "java-functional").unwrap_err();
        assert!(matches!(&err, WorkloadPlanError::UnknownBackend(b) if b == "quantum-foam"));
        assert_eq!(err.to_string(), "generate mix names unknown backend `quantum-foam`");
        // A plan with no [mix.generate] section always validates.
        WorkloadPlan::default().validate_backends(|_| false).unwrap();
    }

    #[test]
    fn validates_workflow_concerns_against_injected_registry() {
        let plan =
            WorkloadPlan::parse_toml("[workflow]\nsteps = \"security, teleportation\"").unwrap();
        plan.validate_concerns(|_| true).unwrap();
        let err = plan.validate_concerns(|c| c == "security").unwrap_err();
        assert!(matches!(&err, WorkloadPlanError::UnknownConcern(c) if c == "teleportation"));
        assert_eq!(err.to_string(), "workflow step names unknown concern `teleportation`");
    }
}
