//! Typed serving failures, with [`std::error::Error::source`] chaining
//! into the wrapped subsystem errors.

use crate::plan::WorkloadPlanError;
use std::fmt;

/// A boxed engine-level failure (lifecycle, middleware, ...) carried by
/// [`ServeError::Engine`]. Boxed as a trait object so the substrate
/// stays independent of the concrete engine's error types while
/// [`std::error::Error::source`] still walks the full chain.
pub type EngineError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// Failures of the serving layer. Admission failures (`Overloaded`,
/// `DeadlineExceeded`) degrade exactly one request; `Engine` wraps a
/// fault surfaced by the tenant's session — the session itself stays
/// healthy and the shard keeps serving.
#[derive(Debug)]
pub enum ServeError {
    /// The shard's ingress queue for this tenant is full; the client
    /// should back off for at least `retry_after_us` of sim time.
    Overloaded {
        /// Suggested backoff (sim-µs) until queue space is plausible.
        retry_after_us: u64,
    },
    /// The request waited in the queue past its deadline and was shed
    /// before execution.
    DeadlineExceeded {
        /// How long the request had waited when it was picked up.
        waited_us: u64,
        /// The per-request deadline from the workload plan.
        deadline_us: u64,
    },
    /// A request named a tenant no shard owns.
    UnknownTenant(String),
    /// A `Generate` request named a backend the host's generator
    /// factory does not register.
    UnknownBackend(String),
    /// The workload plan failed to parse.
    Plan(WorkloadPlanError),
    /// The tenant's engine failed the request (a lifecycle or
    /// middleware error); the source chain preserves the cause.
    Engine {
        /// Short display form of the failure.
        detail: String,
        /// The wrapped subsystem error.
        source: EngineError,
    },
    /// Critical-pair admission verdict: the requested concern conflicts
    /// with one already applied to the tenant's model, so the request
    /// is rejected before any model mutation. `a` is the applied
    /// concern, `b` the rejected one.
    Conflict {
        /// The concern already applied.
        a: String,
        /// The concern whose application was rejected.
        b: String,
        /// The interaction-matrix evidence for the conflict.
        evidence: String,
    },
}

impl ServeError {
    /// Wraps a subsystem error as a per-request engine failure.
    pub fn engine<E: std::error::Error + Send + Sync + 'static>(err: E) -> Self {
        ServeError::Engine { detail: err.to_string(), source: Box::new(err) }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { retry_after_us } => {
                write!(f, "overloaded: retry after {retry_after_us}µs")
            }
            ServeError::DeadlineExceeded { waited_us, deadline_us } => {
                write!(f, "deadline exceeded: waited {waited_us}µs > {deadline_us}µs")
            }
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ServeError::UnknownBackend(b) => write!(f, "unknown backend `{b}`"),
            ServeError::Plan(e) => write!(f, "workload plan: {e}"),
            ServeError::Engine { detail, .. } => write!(f, "engine: {detail}"),
            ServeError::Conflict { a, b, evidence } => {
                write!(f, "conflict: `{b}` cannot join `{a}`: {evidence}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Plan(e) => Some(e),
            ServeError::Engine { source, .. } => Some(source.as_ref()),
            ServeError::Overloaded { .. }
            | ServeError::DeadlineExceeded { .. }
            | ServeError::UnknownTenant(_)
            | ServeError::UnknownBackend(_)
            | ServeError::Conflict { .. } => None,
        }
    }
}

impl From<WorkloadPlanError> for ServeError {
    fn from(e: WorkloadPlanError) -> Self {
        ServeError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[derive(Debug)]
    struct Leaf;
    impl fmt::Display for Leaf {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("leaf failure")
        }
    }
    impl Error for Leaf {}

    #[test]
    fn engine_errors_chain_through_source() {
        let err = ServeError::engine(Leaf);
        assert_eq!(err.to_string(), "engine: leaf failure");
        let source = err.source().expect("engine error has a source");
        assert_eq!(source.to_string(), "leaf failure");
        assert!(source.source().is_none());
    }

    #[test]
    fn admission_errors_have_no_source() {
        assert!(ServeError::Overloaded { retry_after_us: 10 }.source().is_none());
        assert!(ServeError::DeadlineExceeded { waited_us: 9, deadline_us: 5 }.source().is_none());
        assert_eq!(
            ServeError::Overloaded { retry_after_us: 10 }.to_string(),
            "overloaded: retry after 10µs"
        );
    }
}
