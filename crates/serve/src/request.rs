//! Typed requests, read-only query selectors, and the engine traits a
//! host crate implements to plug its domain sessions into the serving
//! substrate.
//!
//! `comet-serve` deliberately does not know about `MdaLifecycle` or the
//! banking model: the scheduler works against [`TenantEngine`] (one
//! live session) and [`EngineFactory`] (how a shard materialises a
//! tenant's session inside its own worker thread). Engines are allowed
//! to be `!Send` — the whole point of the factory indirection is that a
//! session full of `Rc<RefCell<...>>` middleware state is created,
//! driven, and dropped on a single rayon worker; only plain-data
//! results cross threads.

use crate::error::ServeError;
use comet_obs::Collector;
use comet_transform::ParamSet;
use std::fmt;

/// A read-only query against a tenant's current model, answerable from
/// one `ModelIndex` pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySelector {
    /// Count the model's classes.
    Classes,
    /// Count elements carrying this stereotype.
    Stereotype(String),
    /// Count operations of the named class.
    Operations(String),
}

impl fmt::Display for QuerySelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySelector::Classes => f.write_str("classes"),
            QuerySelector::Stereotype(s) => write!(f, "stereotype:{s}"),
            QuerySelector::Operations(c) => write!(f, "operations:{c}"),
        }
    }
}

/// One request against one tenant's session.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply a concern pair, specialised by `si`, through the tenant's
    /// lifecycle (workflow admission, CMT, repo commit).
    ApplyConcern {
        /// Concern name as understood by the host's registry.
        concern: String,
        /// The specialisation decisions Si for the generic pair.
        si: ParamSet,
    },
    /// Undo the most recent applied concern.
    UndoLast,
    /// Run functional + aspect generation, weave the current model, and
    /// render the artifact with the named generation backend (resolved
    /// against the host's `GeneratorFactory`; an unknown id is a typed
    /// [`ServeError::UnknownBackend`]).
    Generate {
        /// Backend id, e.g. `"java-functional"` or `"rust-skeleton"`.
        backend: String,
    },
    /// Read-only model query; consecutive queued queries are batched.
    Query(QuerySelector),
    /// Persist an XMI snapshot of the current model via the store.
    Snapshot,
}

impl Request {
    /// Stable short name used in spans, logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::ApplyConcern { .. } => "apply",
            Request::UndoLast => "undo",
            Request::Generate { .. } => "generate",
            Request::Query(_) => "query",
            Request::Snapshot => "snapshot",
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::ApplyConcern { concern, si } => {
                write!(f, "apply {concern}{}", si.angle_signature())
            }
            Request::UndoLast => f.write_str("undo"),
            Request::Generate { backend } => write!(f, "generate {backend}"),
            Request::Query(sel) => write!(f, "query {sel}"),
            Request::Snapshot => f.write_str("snapshot"),
        }
    }
}

/// One tenant's live session, driven by the scheduler on a single
/// shard worker thread. Implementations may hold `!Send` state.
pub trait TenantEngine {
    /// Executes one non-`Query` request, returning a short outcome
    /// token (recorded in the request span and folded into the
    /// tenant's outcome hash). Failures must leave the session
    /// consistent — an `Err` degrades this request only.
    fn execute(&mut self, req: &Request, obs: &Collector) -> Result<String, ServeError>;

    /// Answers a batch of read-only queries in one pass over the
    /// current model. Must not mutate the session.
    fn execute_queries(
        &mut self,
        selectors: &[QuerySelector],
        obs: &Collector,
    ) -> Result<Vec<u64>, ServeError>;

    /// The next `ApplyConcern` request this tenant's workflow admits,
    /// or `None` once the workflow is complete (the scheduler then
    /// falls back to a query).
    fn next_apply(&mut self) -> Option<Request>;

    /// Names of applied concerns, in application order (§3 precedence).
    fn applied(&self) -> Vec<String>;

    /// Sim-µs consumed by the engine since the last call (latency
    /// faults etc.); charged on top of the plan's base service cost.
    fn take_service_us(&mut self) -> u64;

    /// The session's middleware fault log.
    fn fault_log(&self) -> comet_middleware::FaultLog;

    /// Engine-internal counters to bridge into the run's metrics
    /// snapshot, record-for-record (weave-cache hits, WAL fsyncs, …).
    /// Each `(name, value)` becomes `comet_serve_{name}_total{tenant=}`.
    /// The default is empty: engines opt in.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// How a shard materialises tenant sessions. The factory itself must be
/// `Sync` (it is shared by reference across shard workers); the engines
/// it creates need not be `Send`.
pub trait EngineFactory: Sync {
    /// The session type driven by the scheduler.
    type Engine: TenantEngine;

    /// Creates the session for `tenant`, wiring the per-tenant
    /// collector into its lifecycle and middleware.
    fn create(&self, tenant: &str, obs: &Collector) -> Self::Engine;

    /// The pool of query selectors the workload generator draws from.
    fn query_pool(&self) -> Vec<QuerySelector>;
}
