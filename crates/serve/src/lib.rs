//! # comet-serve — sharded multi-tenant transformation serving
//!
//! The substrate that turns COMET's single-session pipeline (specialize
//! GMT/GA with Si → apply CMT → weave CA in §3 precedence order) into a
//! request-driven service, the shape Manset et al. exercise per
//! deployment at grid scale: many tenants concurrently evolving their
//! own models through concern refinements.
//!
//! The crate is deliberately engine-agnostic. It knows how to *serve* —
//! seeded closed-loop workloads ([`WorkloadPlan`]), bounded-queue
//! admission control with typed backpressure ([`ServeError::Overloaded`]),
//! deadline shedding, read-only query batching, tenant→shard hash
//! routing with real rayon parallelism, and byte-comparable
//! [`ServeReport`]s — but not what a request *does*. Hosts implement
//! [`TenantEngine`]/[`EngineFactory`] (the `comet` crate plugs in its
//! `MdaLifecycle`-backed banking sessions) and may hold `!Send` state,
//! because sessions live and die on a single shard worker.
//!
//! ## Determinism
//!
//! Same seed + same plan (+ same fault plan) ⇒ byte-identical report
//! and trace across shard counts and thread counts, by construction:
//! tenants share nothing, per-tenant RNGs derive from the global tenant
//! name, and every aggregate folds in tenant-name order. See
//! `shard.rs` for the full argument.

#![warn(missing_docs)]

mod core;
mod error;
mod plan;
mod report;
mod request;
mod shard;

pub use crate::core::{ServeOutcome, ServerCore};
pub use error::{EngineError, ServeError};
pub use plan::{Limits, RequestMix, ServiceCosts, WorkloadPlan, WorkloadPlanError};
pub use report::{ServeReport, TenantStats};
pub use request::{EngineFactory, QuerySelector, Request, TenantEngine};

/// FNV-1a 64-bit hash — tenant→shard routing and per-tenant seed
/// derivation use it so routing never depends on process-specific
/// state (`DefaultHasher` is randomized per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_middleware::FaultLog;
    use comet_obs::Collector;

    /// A deliberately boring engine: counts operations, fails on
    /// demand, applies concerns from a fixed workflow list.
    struct MockEngine {
        workflow: Vec<String>,
        next: usize,
        applied: Vec<String>,
        /// Fail every Nth execute (0 = never).
        fail_every: u64,
        executed: u64,
    }

    #[derive(Debug)]
    struct MockFault;
    impl std::fmt::Display for MockFault {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mock fault")
        }
    }
    impl std::error::Error for MockFault {}

    impl TenantEngine for MockEngine {
        fn execute(&mut self, req: &Request, _obs: &Collector) -> Result<String, ServeError> {
            self.executed += 1;
            if self.fail_every > 0 && self.executed.is_multiple_of(self.fail_every) {
                return Err(ServeError::engine(MockFault));
            }
            match req {
                Request::ApplyConcern { concern, .. } => {
                    self.applied.push(concern.clone());
                    Ok(format!("applied:{concern}"))
                }
                Request::UndoLast => {
                    let undone = self.applied.pop().unwrap_or_default();
                    Ok(format!("undone:{undone}"))
                }
                Request::Generate => Ok("generated".into()),
                Request::Query(_) => unreachable!("queries go through execute_queries"),
                Request::Snapshot => Ok("snapshotted".into()),
            }
        }

        fn execute_queries(
            &mut self,
            selectors: &[QuerySelector],
            _obs: &Collector,
        ) -> Result<Vec<u64>, ServeError> {
            self.executed += 1;
            if self.fail_every > 0 && self.executed.is_multiple_of(self.fail_every) {
                return Err(ServeError::engine(MockFault));
            }
            Ok(selectors.iter().map(|s| s.to_string().len() as u64).collect())
        }

        fn next_apply(&mut self) -> Option<Request> {
            let concern = self.workflow.get(self.next)?.clone();
            self.next += 1;
            Some(Request::ApplyConcern { concern, si: comet_transform::ParamSet::new() })
        }

        fn applied(&self) -> Vec<String> {
            self.applied.clone()
        }

        fn take_service_us(&mut self) -> u64 {
            0
        }

        fn fault_log(&self) -> FaultLog {
            FaultLog::default()
        }
    }

    struct MockFactory {
        fail_every: u64,
    }

    impl EngineFactory for MockFactory {
        type Engine = MockEngine;

        fn create(&self, _tenant: &str, _obs: &Collector) -> MockEngine {
            MockEngine {
                workflow: vec!["distribution".into(), "transactions".into(), "security".into()],
                next: 0,
                applied: Vec::new(),
                fail_every: self.fail_every,
                executed: 0,
            }
        }

        fn query_pool(&self) -> Vec<QuerySelector> {
            vec![
                QuerySelector::Classes,
                QuerySelector::Stereotype("Distributed".into()),
                QuerySelector::Operations("Bank".into()),
            ]
        }
    }

    fn plan(seed: u64) -> WorkloadPlan {
        let mut p = WorkloadPlan::new(seed);
        p.tenants = 5;
        p.clients = 3;
        p.requests = 12;
        p
    }

    #[test]
    fn same_seed_same_report_across_shard_counts() {
        let factory = MockFactory { fail_every: 0 };
        let p = plan(7);
        let runs: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| ServerCore::new(&p, &factory, shards).unwrap().run(true))
            .collect();
        let first = &runs[0];
        assert!(first.report.completed > 0);
        for other in &runs[1..] {
            assert_eq!(first.report, other.report);
            assert_eq!(first.report.to_json(), other.report.to_json());
            assert_eq!(first.trace, other.trace);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let factory = MockFactory { fail_every: 0 };
        let a = ServerCore::new(&plan(7), &factory, 2).unwrap().run(false);
        let b = ServerCore::new(&plan(8), &factory, 2).unwrap().run(false);
        assert_ne!(a.report, b.report);
    }

    #[test]
    fn overload_rejects_but_accepted_requests_complete() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.clients = 8;
        p.limits.queue_depth = 1;
        p.service.think_us = 10; // hammer the queue
        p.service.jitter_us = 5;
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(false);
        let r = &out.report;
        assert!(r.rejected > 0, "tiny queue under load must reject: {r}");
        assert!(r.completed > 0);
        // Closed loop: every attempt is accounted for, nothing leaks.
        assert_eq!(r.issued, (p.tenants as u64) * (p.clients as u64) * p.requests);
        assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
        assert_eq!(r.completed, r.ok + r.failed);
    }

    #[test]
    fn deadlines_shed_stale_requests() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.clients = 8;
        p.limits.queue_depth = 16;
        p.limits.deadline_us = 200; // far below typical service times
        p.service.think_us = 10;
        let out = ServerCore::new(&p, &factory, 1).unwrap().run(false);
        let r = &out.report;
        assert!(r.deadline_dropped > 0, "{r}");
        assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
    }

    #[test]
    fn engine_failures_degrade_requests_not_the_run() {
        let factory = MockFactory { fail_every: 4 };
        let out = ServerCore::new(&plan(7), &factory, 2).unwrap().run(false);
        let r = &out.report;
        assert!(r.failed > 0);
        assert!(r.ok > 0);
        assert_eq!(r.completed, r.ok + r.failed);
        // Determinism holds under failures too.
        let again = ServerCore::new(&plan(7), &factory, 4).unwrap().run(false);
        assert_eq!(*r, again.report);
    }

    #[test]
    fn queries_batch() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix = RequestMix { apply: 0.0, undo: 0.0, generate: 0.0, query: 1.0, snapshot: 0.0 };
        p.clients = 6;
        p.service.think_us = 10;
        p.limits.queue_depth = 8;
        let out = ServerCore::new(&p, &factory, 1).unwrap().run(false);
        assert!(out.report.batches > 0, "{}", out.report);
        assert!(out.report.batched_queries >= 2 * out.report.batches);
    }

    #[test]
    fn applied_follows_workflow_order() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix.apply = 5.0;
        p.mix.undo = 0.0;
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(false);
        for t in out.report.tenants.values() {
            let expected = ["distribution", "transactions", "security"];
            assert_eq!(t.applied, expected[..t.applied.len()]);
        }
    }

    #[test]
    fn traces_tag_requests_with_tenants() {
        let factory = MockFactory { fail_every: 0 };
        let out = ServerCore::new(&plan(7), &factory, 2).unwrap().run(true);
        let trace = out.trace.expect("traced run");
        let requests: Vec<_> = trace.spans.iter().filter(|s| s.name == "serve.request").collect();
        assert_eq!(
            requests.len() as u64,
            out.report.completed,
            "one serve.request span per completed request"
        );
        for span in &requests {
            let tenant = comet_obs::Trace::attr(&span.attrs, "tenant").expect("tenant attr");
            assert!(out.report.tenants.contains_key(tenant));
            assert!(comet_obs::Trace::attr(&span.attrs, "outcome").is_some());
        }
    }

    #[test]
    fn shard_routing_is_stable() {
        let factory = MockFactory { fail_every: 0 };
        let p = plan(7);
        let core = ServerCore::new(&p, &factory, 4).unwrap();
        for tenant in p.tenant_names() {
            assert_eq!(core.shard_of(&tenant), core.shard_of(&tenant));
            assert!(core.shard_of(&tenant) < 4);
        }
    }
}
