//! # comet-serve — sharded multi-tenant transformation serving
//!
//! The substrate that turns COMET's single-session pipeline (specialize
//! GMT/GA with Si → apply CMT → weave CA in §3 precedence order) into a
//! request-driven service, the shape Manset et al. exercise per
//! deployment at grid scale: many tenants concurrently evolving their
//! own models through concern refinements.
//!
//! The crate is deliberately engine-agnostic. It knows how to *serve* —
//! seeded closed-loop workloads ([`WorkloadPlan`]), bounded-queue
//! admission control with typed backpressure ([`ServeError::Overloaded`]),
//! deadline shedding, read-only query batching, tenant→shard hash
//! routing with real rayon parallelism, and byte-comparable
//! [`ServeReport`]s — but not what a request *does*. Hosts implement
//! [`TenantEngine`]/[`EngineFactory`] (the `comet` crate plugs in its
//! `MdaLifecycle`-backed banking sessions) and may hold `!Send` state,
//! because sessions live and die on a single shard worker.
//!
//! ## Determinism
//!
//! Same seed + same plan (+ same fault plan) ⇒ byte-identical report
//! and trace across shard counts and thread counts, by construction:
//! tenants share nothing, per-tenant RNGs derive from the global tenant
//! name, and every aggregate folds in tenant-name order. See
//! `shard.rs` for the full argument.

#![warn(missing_docs)]

mod core;
mod error;
mod plan;
mod report;
mod request;
mod shard;

pub use crate::core::{RunConfig, ServeOutcome, ServerCore};
pub use comet_metrics::{MetricsSnapshot, SloPolicy, SloVerdict};
pub use error::{EngineError, ServeError};
pub use plan::{
    Limits, RequestMix, SampleMode, ServiceCosts, WorkloadPlan, WorkloadPlanError, DEFAULT_BACKEND,
};
pub use report::{ServeReport, TenantStats};
pub use request::{EngineFactory, QuerySelector, Request, TenantEngine};

/// FNV-1a 64-bit hash — tenant→shard routing and per-tenant seed
/// derivation use it so routing never depends on process-specific
/// state (`DefaultHasher` is randomized per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_middleware::FaultLog;
    use comet_obs::Collector;

    /// A deliberately boring engine: counts operations, fails on
    /// demand, applies concerns from a fixed workflow list. Its
    /// `Generate` path is real, though — requests route through a
    /// `comet_gen::GeneratorFactory` over a tiny model, so even the
    /// substrate-level tests exercise backend dispatch and the typed
    /// [`ServeError::UnknownBackend`] path.
    struct MockEngine {
        workflow: Vec<String>,
        next: usize,
        applied: Vec<String>,
        /// Fail every Nth execute (0 = never).
        fail_every: u64,
        executed: u64,
        factory: comet_gen::GeneratorFactory,
        model: comet_model::Model,
        program: comet_codegen::Program,
        bodies: comet_codegen::BodyProvider,
    }

    #[derive(Debug)]
    struct MockFault;
    impl std::fmt::Display for MockFault {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mock fault")
        }
    }
    impl std::error::Error for MockFault {}

    impl TenantEngine for MockEngine {
        fn execute(&mut self, req: &Request, _obs: &Collector) -> Result<String, ServeError> {
            self.executed += 1;
            if self.fail_every > 0 && self.executed.is_multiple_of(self.fail_every) {
                return Err(ServeError::engine(MockFault));
            }
            match req {
                Request::ApplyConcern { concern, .. } => {
                    self.applied.push(concern.clone());
                    Ok(format!("applied:{concern}"))
                }
                Request::UndoLast => {
                    let undone = self.applied.pop().unwrap_or_default();
                    Ok(format!("undone:{undone}"))
                }
                Request::Generate { backend } => {
                    let generator = self
                        .factory
                        .by_id(backend)
                        .ok_or_else(|| ServeError::UnknownBackend(backend.clone()))?;
                    let input = comet_gen::GenInput {
                        model: &self.model,
                        functional: &self.program,
                        woven: &self.program,
                        concerns: &self.applied,
                        bodies: &self.bodies,
                    };
                    let artifact = generator.generate(&input);
                    Ok(format!("generated:{backend}:{}", artifact.len()))
                }
                Request::Query(_) => unreachable!("queries go through execute_queries"),
                Request::Snapshot => Ok("snapshotted".into()),
            }
        }

        fn execute_queries(
            &mut self,
            selectors: &[QuerySelector],
            _obs: &Collector,
        ) -> Result<Vec<u64>, ServeError> {
            self.executed += 1;
            if self.fail_every > 0 && self.executed.is_multiple_of(self.fail_every) {
                return Err(ServeError::engine(MockFault));
            }
            Ok(selectors.iter().map(|s| s.to_string().len() as u64).collect())
        }

        fn next_apply(&mut self) -> Option<Request> {
            let concern = self.workflow.get(self.next)?.clone();
            self.next += 1;
            Some(Request::ApplyConcern { concern, si: comet_transform::ParamSet::new() })
        }

        fn applied(&self) -> Vec<String> {
            self.applied.clone()
        }

        fn take_service_us(&mut self) -> u64 {
            0
        }

        fn fault_log(&self) -> FaultLog {
            FaultLog::default()
        }

        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("mock_executions", self.executed)]
        }
    }

    struct MockFactory {
        fail_every: u64,
    }

    impl EngineFactory for MockFactory {
        type Engine = MockEngine;

        fn create(&self, _tenant: &str, _obs: &Collector) -> MockEngine {
            let model = comet_model::sample::banking_pim();
            let bodies = comet_codegen::BodyProvider::default();
            let program = comet_codegen::FunctionalGenerator::new().generate(&model, &bodies);
            MockEngine {
                workflow: vec!["distribution".into(), "transactions".into(), "security".into()],
                next: 0,
                applied: Vec::new(),
                fail_every: self.fail_every,
                executed: 0,
                factory: comet_gen::GeneratorFactory::with_standard_backends(),
                model,
                program,
                bodies,
            }
        }

        fn query_pool(&self) -> Vec<QuerySelector> {
            vec![
                QuerySelector::Classes,
                QuerySelector::Stereotype("Distributed".into()),
                QuerySelector::Operations("Bank".into()),
            ]
        }
    }

    fn plan(seed: u64) -> WorkloadPlan {
        let mut p = WorkloadPlan::new(seed);
        p.tenants = 5;
        p.clients = 3;
        p.requests = 12;
        p
    }

    #[test]
    fn same_seed_same_report_across_shard_counts() {
        let factory = MockFactory { fail_every: 0 };
        let p = plan(7);
        let runs: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| ServerCore::new(&p, &factory, shards).unwrap().run(true))
            .collect();
        let first = &runs[0];
        assert!(first.report.completed > 0);
        for other in &runs[1..] {
            assert_eq!(first.report, other.report);
            assert_eq!(first.report.to_json(), other.report.to_json());
            assert_eq!(first.trace, other.trace);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let factory = MockFactory { fail_every: 0 };
        let a = ServerCore::new(&plan(7), &factory, 2).unwrap().run(false);
        let b = ServerCore::new(&plan(8), &factory, 2).unwrap().run(false);
        assert_ne!(a.report, b.report);
    }

    #[test]
    fn overload_rejects_but_accepted_requests_complete() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.clients = 8;
        p.limits.queue_depth = 1;
        p.service.think_us = 10; // hammer the queue
        p.service.jitter_us = 5;
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(false);
        let r = &out.report;
        assert!(r.rejected > 0, "tiny queue under load must reject: {r}");
        assert!(r.completed > 0);
        // Closed loop: every attempt is accounted for, nothing leaks.
        assert_eq!(r.issued, (p.tenants as u64) * (p.clients as u64) * p.requests);
        assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
        assert_eq!(r.completed, r.ok + r.failed);
    }

    #[test]
    fn deadlines_shed_stale_requests() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.clients = 8;
        p.limits.queue_depth = 16;
        p.limits.deadline_us = 200; // far below typical service times
        p.service.think_us = 10;
        let out = ServerCore::new(&p, &factory, 1).unwrap().run(false);
        let r = &out.report;
        assert!(r.deadline_dropped > 0, "{r}");
        assert_eq!(r.issued, r.completed + r.rejected + r.deadline_dropped);
    }

    #[test]
    fn engine_failures_degrade_requests_not_the_run() {
        let factory = MockFactory { fail_every: 4 };
        let out = ServerCore::new(&plan(7), &factory, 2).unwrap().run(false);
        let r = &out.report;
        assert!(r.failed > 0);
        assert!(r.ok > 0);
        assert_eq!(r.completed, r.ok + r.failed);
        // Determinism holds under failures too.
        let again = ServerCore::new(&plan(7), &factory, 4).unwrap().run(false);
        assert_eq!(*r, again.report);
    }

    #[test]
    fn queries_batch() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix = RequestMix {
            apply: 0.0,
            undo: 0.0,
            generate: 0.0,
            query: 1.0,
            snapshot: 0.0,
            generate_backends: Vec::new(),
        };
        p.clients = 6;
        p.service.think_us = 10;
        p.limits.queue_depth = 8;
        let out = ServerCore::new(&p, &factory, 1).unwrap().run(false);
        assert!(out.report.batches > 0, "{}", out.report);
        assert!(out.report.batched_queries >= 2 * out.report.batches);
    }

    #[test]
    fn backend_weighted_generates_stay_shard_invariant() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix.generate = 2.0;
        p.mix.generate_backends = vec![
            ("java-functional".to_owned(), 1.0),
            ("rust-skeleton".to_owned(), 1.0),
            ("report".to_owned(), 1.0),
        ];
        let runs: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| ServerCore::new(&p, &factory, shards).unwrap().run(true))
            .collect();
        let first = &runs[0];
        for other in &runs[1..] {
            assert_eq!(first.report, other.report);
            assert_eq!(first.trace, other.trace);
        }
        // The mix actually reaches the engine: request spans carry each
        // backend's artifact length in their outcome token.
        let trace = first.trace.as_ref().expect("traced run");
        let outcomes: Vec<&str> = trace
            .spans
            .iter()
            .filter(|s| s.name == "serve.request")
            .filter_map(|s| comet_obs::Trace::attr(&s.attrs, "outcome"))
            .filter(|o| o.starts_with("generated:"))
            .collect();
        assert!(!outcomes.is_empty());
        for backend in ["java-functional", "rust-skeleton", "report"] {
            assert!(
                outcomes.iter().any(|o| o.contains(backend)),
                "weighted draw never reached `{backend}`: {outcomes:?}"
            );
        }
    }

    #[test]
    fn unknown_backend_degrades_requests_with_the_typed_error() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix.generate = 5.0;
        p.mix.generate_backends = vec![("cobol-copybook".to_owned(), 1.0)];
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(true);
        assert!(out.report.failed > 0, "{}", out.report);
        let trace = out.trace.as_ref().expect("traced run");
        assert!(
            trace.spans.iter().filter(|s| s.name == "serve.request").any(|s| {
                comet_obs::Trace::attr(&s.attrs, "outcome")
                    .is_some_and(|o| o.contains("unknown backend `cobol-copybook`"))
            }),
            "typed UnknownBackend must surface in outcomes"
        );
    }

    #[test]
    fn applied_follows_workflow_order() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.mix.apply = 5.0;
        p.mix.undo = 0.0;
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(false);
        for t in out.report.tenants.values() {
            let expected = ["distribution", "transactions", "security"];
            assert_eq!(t.applied, expected[..t.applied.len()]);
        }
    }

    #[test]
    fn traces_tag_requests_with_tenants() {
        let factory = MockFactory { fail_every: 0 };
        let out = ServerCore::new(&plan(7), &factory, 2).unwrap().run(true);
        let trace = out.trace.expect("traced run");
        let requests: Vec<_> = trace.spans.iter().filter(|s| s.name == "serve.request").collect();
        assert_eq!(
            requests.len() as u64,
            out.report.completed,
            "one serve.request span per completed request"
        );
        for span in &requests {
            let tenant = comet_obs::Trace::attr(&span.attrs, "tenant").expect("tenant attr");
            assert!(out.report.tenants.contains_key(tenant));
            assert!(comet_obs::Trace::attr(&span.attrs, "outcome").is_some());
        }
    }

    /// Span identity for set-containment checks: everything except the
    /// ids, which renumber when neighbouring spans are discarded.
    type SpanKey = (String, String, u64, u64, Vec<(String, String)>);

    fn span_keys(trace: &comet_obs::Trace) -> Vec<SpanKey> {
        let mut keys: Vec<_> = trace
            .spans
            .iter()
            .map(|s| (s.cat.clone(), s.name.clone(), s.start_us, s.end_us, s.attrs.clone()))
            .collect();
        keys.sort();
        keys
    }

    /// Multiset containment: every key of `sub` appears in `sup` at
    /// least as often.
    fn contained_in(sub: &[SpanKey], sup: &[SpanKey]) -> bool {
        let mut pool = sup.to_vec();
        sub.iter().all(|k| {
            if let Ok(i) = pool.binary_search(k) {
                pool.remove(i);
                true
            } else {
                false
            }
        })
    }

    #[test]
    fn metrics_snapshot_is_shard_count_invariant() {
        let factory = MockFactory { fail_every: 3 };
        let mut p = plan(7);
        p.slo = Some(SloPolicy { target_us: 400, ..SloPolicy::default() });
        let cfg = RunConfig { traced: false, metrics: true };
        let runs: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| ServerCore::new(&p, &factory, shards).unwrap().run_with(&cfg))
            .collect();
        let first = runs[0].metrics.as_ref().expect("metrics on");
        assert!(!first.is_empty());
        let prom = first.to_prometheus();
        assert!(prom.contains("comet_serve_requests_total{"), "{prom}");
        assert!(prom.contains("comet_serve_latency_us_bucket{"), "{prom}");
        assert!(prom.contains("comet_serve_mock_executions_total{"), "engine counters bridged");
        for other in &runs[1..] {
            let m = other.metrics.as_ref().expect("metrics on");
            assert_eq!(first, m);
            assert_eq!(prom, m.to_prometheus(), "byte-identical exposition");
            assert_eq!(first.to_json(), m.to_json());
            assert_eq!(runs[0].report.slo, other.report.slo, "verdicts shard-invariant");
        }
        assert_eq!(runs[0].report.slo.len(), p.tenants, "one verdict per tenant");
    }

    #[test]
    fn slo_section_implies_metrics_and_breaches_report() {
        let factory = MockFactory { fail_every: 2 };
        let mut p = plan(7);
        // An impossible target: every request breaches.
        p.slo = Some(SloPolicy { target_us: 1, error_budget: 0.001, ..SloPolicy::default() });
        let out = ServerCore::new(&p, &factory, 2).unwrap().run_with(&RunConfig::default());
        assert!(out.metrics.is_some(), "[slo] turns metrics on even with metrics=false");
        assert!(out.report.slo_breached(), "{}", out.report);
        let rendered = out.report.to_string();
        assert!(rendered.contains("BREACH"), "{rendered}");
        assert!(out.report.to_json().contains("\"slo\""));
        // Without a policy the report renders without any slo section.
        let bare = ServerCore::new(&plan(7), &factory, 2).unwrap().run(false);
        assert!(bare.report.slo.is_empty());
        assert!(!bare.report.to_json().contains("\"slo\""));
    }

    #[test]
    fn sampled_trace_spans_are_a_subset_of_the_full_trace() {
        let factory = MockFactory { fail_every: 4 };
        let mut p = plan(7);
        let full = ServerCore::new(&p, &factory, 2).unwrap().run(true);
        let full_keys = span_keys(full.trace.as_ref().unwrap());
        for mode in [
            SampleMode::Always,
            SampleMode::Never,
            SampleMode::PerTenantHash { rate: 0.5 },
            SampleMode::TailOnError,
        ] {
            p.sampling = mode;
            let sampled = ServerCore::new(&p, &factory, 2).unwrap().run(true);
            let keys = span_keys(sampled.trace.as_ref().unwrap());
            assert!(contained_in(&keys, &full_keys), "{mode:?} leaked spans");
            assert_eq!(
                sampled.report, full.report,
                "sampling must never change the report ({mode:?})"
            );
            match mode {
                SampleMode::Always => assert_eq!(keys.len(), full_keys.len()),
                SampleMode::Never => assert!(keys.is_empty(), "{mode:?}: {}", keys.len()),
                _ => {}
            }
        }
    }

    #[test]
    fn tail_on_error_keeps_full_span_trees_for_failed_requests() {
        let factory = MockFactory { fail_every: 4 };
        let mut p = plan(7);
        p.sampling = SampleMode::TailOnError;
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(true);
        let trace = out.trace.as_ref().unwrap();
        let requests: Vec<_> = trace.spans.iter().filter(|s| s.name == "serve.request").collect();
        let errored = requests
            .iter()
            .filter(|s| {
                comet_obs::Trace::attr(&s.attrs, "outcome").is_some_and(|o| o.starts_with("err"))
            })
            .count();
        assert!(out.report.failed > 0);
        assert_eq!(errored as u64, out.report.failed, "every failed request keeps its span tree");
        // The tail sampler drops the boring batches, so the kept trace
        // is strictly smaller than the full one.
        let full = {
            p.sampling = SampleMode::Always;
            ServerCore::new(&p, &factory, 2).unwrap().run(true)
        };
        assert!(trace.spans.len() < full.trace.as_ref().unwrap().spans.len());
        // And it is still shard-count invariant.
        p.sampling = SampleMode::TailOnError;
        let again = ServerCore::new(&p, &factory, 8).unwrap().run(true);
        assert_eq!(out.trace, again.trace);
    }

    #[test]
    fn per_tenant_hash_keeps_whole_tenants() {
        let factory = MockFactory { fail_every: 0 };
        let mut p = plan(7);
        p.sampling = SampleMode::PerTenantHash { rate: 0.5 };
        let out = ServerCore::new(&p, &factory, 2).unwrap().run(true);
        let trace = out.trace.as_ref().unwrap();
        let mut kept: Vec<&str> = trace
            .spans
            .iter()
            .filter(|s| s.name == "serve.request")
            .filter_map(|s| comet_obs::Trace::attr(&s.attrs, "tenant"))
            .collect();
        kept.sort_unstable();
        kept.dedup();
        assert!(!kept.is_empty() && kept.len() < p.tenants, "rate 0.5 splits tenants: {kept:?}");
        // Kept tenants keep *all* their request spans.
        for tenant in &kept {
            let spans = trace
                .spans
                .iter()
                .filter(|s| {
                    s.name == "serve.request"
                        && comet_obs::Trace::attr(&s.attrs, "tenant") == Some(tenant)
                })
                .count() as u64;
            assert_eq!(spans, out.report.tenants[*tenant].completed);
        }
    }

    #[test]
    fn shard_routing_is_stable() {
        let factory = MockFactory { fail_every: 0 };
        let p = plan(7);
        let core = ServerCore::new(&p, &factory, 4).unwrap();
        for tenant in p.tenant_names() {
            assert_eq!(core.shard_of(&tenant), core.shard_of(&tenant));
            assert!(core.shard_of(&tenant) < 4);
        }
    }
}
