//! Shared property tests pinning the two hand-rolled TOML-subset
//! parsers — `WorkloadPlan::parse_toml` (this crate) and
//! `FaultPlan::parse_toml` (`comet-middleware`) — to one behaviour:
//! both must reject duplicate keys, repeated section headers, and
//! trailing garbage with *identical* error messages, and neither may
//! ever panic, whatever bytes it is fed.

use comet_middleware::{FaultPlan, FaultPlanError};
use comet_serve::{WorkloadPlan, WorkloadPlanError};
use proptest::prelude::*;

/// A structurally valid document for each parser, built from the same
/// skeleton: `(section, key, value)` rows where section "" means the
/// root. Keys are drawn per parser, sections/values shared in shape.
fn workload_doc(rows: &[(usize, usize)]) -> Vec<(String, String, String)> {
    const SECTIONS: [(&str, &[&str]); 4] = [
        ("", &["seed", "tenants", "clients", "requests"]),
        ("mix", &["apply", "undo", "generate", "query", "snapshot"]),
        ("limits", &["queue_depth", "deadline_us"]),
        ("service", &["think_us", "jitter_us", "apply_us"]),
    ];
    rows.iter()
        .map(|&(s, k)| {
            let (section, keys) = SECTIONS[s % SECTIONS.len()];
            (section.to_owned(), keys[k % keys.len()].to_owned(), "2".to_owned())
        })
        .collect()
}

fn fault_doc(rows: &[(usize, usize)]) -> Vec<(String, String, String)> {
    const OPS: [&str; 5] = ["bus.send", "store.save", "store.load", "tx.commit", "naming.lookup"];
    rows.iter()
        .map(|&(s, k)| match s % 3 {
            0 => ("".to_owned(), "seed".to_owned(), "2".to_owned()),
            1 => ("probabilities".to_owned(), OPS[k % OPS.len()].to_owned(), "0.5".to_owned()),
            _ => (
                "latency".to_owned(),
                ["probability", "spike_us"][k % 2].to_owned(),
                "2".to_owned(),
            ),
        })
        .collect()
}

/// Reorders rows the way [`render`] emits them: root keys first, then
/// each section's rows grouped under one header in first-seen order.
/// The duplicate oracle must look at THIS order — it is the order the
/// parser reads, which decides *which* duplicate is reported first.
fn document_order(rows: &[(String, String, String)]) -> Vec<(String, String, String)> {
    let mut sections: Vec<&str> = Vec::new();
    for (section, _, _) in rows {
        if !sections.contains(&section.as_str()) {
            sections.push(section);
        }
    }
    // Root keys must come before any `[section]` header.
    sections.sort_by_key(|s| !s.is_empty());
    let mut ordered = Vec::new();
    for open in sections {
        ordered.extend(rows.iter().filter(|(s, _, _)| s == open).cloned());
    }
    ordered
}

/// Renders [`document_order`]ed rows into document text.
fn render(ordered: &[(String, String, String)]) -> String {
    let mut out = String::new();
    let mut open: Option<&str> = None;
    for (section, key, value) in ordered {
        if open != Some(section) {
            open = Some(section);
            if !section.is_empty() {
                out.push_str(&format!("[{section}]\n"));
            }
        }
        out.push_str(&format!("{key} = {value}\n"));
    }
    out
}

/// The first (section, key) pair the parser would see twice.
fn first_duplicate(ordered: &[(String, String, String)]) -> Option<String> {
    let mut seen = std::collections::BTreeSet::new();
    for (section, key, _) in ordered {
        if !seen.insert((section.clone(), key.clone())) {
            return Some(key.clone());
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Valid documents parse; a duplicated (section, key) pair fails in
    /// BOTH parsers with the same message text.
    #[test]
    fn duplicate_keys_fail_identically(rows in prop::collection::vec((0usize..4, 0usize..5), 1..10)) {
        let wl_rows = document_order(&workload_doc(&rows));
        let wl_text = render(&wl_rows);
        match first_duplicate(&wl_rows) {
            None => {
                // Not all valid docs validate() (e.g. queue_depth drawn
                // as 2 is fine; all values are 2/0.5 so they do).
                prop_assert!(WorkloadPlan::parse_toml(&wl_text).is_ok(), "{wl_text}");
            }
            Some(key) => {
                let err = WorkloadPlan::parse_toml(&wl_text).unwrap_err();
                prop_assert_eq!(&err, &WorkloadPlanError::Duplicate(key.clone()), "{}", wl_text);
                prop_assert_eq!(err.to_string(), format!("duplicate plan entry `{key}`"));
            }
        }
        let f_rows = document_order(&fault_doc(&rows));
        let f_text = render(&f_rows);
        match first_duplicate(&f_rows) {
            None => prop_assert!(FaultPlan::parse_toml(&f_text).is_ok(), "{f_text}"),
            Some(key) => {
                let err = FaultPlan::parse_toml(&f_text).unwrap_err();
                prop_assert_eq!(&err, &FaultPlanError::Duplicate(key.clone()), "{}", f_text);
                // The unified message: both parsers word it identically.
                prop_assert_eq!(err.to_string(), format!("duplicate plan entry `{key}`"));
            }
        }
    }

    /// Repeating any section header fails in both parsers, same message.
    #[test]
    fn repeated_section_headers_fail_identically(section_idx in 0usize..3, key in 0usize..5) {
        let wl_section = ["mix", "limits", "service"][section_idx];
        let wl_keys: &[&str] = match wl_section {
            "mix" => &["apply", "undo", "generate", "query", "snapshot"],
            "limits" => &["queue_depth", "deadline_us"],
            _ => &["think_us", "jitter_us", "apply_us", "undo_us", "query_us"],
        };
        let k = wl_keys[key % wl_keys.len()];
        let text = format!("[{wl_section}]\n{k} = 2\n[{wl_section}]\n");
        let err = WorkloadPlan::parse_toml(&text).unwrap_err();
        prop_assert_eq!(err.to_string(), format!("duplicate plan entry `[{wl_section}]`"));

        let f_section = ["probabilities", "latency", "schedule"][section_idx];
        let text = format!("[{f_section}]\n[{f_section}]\n");
        let err = FaultPlan::parse_toml(&text).unwrap_err();
        prop_assert_eq!(err.to_string(), format!("duplicate plan entry `[{f_section}]`"));
    }

    /// Garbage around a section header is a `BadLine` in both parsers.
    #[test]
    fn header_garbage_fails_identically(garbage in "[a-z]{1,6}") {
        for text in [
            format!("[mix] {garbage}"),
            format!("[mix]{garbage}]"),
            "[[mix]]".to_owned(),
            "[]".to_owned(),
        ] {
            let wl = WorkloadPlan::parse_toml(&text);
            prop_assert!(
                matches!(wl, Err(WorkloadPlanError::BadLine(_))),
                "workload accepted `{}`: {:?}", text, wl
            );
            let fp = FaultPlan::parse_toml(&text);
            prop_assert!(
                matches!(fp, Err(FaultPlanError::BadLine(_))),
                "faults accepted `{}`: {:?}", text, fp
            );
        }
    }

    /// Neither parser panics on arbitrary input — errors only.
    #[test]
    fn parsers_never_panic(text in "\\PC{0,200}") {
        let _ = WorkloadPlan::parse_toml(&text);
        let _ = FaultPlan::parse_toml(&text);
    }

    /// Line-structured fuzz: random lines assembled from plan-ish
    /// fragments exercise deeper paths than raw unicode noise.
    #[test]
    fn parsers_never_panic_on_line_noise(
        lines in prop::collection::vec(
            prop_oneof![
                Just("[mix]".to_owned()),
                Just("[probabilities]".to_owned()),
                Just("seed = 7".to_owned()),
                Just("apply = 0.5".to_owned()),
                Just("bus.send = 0.5".to_owned()),
                Just("bus.send@1 = \"transient\"".to_owned()),
                Just("# comment".to_owned()),
                Just("".to_owned()),
                "[ -~]{0,30}",
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        let _ = WorkloadPlan::parse_toml(&text);
        let _ = FaultPlan::parse_toml(&text);
    }
}
